//! Aligned text tables and CSV output for experiment reports.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-aligned table that renders to the terminal and to CSV.
///
/// # Examples
///
/// ```
/// use pif_bench::report::Table;
///
/// let mut t = Table::new("demo", &["topology", "rounds", "bound"]);
/// t.row(&["ring(8)", "24", "45"]);
/// let text = t.render();
/// assert!(text.contains("ring(8)"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends one row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.min(120)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Prints the table to stdout and writes `target/experiments/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = PathBuf::from("target/experiments");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[csv written to {}]\n", path.display());
            }
        }
    }
}

/// Summary statistics over a sample of `u64` measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Stats {
    /// Computes statistics of a sample (zeros for an empty sample).
    pub fn of(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Stats { n: 0, min: 0, max: 0, mean: 0.0 };
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        Stats { n: samples.len(), min, max, mean }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t", &["a", "long-header"]);
        t.row(&["xxxxx", "1"]);
        let r = t.render();
        assert!(r.contains("== t =="));
        assert!(r.contains("long-header"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["x,y"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn stats_basics() {
        let s = Stats::of(&[1, 2, 3, 10]);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.n, 4);
        assert!((s.mean - 4.0).abs() < 1e-9);
        assert_eq!(Stats::of(&[]).n, 0);
    }
}
