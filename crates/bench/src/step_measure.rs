//! Step-throughput measurement for the simulator hot loop.
//!
//! Shared between the `step_throughput` Criterion group and the
//! `exp_step_throughput` binary that emits `BENCH_step_throughput.json`:
//! both drive the real [`PifProtocol`] under a
//! central daemon and count raw computation steps per second.
//!
//! The workload deliberately uses a *central* daemon (one processor per
//! step) so per-step fixed costs — configuration clones, full-network
//! enabled-set rebuilds, round-accounting scans — dominate and any O(n)
//! term in the step path shows up as throughput loss at large `n`.

use std::time::Instant;

use pif_core::{initial, PifProtocol};
use pif_daemon::daemons::CentralRandom;
use pif_daemon::Simulator;
use pif_graph::{generators, Graph, ProcId};

/// The benchmark topology families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A path graph (diameter n-1, degree ≤ 2).
    Chain,
    /// A square torus (degree 4, small diameter).
    Torus,
    /// A sparse random connected graph.
    Random,
}

impl Topology {
    /// All benchmark families.
    pub const ALL: [Topology; 3] = [Topology::Chain, Topology::Torus, Topology::Random];

    /// Short lowercase label used in benchmark ids and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Torus => "torus",
            Topology::Random => "random",
        }
    }

    /// Builds the graph of this family with exactly `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a supported size (torus needs a perfect
    /// square, every family needs `n >= 4`).
    pub fn build(self, n: usize) -> Graph {
        match self {
            Topology::Chain => generators::chain(n).expect("chain size"),
            Topology::Torus => {
                let side = (n as f64).sqrt().round() as usize;
                assert_eq!(side * side, n, "torus size must be a perfect square");
                generators::torus(side, side).expect("torus size")
            }
            // Expected degree ~6 independent of n keeps the per-step
            // neighborhood work comparable across sizes.
            Topology::Random => {
                let p = (6.0 / (n as f64 - 1.0)).min(0.5);
                generators::random_connected(n, p, 0xBEEF).expect("random size")
            }
        }
    }
}

/// The benchmark sizes (torus requires perfect squares).
pub const SIZES: [usize; 4] = [16, 64, 256, 1024];

/// A ready-to-step workload: simulator plus daemon.
pub struct Workload {
    /// The simulator, initialised from a random (fuzzed) configuration so
    /// plenty of guards are enabled from the start.
    pub sim: Simulator<PifProtocol>,
    /// The stepping daemon.
    pub daemon: CentralRandom,
    seed: u64,
}

impl Workload {
    /// Builds the standard workload for one topology/size point.
    pub fn new(topology: Topology, n: usize) -> Self {
        let g = topology.build(n);
        let proto = PifProtocol::new(ProcId(0), &g);
        let init = initial::random_config(&g, &proto, 0xC0FFEE);
        Workload { sim: Simulator::new(g, proto, init), daemon: CentralRandom::new(7), seed: 1 }
    }

    /// Runs `steps` computation steps, re-randomising the configuration if
    /// the run reaches a terminal configuration (PIF waves eventually
    /// quiesce once every broadcast has been acknowledged and cleaned).
    ///
    /// Returns the number of steps actually executed (always `steps`).
    pub fn run_steps(&mut self, steps: u64) -> u64 {
        let mut done = 0;
        while done < steps {
            if self.sim.is_terminal() {
                self.seed = self.seed.wrapping_add(1);
                let fresh =
                    initial::random_config(self.sim.graph(), self.sim.protocol(), self.seed);
                self.sim.set_states(fresh);
                continue;
            }
            self.sim.step(&mut self.daemon).expect("daemon selection valid");
            done += 1;
        }
        done
    }
}

/// One measured point for the JSON report.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Topology label.
    pub topology: &'static str,
    /// Processor count.
    pub n: usize,
    /// Measured steps per second.
    pub steps_per_sec: f64,
    /// Steps executed during the measurement window.
    pub steps: u64,
}

/// Measures steps/second for one topology/size point: warms up for
/// `warmup_steps`, then times batches of `batch` steps until
/// `min_duration_secs` of measured time has accumulated.
pub fn measure(topology: Topology, n: usize, min_duration_secs: f64) -> Measurement {
    let mut w = Workload::new(topology, n);
    w.run_steps(2_000); // warmup: faults corrected, caches hot
    let batch = 5_000;
    let mut steps = 0u64;
    let start = Instant::now();
    loop {
        w.run_steps(batch);
        steps += batch;
        if start.elapsed().as_secs_f64() >= min_duration_secs {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement { topology: topology.label(), n, steps_per_sec: steps as f64 / secs, steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_step_on_every_point() {
        for t in Topology::ALL {
            let mut w = Workload::new(t, 16);
            assert_eq!(w.run_steps(200), 200);
            assert!(w.sim.steps() > 0);
        }
    }

    #[test]
    fn torus_rejects_non_square() {
        let r = std::panic::catch_unwind(|| Topology::Torus.build(15));
        assert!(r.is_err());
    }
}
