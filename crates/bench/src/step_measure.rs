//! Step-throughput measurement for the simulator hot loops.
//!
//! Shared between the `step_throughput` Criterion group and the
//! `exp_step_throughput` binary that emits `BENCH_step_throughput.json`:
//! both drive the real [`PifProtocol`] and count executed work per second.
//!
//! Two workload shapes:
//!
//! * [`Workload`] — a *central* daemon (one processor per step) on a
//!   selectable engine ([`Engine::Aos`] or [`Engine::Soa`]), so per-step
//!   fixed costs — snapshot construction, daemon dispatch, bookkeeping —
//!   dominate and any O(n) term in the step path shows up as throughput
//!   loss at large `n`. The unit is computation steps (= moves, since the
//!   central daemon executes exactly one move per step).
//! * [`SyncWorkload`] — the SoA engine's daemon-free synchronous fast
//!   path ([`pif_soa::SoaSimulator::step_sync`]): every enabled processor
//!   moves every step, and the headline unit is **moves per second**
//!   (individual guarded-action executions — the unit the ≥10M/s batch
//!   stepping target is stated in).

use std::time::Instant;

use pif_core::{initial, PifProtocol};
use pif_daemon::daemons::CentralRandom;
use pif_graph::{generators, Graph, ProcId};
use pif_soa::{Engine, EngineSim, SoaSimulator};

/// The benchmark topology families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A path graph (diameter n-1, degree ≤ 2).
    Chain,
    /// A square torus (degree 4, small diameter).
    Torus,
    /// A sparse random connected graph.
    Random,
}

impl Topology {
    /// All benchmark families.
    pub const ALL: [Topology; 3] = [Topology::Chain, Topology::Torus, Topology::Random];

    /// Short lowercase label used in benchmark ids and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Torus => "torus",
            Topology::Random => "random",
        }
    }

    /// Builds the graph of this family with exactly `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a supported size (torus needs a perfect
    /// square, every family needs `n >= 4`).
    pub fn build(self, n: usize) -> Graph {
        match self {
            Topology::Chain => generators::chain(n).expect("chain size"),
            Topology::Torus => {
                let side = (n as f64).sqrt().round() as usize;
                assert_eq!(side * side, n, "torus size must be a perfect square");
                generators::torus(side, side).expect("torus size")
            }
            // Expected degree ~6 independent of n keeps the per-step
            // neighborhood work comparable across sizes.
            Topology::Random => {
                let p = (6.0 / (n as f64 - 1.0)).min(0.5);
                generators::random_connected(n, p, 0xBEEF).expect("random size")
            }
        }
    }
}

/// The standard benchmark sizes (torus requires perfect squares).
pub const SIZES: [usize; 4] = [16, 64, 256, 1024];

/// Extended sizes exercising the SoA engine at scale (64² and 128² tori).
pub const EXT_SIZES: [usize; 2] = [4096, 16384];

/// A ready-to-step workload: engine-selected simulator plus central daemon.
pub struct Workload {
    /// The simulator, initialised from a random (fuzzed) configuration so
    /// plenty of guards are enabled from the start.
    pub sim: EngineSim,
    /// The stepping daemon.
    pub daemon: CentralRandom,
    seed: u64,
}

impl Workload {
    /// Builds the standard workload for one topology/size point on the
    /// array-of-structs engine.
    pub fn new(topology: Topology, n: usize) -> Self {
        Workload::on_engine(topology, n, Engine::Aos)
    }

    /// Builds the standard workload on a chosen engine.
    pub fn on_engine(topology: Topology, n: usize, engine: Engine) -> Self {
        let g = topology.build(n);
        let proto = PifProtocol::new(ProcId(0), &g);
        let init = initial::random_config(&g, &proto, 0xC0FFEE);
        Workload {
            sim: EngineSim::new(engine, g, proto, init),
            daemon: CentralRandom::new(7),
            seed: 1,
        }
    }

    /// Runs `steps` computation steps, re-randomising the configuration if
    /// the run reaches a terminal configuration (PIF waves eventually
    /// quiesce once every broadcast has been acknowledged and cleaned).
    ///
    /// Returns the number of steps actually executed (always `steps`).
    pub fn run_steps(&mut self, steps: u64) -> u64 {
        let mut done = 0;
        while done < steps {
            if self.sim.is_terminal() {
                self.seed = self.seed.wrapping_add(1);
                let fresh =
                    initial::random_config(self.sim.graph(), self.sim.protocol(), self.seed);
                self.sim.set_states(fresh);
                continue;
            }
            self.sim.step(&mut self.daemon).expect("daemon selection valid");
            done += 1;
        }
        done
    }
}

/// The synchronous batch-stepping workload on the SoA fast path.
pub struct SyncWorkload {
    /// The SoA simulator.
    pub sim: SoaSimulator,
    seed: u64,
}

impl SyncWorkload {
    /// Builds the workload for one topology/size point.
    pub fn new(topology: Topology, n: usize) -> Self {
        let g = topology.build(n);
        let proto = PifProtocol::new(ProcId(0), &g);
        let init = initial::random_config(&g, &proto, 0xC0FFEE);
        SyncWorkload { sim: SoaSimulator::new(g, proto, init), seed: 1 }
    }

    /// Runs synchronous steps until at least `moves` processor moves have
    /// executed, re-randomising on terminal configurations. Returns
    /// `(steps, moves)` actually executed.
    pub fn run_moves(&mut self, moves: u64) -> (u64, u64) {
        let mut steps = 0u64;
        let mut done = 0u64;
        while done < moves {
            let rep = self.sim.step_sync();
            if rep.executed == 0 {
                self.seed = self.seed.wrapping_add(1);
                let fresh =
                    initial::random_config(self.sim.graph(), self.sim.protocol(), self.seed);
                self.sim.set_states(fresh);
                continue;
            }
            steps += 1;
            done += rep.executed as u64;
        }
        (steps, done)
    }
}

/// One measured point for the JSON report.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Topology label.
    pub topology: &'static str,
    /// Processor count.
    pub n: usize,
    /// Measured steps per second.
    pub steps_per_sec: f64,
    /// Steps executed during the measurement window.
    pub steps: u64,
}

/// One measured point of the synchronous SoA fast path.
#[derive(Clone, Debug)]
pub struct SyncMeasurement {
    /// Topology label.
    pub topology: &'static str,
    /// Processor count.
    pub n: usize,
    /// Processor moves per second (the batch-stepping headline unit).
    pub moves_per_sec: f64,
    /// Synchronous computation steps per second.
    pub steps_per_sec: f64,
    /// Moves executed during the measurement window.
    pub moves: u64,
}

/// Measures central-daemon steps/second for one topology/size point on
/// one engine: warms up, then times batches until `min_duration_secs` of
/// measured time has accumulated.
pub fn measure(topology: Topology, n: usize, min_duration_secs: f64, engine: Engine) -> Measurement {
    let mut w = Workload::on_engine(topology, n, engine);
    w.run_steps(2_000); // warmup: faults corrected, caches hot
    let batch = 5_000;
    let mut steps = 0u64;
    let start = Instant::now();
    loop {
        w.run_steps(batch);
        steps += batch;
        if start.elapsed().as_secs_f64() >= min_duration_secs {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement { topology: topology.label(), n, steps_per_sec: steps as f64 / secs, steps }
}

/// Measures the SoA synchronous fast path in moves/second for one
/// topology/size point.
pub fn measure_sync(topology: Topology, n: usize, min_duration_secs: f64) -> SyncMeasurement {
    let mut w = SyncWorkload::new(topology, n);
    w.run_moves(4 * n as u64); // warmup: faults corrected, caches hot
    let batch = (n as u64 * 16).max(50_000);
    let mut moves = 0u64;
    let mut steps = 0u64;
    let start = Instant::now();
    loop {
        let (s, m) = w.run_moves(batch);
        steps += s;
        moves += m;
        if start.elapsed().as_secs_f64() >= min_duration_secs {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    SyncMeasurement {
        topology: topology.label(),
        n,
        moves_per_sec: moves as f64 / secs,
        steps_per_sec: steps as f64 / secs,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_step_on_every_point() {
        for t in Topology::ALL {
            for engine in Engine::ALL {
                let mut w = Workload::on_engine(t, 16, engine);
                assert_eq!(w.run_steps(200), 200);
                assert!(w.sim.steps() > 0);
            }
        }
    }

    #[test]
    fn sync_workload_counts_moves() {
        let mut w = SyncWorkload::new(Topology::Torus, 16);
        let (steps, moves) = w.run_moves(500);
        assert!(moves >= 500);
        assert!(steps > 0 && steps <= moves);
    }

    #[test]
    fn torus_rejects_non_square() {
        let r = std::panic::catch_unwind(|| Topology::Torus.build(15));
        assert!(r.is_err());
    }
}
