//! The snap-stabilizing PIF as a [`FirstWave`] contestant, so the
//! delivery-contrast experiment (E5) can race it against the baselines on
//! equal terms: same graph, same root, same daemon strategy, fuzzed
//! initial configurations of comparable severity.

use pif_baselines::{FirstWave, WaveVerdict};
use pif_core::{checker, initial, PifProtocol};
use pif_daemon::RunLimits;
use pif_graph::{Graph, ProcId};

/// The paper's algorithm as a contestant.
#[derive(Clone, Copy, Debug, Default)]
pub struct SnapPifContestant;

impl FirstWave for SnapPifContestant {
    fn name(&self) -> &'static str {
        "snap PIF (this paper)"
    }

    fn first_wave(
        &self,
        graph: &Graph,
        root: ProcId,
        seed: Option<u64>,
        limits: RunLimits,
    ) -> WaveVerdict {
        let protocol = PifProtocol::new(root, graph);
        let init = match seed {
            None => initial::normal_starting(graph),
            Some(s) => initial::random_config(graph, &protocol, s),
        };
        let mut daemon = pif_daemon::daemons::CentralRandom::new(seed.unwrap_or(0));
        match checker::check_first_wave(graph.clone(), protocol, init, &mut daemon, limits) {
            Ok(report) => WaveVerdict {
                initiated: report.outcome.initiated,
                completed: report.outcome.initiated && report.outcome.cycle_rounds > 0
                    || report.outcome.pif2,
                pif1: report.outcome.pif1,
                pif2: report.outcome.pif2,
                missed: report.missed,
                rounds: report.outcome.rounds_to_broadcast + report.outcome.cycle_rounds,
            },
            Err(_) => WaveVerdict {
                initiated: false,
                completed: false,
                pif1: false,
                pif2: false,
                missed: graph.procs().collect(),
                rounds: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_graph::generators;

    #[test]
    fn snap_contestant_wins_from_any_seed() {
        let g = generators::random_connected(10, 0.2, 7).unwrap();
        for seed in 0..25 {
            let v = SnapPifContestant.first_wave(
                &g,
                ProcId(0),
                Some(seed),
                RunLimits::default(),
            );
            assert!(v.holds(), "seed {seed}: {v:?}");
        }
    }
}
