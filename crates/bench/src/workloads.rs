//! The standard experiment workloads: topology sweeps and daemon panels.

use pif_core::PifState;
use pif_daemon::Daemon;
use pif_graph::Topology;

/// The topology families swept by the cycle-bound experiment (E1), each
/// instantiated over a size range.
pub fn size_sweep() -> Vec<Topology> {
    let mut out = Vec::new();
    for n in [4usize, 8, 16, 32, 64, 128] {
        out.push(Topology::Chain { n });
        out.push(Topology::Ring { n });
        out.push(Topology::Star { n });
        out.push(Topology::RandomTree { n, seed: 42 });
        out.push(Topology::Random { n, p: 0.15, seed: 42 });
    }
    for d in [2u32, 3, 4, 5, 6] {
        out.push(Topology::Hypercube { d });
    }
    for s in [2usize, 3, 4, 6, 8] {
        out.push(Topology::Grid { w: s, h: s });
        if s >= 3 {
            out.push(Topology::Torus { w: s, h: s });
        }
    }
    for n in [4usize, 8, 16, 24] {
        out.push(Topology::Complete { n });
        out.push(Topology::Wheel { n: n.max(4) });
        out.push(Topology::Lollipop { clique: n / 2 + 2, tail: n / 2 });
    }
    out
}

/// A compact suite for the heavier experiments (recovery sweeps).
pub fn recovery_suite() -> Vec<Topology> {
    vec![
        Topology::Chain { n: 12 },
        Topology::Ring { n: 12 },
        Topology::Star { n: 12 },
        Topology::RandomTree { n: 12, seed: 3 },
        Topology::Grid { w: 4, h: 3 },
        Topology::Torus { w: 4, h: 4 },
        Topology::Hypercube { d: 4 },
        Topology::Complete { n: 10 },
        Topology::Lollipop { clique: 5, tail: 7 },
        Topology::Random { n: 14, p: 0.2, seed: 5 },
    ]
}

/// Tree-only suite for the tree-algorithm comparison (E7).
pub fn tree_suite() -> Vec<Topology> {
    vec![
        Topology::Chain { n: 15 },
        Topology::Star { n: 15 },
        Topology::KaryTree { n: 15, k: 2 },
        Topology::KaryTree { n: 16, k: 3 },
        Topology::RandomTree { n: 15, seed: 1 },
        Topology::RandomTree { n: 15, seed: 2 },
        Topology::Caterpillar { spine: 5, legs: 2 },
    ]
}

/// Identifier of one daemon strategy in the panel, used to instantiate a
/// fresh daemon per run (daemons are stateful).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DaemonKind {
    /// Every enabled processor moves each step.
    Synchronous,
    /// One processor per step, round-robin.
    CentralSeq,
    /// One uniformly random processor per step.
    CentralRandom,
    /// Independent inclusion with probability 0.5.
    DistributedHalf,
    /// Greedy adversarial LIFO with a `4N` fairness bound.
    Adversarial,
}

impl DaemonKind {
    /// The full panel.
    pub const ALL: [DaemonKind; 5] = [
        DaemonKind::Synchronous,
        DaemonKind::CentralSeq,
        DaemonKind::CentralRandom,
        DaemonKind::DistributedHalf,
        DaemonKind::Adversarial,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DaemonKind::Synchronous => "sync",
            DaemonKind::CentralSeq => "central-seq",
            DaemonKind::CentralRandom => "central-rand",
            DaemonKind::DistributedHalf => "dist-0.5",
            DaemonKind::Adversarial => "adversarial",
        }
    }

    /// Parses a daemon from its [`name`](DaemonKind::name) (as used on the
    /// `pif-trace` command line). Returns `None` for an unknown name.
    pub fn parse(name: &str) -> Option<DaemonKind> {
        DaemonKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Instantiates a fresh daemon of this kind for a network of `n`
    /// processors, seeded deterministically.
    pub fn build(self, n: usize, seed: u64) -> Box<dyn Daemon<PifState>> {
        use pif_daemon::daemons::*;
        match self {
            DaemonKind::Synchronous => Box::new(Synchronous::first_action()),
            DaemonKind::CentralSeq => Box::new(CentralSequential::new()),
            DaemonKind::CentralRandom => Box::new(CentralRandom::new(seed)),
            DaemonKind::DistributedHalf => Box::new(DistributedRandom::new(0.5, seed)),
            DaemonKind::Adversarial => Box::new(AdversarialLifo::new(4 * n.max(1) as u64, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sweep_topologies_build() {
        for t in size_sweep().into_iter().chain(recovery_suite()).chain(tree_suite()) {
            assert!(t.build().is_ok(), "{t:?}");
        }
    }

    #[test]
    fn tree_suite_is_all_trees() {
        for t in tree_suite() {
            let g = t.build().unwrap();
            assert_eq!(g.edge_count(), g.len() - 1, "{t:?} is not a tree");
        }
    }

    #[test]
    fn daemon_panel_instantiates() {
        for k in DaemonKind::ALL {
            let _ = k.build(10, 1);
            assert!(!k.name().is_empty());
            assert_eq!(DaemonKind::parse(k.name()), Some(k));
        }
        assert_eq!(DaemonKind::parse("no-such-daemon"), None);
    }
}
