//! E1 — Theorem 4: PIF cycle round bounds. See `pif_bench::experiments`.
fn main() {
    pif_bench::experiments::e1_cycle_bounds::run().emit("e1_cycle_bounds");
}
