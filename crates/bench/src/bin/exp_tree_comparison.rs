//! E7 — arbitrary-network vs tree-specialized snap PIF on trees.
fn main() {
    pif_bench::experiments::e7_tree_comparison::run().emit("e7_tree_comparison");
}
