//! E5 — first-wave delivery contrast: snap vs self-stabilizing vs echo.
fn main() {
    pif_bench::experiments::e5_snap_vs_self::run().emit("e5_snap_vs_self");
}
