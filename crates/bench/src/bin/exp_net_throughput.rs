//! Emits the message-passing transport benchmark
//! (`BENCH_net_throughput.json`) on stdout: PIF wave throughput over
//! `pif-net` per fault-rate cell, with the E13 certification counters.
//!
//! ```text
//! cargo run --release --bin exp_net_throughput -- \
//!     [--duration SECS] [--check] [--differential]
//! ```
//!
//! * default: measures events/executions/waves per second per
//!   `(topology, cell)` point and emits the JSON envelope, including the
//!   deterministic certification fields (completed / \[PIF1\] / \[PIF2\]
//!   / corrupt-applied) that `--check` replays.
//! * `--check` skips measurement and replays the deterministic fields
//!   from their seeds twice, exiting non-zero if any `NetStats` ledger
//!   or certification count differs between runs — the tier-2 gate's
//!   replay bit-identity smoke.
//! * `--differential` runs the fault-free net-vs-shared-memory terminal
//!   configuration comparison (max propagation, which has a
//!   schedule-independent fixpoint) across chain/torus/random graphs,
//!   exiting non-zero on any divergence.

use std::process::ExitCode;
use std::time::Instant;

use pif_bench::experiments::e13_message_passing::{cells, trial, CellOutcome, FaultCell};
use pif_core::{initial, PifProtocol};
use pif_daemon::daemons::Synchronous;
use pif_daemon::{ActionId, Protocol, RunLimits, Simulator, View};
use pif_graph::{generators, Graph, ProcId, Topology};
use pif_net::{NetBuilder, NetSim, Transport};

fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).rev().find(|w| w[0] == flag).map(|w| w[1].as_str())
}

/// The measured grid: three topology families × the lossless and
/// adversarial ends of the fault-cell spectrum.
fn points() -> Vec<(Topology, FaultCell)> {
    let all = cells();
    let pick = |name: &str| *all.iter().find(|c| c.name == name).expect("known cell");
    let topologies = [
        Topology::Chain { n: 64 },
        Topology::Torus { w: 8, h: 8 },
        Topology::Random { n: 64, p: 0.1, seed: 2026 },
    ];
    topologies
        .iter()
        .flat_map(|t| {
            [pick("lossless"), pick("adversarial")]
                .into_iter()
                .map(move |c| (t.clone(), c))
        })
        .collect()
}

/// Certification run: 4 seeds × 4 requests through one point.
fn certify(t: &Topology, c: &FaultCell) -> CellOutcome {
    let mut total = CellOutcome::default();
    for seed in 0..4 {
        let o = trial(t, c, seed, 4);
        total.completed += o.completed;
        total.pif1_ok += o.pif1_ok;
        total.pif2_ok += o.pif2_ok;
        total.stats.corrupt_applied += o.stats.corrupt_applied;
        total.stats.corrupt_rejected += o.stats.corrupt_rejected;
        total.stats.stale_rejected += o.stats.stale_rejected;
        total.stats.dropped += o.stats.dropped;
        total.stats.deliveries += o.stats.deliveries;
        total.stats.executions += o.stats.executions;
    }
    total
}

fn measure_point(t: &Topology, c: &FaultCell, duration: f64) -> (f64, f64, f64) {
    let g = t.build().expect("bench topologies are valid");
    let protocol = PifProtocol::new(ProcId(0), &g);
    let init = initial::normal_starting(&g);
    let mut net = NetSim::builder(g, protocol)
        .states(init)
        .fault_plan(c.plan)
        .heartbeat_every(c.heartbeat_every)
        .seed(7)
        .build()
        .expect("cell plans are valid");
    let start = Instant::now();
    let mut waves = 0u64;
    let mut in_f = false;
    while start.elapsed().as_secs_f64() < duration {
        for _ in 0..4096 {
            net.tick();
            let root_f = net.states()[0].phase == pif_core::Phase::F;
            if root_f && !in_f {
                waves += 1;
            }
            in_f = root_f;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let s = net.stats();
    (s.events as f64 / secs, s.executions as f64 / secs, waves as f64 / secs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        return check();
    }
    if args.iter().any(|a| a == "--differential") {
        return differential();
    }
    let duration: f64 = opt(&args, "--duration").and_then(|d| d.parse().ok()).unwrap_or(1.0);

    println!("{{");
    println!("  \"benchmark\": \"net_throughput\",");
    println!("  \"unit\": \"events_per_sec\",");
    println!("  \"protocol\": \"PifProtocol over pif-net (framed snapshots, lossy links)\",");
    println!(
        "  \"method\": \"cargo run --release --bin exp_net_throughput -- --duration 1.0; \
         single-threaded, one seeded NetSim per point ticked for the measured window; a wave \
         is one root B->F cycle. certification fields come from 4 seeds x 4 requests per \
         point from post-fault random starts (deterministic; replayed by --check). \
         adversarial cell = drop 0.2, duplicate 0.1, reorder 0.3, corrupt 0.05 per link.\","
    );
    println!(
        "  \"acceptance\": \"every point certifies completed == 16 with pif1 == pif2 == 16 \
         and corrupt_applied == 0; adversarial points keep waves flowing \
         (waves_per_sec > 0)\","
    );
    println!("  \"results\": [");
    let mut first = true;
    for (t, c) in points() {
        if !first {
            println!(",");
        }
        first = false;
        let (events_s, execs_s, waves_s) = measure_point(&t, &c, duration);
        let cert = certify(&t, &c);
        print!(
            "    {{\"topology\": \"{t}\", \"cell\": \"{}\", \"events_per_sec\": {events_s:.0}, \
             \"executions_per_sec\": {execs_s:.0}, \"waves_per_sec\": {waves_s:.1}, \
             \"requests\": 16, \"completed\": {}, \"pif1_ok\": {}, \"pif2_ok\": {}, \
             \"corrupt_applied\": {}, \"crc_rejected\": {}, \"stale_rejected\": {}}}",
            c.name,
            cert.completed,
            cert.pif1_ok,
            cert.pif2_ok,
            cert.stats.corrupt_applied,
            cert.stats.corrupt_rejected,
            cert.stats.stale_rejected,
        );
        eprintln!(
            "{t:>14} [{:<11}] {events_s:>11.0} events/s {waves_s:>7.1} waves/s \
             cert {}/16 pif2 {}/16",
            c.name, cert.completed, cert.pif2_ok
        );
    }
    println!();
    println!("  ]");
    println!("}}");
    ExitCode::SUCCESS
}

/// Replay bit-identity + certification: every deterministic field of the
/// envelope is a pure function of its seeds.
fn check() -> ExitCode {
    for (t, c) in points() {
        let a = certify(&t, &c);
        let b = certify(&t, &c);
        if a != b {
            eprintln!("REPLAY MISMATCH at {t} [{}]:\n  {a:?}\n  {b:?}", c.name);
            return ExitCode::FAILURE;
        }
        if a.completed != 16 || a.pif1_ok != 16 || a.pif2_ok != 16 {
            eprintln!("CERTIFICATION FAILED at {t} [{}]: {a:?}", c.name);
            return ExitCode::FAILURE;
        }
        if a.stats.corrupt_applied != 0 {
            eprintln!("CRC GATE FAILED at {t} [{}]: {a:?}", c.name);
            return ExitCode::FAILURE;
        }
        println!("check {t} [{}]: 16/16 certified, replay bit-identical", c.name);
    }
    ExitCode::SUCCESS
}

/// Max propagation: adopt the largest visible value. Schedule-independent
/// fixpoint, so net and shared-memory terminal configurations must agree.
#[derive(Clone, Debug)]
struct MaxProto;

impl Protocol for MaxProto {
    type State = u64;
    fn action_names(&self) -> &'static [&'static str] {
        &["adopt"]
    }
    fn enabled_actions(&self, view: View<'_, u64>, out: &mut Vec<ActionId>) {
        if view.neighbor_states().any(|(_, &s)| s > *view.me()) {
            out.push(ActionId(0));
        }
    }
    fn execute(&self, view: View<'_, u64>, _: ActionId) -> u64 {
        view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0).max(*view.me())
    }
}

fn differential() -> ExitCode {
    let graphs: Vec<(&str, Graph)> = vec![
        ("chain(8)", generators::chain(8).unwrap()),
        ("chain(64)", generators::chain(64).unwrap()),
        ("torus(4x4)", generators::torus(4, 4).unwrap()),
        ("torus(8x8)", generators::torus(8, 8).unwrap()),
        ("random(16)", generators::random_connected(16, 0.2, 5).unwrap()),
        ("random(64)", generators::random_connected(64, 0.1, 5).unwrap()),
    ];
    for (label, g) in graphs {
        for seed in 0..3u64 {
            let init: Vec<u64> =
                (0..g.len() as u64).map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(17) ^ seed).collect();
            let mut shm = Simulator::new(g.clone(), MaxProto, init.clone());
            shm.run_to_fixpoint(&mut Synchronous::first_action(), RunLimits::default())
                .expect("shared-memory fixpoint");
            let mut net = NetBuilder::new(g.clone(), MaxProto)
                .states(init)
                .seed(seed)
                .build()
                .expect("fault-free build");
            net.run(8_000_000);
            if !net.is_settled() || net.states() != shm.states() {
                eprintln!("DIVERGENCE at {label} seed {seed}");
                return ExitCode::FAILURE;
            }
        }
        println!("differential {label}: net == shared memory (3 seeds)");
    }
    // The PIF wave itself, fault-free: every request certifies.
    let cell = cells().into_iter().find(|c| c.name == "lossless").expect("lossless cell");
    for t in [Topology::Chain { n: 16 }, Topology::Torus { w: 4, h: 4 }] {
        let o = trial(&t, &cell, 0, 4);
        if o.completed != 4 || o.pif2_ok != 4 {
            eprintln!("PIF WAVE FAILED fault-free at {t}: {o:?}");
            return ExitCode::FAILURE;
        }
        println!("differential pif {t}: 4/4 waves certified");
    }
    ExitCode::SUCCESS
}
