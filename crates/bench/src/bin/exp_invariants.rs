//! E8 — Properties 1-2 invariant monitoring.
fn main() {
    pif_bench::experiments::e8_invariants::run().emit("e8_invariants");
}
