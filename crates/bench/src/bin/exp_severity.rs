//! E12 — fault-severity sweep: k corrupted registers vs snap success and
//! recovery rounds.
fn main() {
    pif_bench::experiments::e12_severity::run().emit("e12_severity");
}
