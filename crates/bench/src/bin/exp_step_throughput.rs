//! Emits the step-throughput benchmark (`BENCH_step_throughput.json`) on
//! stdout, comparing the AoS and SoA step engines.
//!
//! ```text
//! cargo run --release --bin exp_step_throughput -- \
//!     [--engine aos|soa|both] [--duration SECS] [--extended] [--check]
//! ```
//!
//! * `--engine` selects which engines to measure (default `both`).
//! * `--duration` is the minimum measured window per point (default 1.0).
//! * `--extended` adds the large sizes (n ∈ {4096, 16384}).
//! * `--check` skips measurement and instead runs the AoS/SoA lockstep
//!   differential (identical states, enabled sets, rounds, reports on
//!   every step across daemons and topologies), exiting non-zero on any
//!   divergence — the tier-2 gate's smoke mode.
//!
//! Units: `*_steps_per_sec` counts computation steps under the central
//! daemon (one processor move per step, so steps = moves there);
//! `soa_sync_moves_per_sec` counts individual processor moves under the
//! synchronous daemon on the SoA fast path, where one step executes
//! `|enabled|` moves — the unit the ≥10M/s batch-stepping target is
//! stated in.

use std::process::ExitCode;

use pif_bench::step_measure::{measure, measure_sync, Topology, EXT_SIZES, SIZES};
use pif_core::{initial, PifProtocol};
use pif_daemon::daemons::{CentralRandom, DistributedRandom, Synchronous};
use pif_daemon::Daemon;
use pif_graph::ProcId;
use pif_soa::{Engine, EngineSim};

fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).rev().find(|w| w[0] == flag).map(|w| w[1].as_str())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        return check();
    }
    let duration: f64 = opt(&args, "--duration").and_then(|d| d.parse().ok()).unwrap_or(1.0);
    let spec = opt(&args, "--engine").unwrap_or("both");
    let engines: Vec<Engine> = match spec {
        "both" => Engine::ALL.to_vec(),
        other => match Engine::parse(other) {
            Some(e) => vec![e],
            None => {
                eprintln!("exp_step_throughput: bad value for --engine: {other:?}");
                return ExitCode::from(2);
            }
        },
    };
    let extended = args.iter().any(|a| a == "--extended");
    let soa = engines.contains(&Engine::Soa);

    let mut sizes: Vec<usize> = SIZES.to_vec();
    if extended {
        sizes.extend(EXT_SIZES);
    }

    println!("{{");
    println!("  \"benchmark\": \"step_throughput\",");
    println!("  \"unit\": \"moves_per_sec\",");
    println!("  \"protocol\": \"PifProtocol (arbitrary-network snap PIF)\",");
    println!(
        "  \"method\": \"cargo run --release --bin exp_step_throughput -- --engine both \
         --duration 1.0 --extended; single-threaded, one point per topology/size. \
         aos_/soa_steps_per_sec: computation steps under CentralRandom (one processor move \
         per step) on the array-of-structs vs packed structure-of-arrays engine. \
         soa_sync_moves_per_sec: individual processor moves (one guarded-action execution \
         each) under the synchronous daemon on the SoA word-parallel fast path, where one \
         step executes |enabled| moves. speedup = soa_sync_moves_per_sec / \
         aos_steps_per_sec at the same point.\","
    );
    println!(
        "  \"acceptance\": \"torus n=1024 soa_sync_moves_per_sec >= 10000000 (10M \
         moves/sec synchronous batch stepping); soa_sync_moves_per_sec > \
         aos_steps_per_sec on every point\","
    );
    println!("  \"results\": [");
    let mut first = true;
    for t in Topology::ALL {
        for &n in &sizes {
            if !first {
                println!(",");
            }
            first = false;
            print!("    {{\"topology\": \"{}\", \"n\": {n}", t.label());
            let mut aos_rate = None;
            for &engine in &engines {
                let m = measure(t, n, duration, engine);
                if engine == Engine::Aos {
                    aos_rate = Some(m.steps_per_sec);
                }
                print!(", \"{engine}_steps_per_sec\": {:.0}", m.steps_per_sec);
                eprintln!(
                    "{:>7} n={:<6} [{engine}]   {:>12.0} steps/s",
                    t.label(),
                    n,
                    m.steps_per_sec
                );
            }
            if soa {
                let s = measure_sync(t, n, duration);
                print!(", \"soa_sync_moves_per_sec\": {:.0}", s.moves_per_sec);
                eprintln!(
                    "{:>7} n={:<6} [soa/sync] {:>12.0} moves/s ({:.0} steps/s)",
                    t.label(),
                    n,
                    s.moves_per_sec,
                    s.steps_per_sec
                );
                if let Some(aos) = aos_rate {
                    print!(", \"speedup\": {:.2}", s.moves_per_sec / aos);
                }
            }
            print!("}}");
        }
    }
    println!();
    println!("  ]");
    println!("}}");
    ExitCode::SUCCESS
}

/// AoS/SoA lockstep differential: identical executions step for step.
/// Constructor for one of the daemon families exercised by `check`.
type DaemonCtor = fn() -> Box<dyn Daemon<pif_core::PifState>>;

fn check() -> ExitCode {
    let points: [(Topology, usize); 3] =
        [(Topology::Torus, 16), (Topology::Chain, 24), (Topology::Random, 20)];
    let daemons: [DaemonCtor; 3] = [
        || Box::new(Synchronous::first_action()),
        || Box::new(CentralRandom::new(41)),
        || Box::new(DistributedRandom::new(0.5, 41)),
    ];
    let mut checked_steps = 0u64;
    for (t, n) in points {
        for make in daemons {
            let g = t.build(n);
            let proto = PifProtocol::new(ProcId(0), &g);
            let init = initial::random_config(&g, &proto, 0xD1FF);
            let mut sims: Vec<EngineSim> = Engine::ALL
                .iter()
                .map(|&e| EngineSim::new(e, g.clone(), proto.clone(), init.clone()))
                .collect();
            let mut ds: Vec<Box<dyn Daemon<pif_core::PifState>>> =
                (0..2).map(|_| make()).collect();
            for (s, _) in sims.iter_mut().zip(&ds) {
                s.set_validation(true);
            }
            for step in 0..500u64 {
                if sims[0].is_terminal() {
                    break;
                }
                let ra = sims[0].step(&mut *ds[0]).expect("aos step");
                let rs = sims[1].step(&mut *ds[1]).expect("soa step");
                let same = ra == rs
                    && sims[0].states() == sims[1].states()
                    && sims[0].enabled_procs() == sims[1].enabled_procs()
                    && sims[0].rounds() == sims[1].rounds()
                    && sims[0].last_executed() == sims[1].last_executed();
                if !same {
                    eprintln!(
                        "DIVERGENCE at {} n={n} step {step}: aos {ra:?} vs soa {rs:?}",
                        t.label()
                    );
                    return ExitCode::FAILURE;
                }
                checked_steps += 1;
            }
        }
    }
    println!("engine differential check passed ({checked_steps} lockstep steps, 2 engines)");
    ExitCode::SUCCESS
}
