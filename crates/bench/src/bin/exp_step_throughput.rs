//! Emits step-throughput measurements as JSON on stdout.
//!
//! Used to produce `BENCH_step_throughput.json`: run once on the
//! pre-optimisation simulator (label `baseline`), once after (label
//! `optimized`), and merge. Usage:
//!
//! ```text
//! cargo run --release --bin exp_step_throughput -- <label> [duration_secs]
//! ```

use pif_bench::step_measure::{measure, Topology, SIZES};

fn main() {
    let mut args = std::env::args().skip(1);
    let label = args.next().unwrap_or_else(|| "current".to_string());
    let duration: f64 = args.next().and_then(|d| d.parse().ok()).unwrap_or(1.0);

    println!("{{");
    println!("  \"label\": \"{label}\",");
    println!("  \"unit\": \"steps_per_sec\",");
    println!("  \"daemon\": \"CentralRandom\",");
    println!("  \"protocol\": \"PifProtocol (arbitrary-network snap PIF)\",");
    println!("  \"results\": [");
    let mut first = true;
    for t in Topology::ALL {
        for n in SIZES {
            let m = measure(t, n, duration);
            if !first {
                println!(",");
            }
            first = false;
            print!(
                "    {{\"topology\": \"{}\", \"n\": {}, \"steps_per_sec\": {:.0}, \"steps\": {}}}",
                m.topology, m.n, m.steps_per_sec, m.steps
            );
            eprintln!("{:>7} n={:<5} {:>12.0} steps/s", m.topology, m.n, m.steps_per_sec);
        }
    }
    println!();
    println!("  ]");
    println!("}}");
}
