//! E6 — chordless parent paths and the height range ecc(r) <= h <= lcp.
fn main() {
    pif_bench::experiments::e6_chordless::run().emit("e6_chordless");
}
