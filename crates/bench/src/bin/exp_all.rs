//! Runs the complete experiment battery (E1-E10) and writes all CSVs.
use pif_bench::experiments::*;

fn main() {
    let t0 = std::time::Instant::now();
    e1_cycle_bounds::run().emit("e1_cycle_bounds");
    e2_error_correction::run().emit("e2_error_correction");
    e3_glt_formation::run().emit("e3_glt_formation");
    e4_phase_bounds::run().emit("e4_phase_bounds");
    e5_snap_vs_self::run().emit("e5_snap_vs_self");
    e6_chordless::run().emit("e6_chordless");
    e7_tree_comparison::run().emit("e7_tree_comparison");
    e8_invariants::run().emit("e8_invariants");
    e9_space::run().emit("e9_space");
    e10_ablations::run().emit("e10_ablations");
    e12_severity::run().emit("e12_severity");
    e13_message_passing::run().emit("e13_message_passing");
    e15_service::run().emit("e15_service");
    e18_chaos::run().emit("e18_chaos");
    e18_chaos::run_search().emit("e18_chaos_search");
    println!("full battery completed in {:.1}s", t0.elapsed().as_secs_f64());
}
