//! E9 — per-processor space in bits.
fn main() {
    pif_bench::experiments::e9_space::run().emit("e9_space");
}
