//! E4 — Theorem 2: classified starts reach their landmark configurations.
fn main() {
    pif_bench::experiments::e4_phase_bounds::run().emit("e4_phase_bounds");
}
