//! Emits exhaustive-checker throughput measurements as JSON on stdout,
//! and differentially asserts that the sequential, parallel, and
//! reduced engines return identical verdicts on every measured instance
//! (the tier-2 gate runs this as its verify smoke).
//!
//! Used to produce `BENCH_verify_throughput.json`:
//!
//! ```text
//! cargo run --release --bin exp_verify_throughput [-- --workers N] > BENCH_verify_throughput.json
//! ```
//!
//! Three families of rows:
//!
//! * `correction_bound` / `snap_safety` — the full product searches on
//!   the tier-1 instances, seeded from *every* configuration (the
//!   paper's arbitrary-initial-configuration quantifier);
//! * the same two checks on `chain3-mid` (root at the middle), where
//!   the reflection symmetry makes the quotient reduction bite on a
//!   product search;
//! * `snap_wave` — the reachable-wave check seeded from the single
//!   clean starting configuration, which is what scales to the n = 5
//!   instances (`chain5`, `ring5`) and `grid3x2`; `full_space_configs`
//!   on those rows is the configuration count the product search would
//!   have to seed, for the states-explored-vs-full-space ratio.
//!
//! Each row also measures `Reduction::Full` (connected-selection
//! partial-order reduction + symmetry quotient) on the sequential
//! engine: `reduced_states_explored`, `reduced_states_per_sec`, and
//! `states_ratio` (full / reduced; 1.0 where the instance is rigid and
//! the quotient is trivial).
//!
//! The embedded `baseline_states_per_sec` figures are the pre-rewrite
//! sequential checker (commit 2ca1ba9: monolithic `HashSet`, no guard
//! memo, per-transition `enabled_into`) measured in the same container,
//! so `seq_vs_baseline` tracks what the allocation-lean sequential path
//! alone bought; rows added later carry `null`.

use pif_core::PifProtocol;
use pif_graph::{generators, Graph, ProcId};
use pif_verify::{Checker, Reduction, StateSpace};

/// Minimum wall-clock spent per measurement after the cold run.
const MIN_SECS: f64 = 0.3;

/// Pre-rewrite sequential throughput (states/sec), measured at commit
/// 2ca1ba9 in this container: (instance, check, states_per_sec).
const BASELINE: &[(&str, &str, f64)] = &[
    ("chain2", "correction_bound", 1_446_631.0),
    ("chain2", "snap_safety", 2_944_196.0),
    ("chain3", "correction_bound", 1_066_289.0),
    ("chain3", "snap_safety", 1_595_139.0),
    ("triangle", "correction_bound", 957_846.0),
    ("triangle", "snap_safety", 1_512_399.0),
];

#[derive(Clone, Debug, PartialEq)]
struct Summary {
    states_explored: u64,
    violation_count: u64,
    verified: bool,
    violations: String,
}

fn run_check(space: &StateSpace, checker: Checker, check: &str) -> Summary {
    match check {
        "correction_bound" => {
            let bound = 3 * u32::from(space.protocol().l_max()) + 3;
            let r = checker.check_correction_bound(space, bound);
            Summary {
                states_explored: r.states_explored,
                violation_count: r.violation_count,
                verified: r.verified(),
                violations: format!("{:?}", r.violations),
            }
        }
        "snap_safety" | "snap_wave" => {
            let r = if check == "snap_wave" {
                checker.check_snap_wave(space, true)
            } else {
                checker.check_snap_safety(space, true)
            };
            Summary {
                states_explored: r.states_explored,
                violation_count: r.violation_count,
                verified: r.verified(),
                violations: format!("{:?}", r.violations),
            }
        }
        other => panic!("unknown check {other}"),
    }
}

/// Measures steady-state throughput of `check` under `checker` on a
/// fresh space (the cold run, which includes the one-time guard-memo
/// build, is reported separately and excluded from the rate).
fn measure(graph: &Graph, root: ProcId, checker: Checker, check: &str) -> (Summary, f64) {
    let protocol = PifProtocol::new(root, graph);
    let space = StateSpace::new(graph.clone(), protocol);
    let summary = run_check(&space, checker, check); // cold: builds the memo
    let mut runs = 0u32;
    let t0 = std::time::Instant::now();
    loop {
        let warm = run_check(&space, checker, check);
        assert_eq!(warm, summary, "nondeterministic report on {check}");
        runs += 1;
        if t0.elapsed().as_secs_f64() >= MIN_SECS {
            break;
        }
    }
    let per_run = t0.elapsed().as_secs_f64() / f64::from(runs);
    let rate = summary.states_explored as f64 / per_run;
    (summary, rate)
}

fn json_or_null(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |r| format!("{r:.0}"))
}

fn main() {
    // A benchmark run under a misread PIF_WORKERS pin would report the
    // wrong engine configuration — refuse rather than fall back.
    let mut workers = match pif_par::workers_override() {
        Ok(Some(n)) => n,
        Ok(None) => pif_par::host_parallelism(),
        Err(e) => panic!("invalid worker pin: {e}"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers requires a number");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    // (row name, graph, root, check)
    let rows: Vec<(&str, Graph, ProcId, &str)> = {
        let mut v = Vec::new();
        for check in ["correction_bound", "snap_safety"] {
            v.push(("chain2", generators::chain(2).unwrap(), ProcId(0), check));
            v.push(("chain3", generators::chain(3).unwrap(), ProcId(0), check));
            v.push(("triangle", generators::complete(3).unwrap(), ProcId(0), check));
            v.push(("chain3-mid", generators::chain(3).unwrap(), ProcId(1), check));
        }
        for (name, g, root) in [
            ("chain4", generators::chain(4).unwrap(), ProcId(0)),
            ("chain5", generators::chain(5).unwrap(), ProcId(0)),
            ("ring5", generators::ring(5).unwrap(), ProcId(0)),
            ("grid3x2", generators::grid(3, 2).unwrap(), ProcId(1)),
        ] {
            v.push((name, g, root, "snap_wave"));
        }
        v
    };

    println!("{{");
    println!("  \"benchmark\": \"verify_throughput\",");
    println!("  \"unit\": \"states_per_sec\",");
    println!("  \"protocol\": \"PifProtocol (arbitrary-network snap PIF)\",");
    println!(
        "  \"method\": \"cargo run --release --bin exp_verify_throughput; per engine: fresh StateSpace, one cold run (builds the shared guard memo), then repeated runs for >= {MIN_SECS}s; rate = states_explored / steady-state run time. sequential = Checker::sequential (FIFO reference engine), par1/parN = frontier-parallel engine with 1 and N workers over the sharded visited table, reduced = sequential engine under Reduction::Full (connected-selection POR + symmetry quotient). snap_wave rows search the slice reachable from the clean starting configuration instead of seeding every configuration; full_space_configs is what the product search would seed. baseline = pre-rewrite sequential checker at commit 2ca1ba9, same container (null where that commit could not run the instance). Verdicts are asserted identical across engines and reductions before rates are published.\","
    );
    println!("  \"workers\": {workers},");
    println!("  \"host_parallelism\": {},", pif_par::host_parallelism());
    println!("  \"results\": [");
    let mut first = true;
    for (name, graph, root, check) in &rows {
        let (seq_sum, seq_rate) = measure(graph, *root, Checker::sequential(), check);
        let (par1_sum, par1_rate) = measure(graph, *root, Checker::with_workers(1), check);
        let (parn_sum, parn_rate) = measure(graph, *root, Checker::with_workers(workers), check);
        let reduced = Checker::sequential().with_reduction(Reduction::Full);
        let (red_sum, red_rate) = measure(graph, *root, reduced, check);
        assert_eq!(seq_sum, par1_sum, "parallel(1) diverged from sequential on {name}/{check}");
        assert_eq!(seq_sum, parn_sum, "parallel({workers}) diverged from sequential on {name}/{check}");
        assert_eq!(
            (seq_sum.violation_count, seq_sum.verified, &seq_sum.violations),
            (red_sum.violation_count, red_sum.verified, &red_sum.violations),
            "reduced engine verdict diverged on {name}/{check}"
        );
        assert!(seq_sum.verified, "{name}/{check} must verify");
        let config_count = {
            let protocol = PifProtocol::new(*root, graph);
            StateSpace::new(graph.clone(), protocol).config_count()
        };
        let baseline = BASELINE
            .iter()
            .find(|&&(i, c, _)| i == *name && c == *check)
            .map(|&(_, _, r)| r);
        if !first {
            println!(",");
        }
        first = false;
        print!(
            "    {{\"instance\": \"{name}\", \"check\": \"{check}\", \"states_explored\": {}, \"verified\": {}, \"full_space_configs\": {config_count}, \"sequential_states_per_sec\": {seq_rate:.0}, \"par1_states_per_sec\": {par1_rate:.0}, \"parN_states_per_sec\": {parn_rate:.0}, \"reduced_states_explored\": {}, \"reduced_states_per_sec\": {red_rate:.0}, \"states_ratio\": {:.3}, \"baseline_states_per_sec\": {}, \"seq_vs_baseline\": {}, \"parN_vs_seq\": {:.2}}}",
            seq_sum.states_explored,
            seq_sum.verified,
            red_sum.states_explored,
            seq_sum.states_explored as f64 / red_sum.states_explored as f64,
            json_or_null(baseline),
            baseline.map_or_else(
                || "null".to_string(),
                |b| format!("{:.2}", seq_rate / b)
            ),
            parn_rate / seq_rate,
        );
        eprintln!(
            "{name:>10} {check:<17} states {:>9}  seq {:>9.0}/s  par{workers} {:>9.0}/s  reduced {:>9} (x{:.2})",
            seq_sum.states_explored,
            seq_rate,
            parn_rate,
            red_sum.states_explored,
            seq_sum.states_explored as f64 / red_sum.states_explored as f64,
        );
    }
    println!();
    println!("  ]");
    println!("}}");
}
