//! Emits exhaustive-checker throughput measurements as JSON on stdout,
//! and differentially asserts that the sequential and parallel engines
//! return identical reports on every measured instance (the tier-2 gate
//! runs this as its verify smoke).
//!
//! Used to produce `BENCH_verify_throughput.json`:
//!
//! ```text
//! cargo run --release --bin exp_verify_throughput [-- --workers N] > BENCH_verify_throughput.json
//! ```
//!
//! The embedded `baseline_states_per_sec` figures are the pre-rewrite
//! sequential checker (commit 2ca1ba9: monolithic `HashSet`, no guard
//! memo, per-transition `enabled_into`) measured in the same container,
//! so `seq_vs_baseline` tracks what the allocation-lean sequential path
//! alone bought.

use pif_core::PifProtocol;
use pif_graph::{generators, Graph, ProcId};
use pif_verify::{Checker, StateSpace};

/// Minimum wall-clock spent per measurement after the cold run.
const MIN_SECS: f64 = 0.3;

/// Pre-rewrite sequential throughput (states/sec), measured at commit
/// 2ca1ba9 in this container: (instance, check, states_per_sec).
const BASELINE: &[(&str, &str, f64)] = &[
    ("chain2", "correction_bound", 1_446_631.0),
    ("chain2", "snap_safety", 2_944_196.0),
    ("chain3", "correction_bound", 1_066_289.0),
    ("chain3", "snap_safety", 1_595_139.0),
    ("triangle", "correction_bound", 957_846.0),
    ("triangle", "snap_safety", 1_512_399.0),
];

#[derive(Clone, Debug, PartialEq)]
struct Summary {
    states_explored: u64,
    violation_count: u64,
    verified: bool,
    violations: String,
}

fn run_check(space: &StateSpace, checker: Checker, check: &str) -> Summary {
    match check {
        "correction_bound" => {
            let bound = 3 * u32::from(space.protocol().l_max()) + 3;
            let r = checker.check_correction_bound(space, bound);
            Summary {
                states_explored: r.states_explored,
                violation_count: r.violation_count,
                verified: r.verified(),
                violations: format!("{:?}", r.violations),
            }
        }
        "snap_safety" => {
            let r = checker.check_snap_safety(space, true);
            Summary {
                states_explored: r.states_explored,
                violation_count: r.violation_count,
                verified: r.verified(),
                violations: format!("{:?}", r.violations),
            }
        }
        other => panic!("unknown check {other}"),
    }
}

/// Measures steady-state throughput of `check` under `checker` on a
/// fresh space (the cold run, which includes the one-time guard-memo
/// build, is reported separately and excluded from the rate).
fn measure(graph: &Graph, checker: Checker, check: &str) -> (Summary, f64) {
    let protocol = PifProtocol::new(ProcId(0), graph);
    let space = StateSpace::new(graph.clone(), protocol);
    let summary = run_check(&space, checker, check); // cold: builds the memo
    let mut runs = 0u32;
    let t0 = std::time::Instant::now();
    loop {
        let warm = run_check(&space, checker, check);
        assert_eq!(warm, summary, "nondeterministic report on {check}");
        runs += 1;
        if t0.elapsed().as_secs_f64() >= MIN_SECS {
            break;
        }
    }
    let per_run = t0.elapsed().as_secs_f64() / f64::from(runs);
    let rate = summary.states_explored as f64 / per_run;
    (summary, rate)
}

fn main() {
    let mut workers = pif_par::available_workers();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers requires a number");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let instances: Vec<(&str, Graph)> = vec![
        ("chain2", generators::chain(2).unwrap()),
        ("chain3", generators::chain(3).unwrap()),
        ("triangle", generators::complete(3).unwrap()),
    ];

    println!("{{");
    println!("  \"benchmark\": \"verify_throughput\",");
    println!("  \"unit\": \"states_per_sec\",");
    println!("  \"protocol\": \"PifProtocol (arbitrary-network snap PIF)\",");
    println!(
        "  \"method\": \"cargo run --release --bin exp_verify_throughput; per engine: fresh StateSpace, one cold run (builds the shared guard memo), then repeated runs for >= {MIN_SECS}s; rate = states_explored / steady-state run time. sequential = Checker::sequential (FIFO + HashSet reference engine), par1/parN = frontier-parallel engine with 1 and N workers over the sharded visited table. baseline = pre-rewrite sequential checker at commit 2ca1ba9, same container. Reports are asserted identical across engines before rates are published.\","
    );
    println!("  \"workers\": {workers},");
    println!("  \"host_parallelism\": {},", pif_par::available_workers());
    println!("  \"results\": [");
    let mut first = true;
    for (name, graph) in &instances {
        for check in ["correction_bound", "snap_safety"] {
            let (seq_sum, seq_rate) = measure(graph, Checker::sequential(), check);
            let (par1_sum, par1_rate) = measure(graph, Checker::with_workers(1), check);
            let (parn_sum, parn_rate) = measure(graph, Checker::with_workers(workers), check);
            assert_eq!(seq_sum, par1_sum, "parallel(1) diverged from sequential on {name}/{check}");
            assert_eq!(seq_sum, parn_sum, "parallel({workers}) diverged from sequential on {name}/{check}");
            assert!(seq_sum.verified, "{name}/{check} must verify");
            let baseline = BASELINE
                .iter()
                .find(|&&(i, c, _)| i == *name && c == check)
                .map(|&(_, _, r)| r)
                .unwrap_or(f64::NAN);
            if !first {
                println!(",");
            }
            first = false;
            print!(
                "    {{\"instance\": \"{name}\", \"check\": \"{check}\", \"states_explored\": {}, \"verified\": {}, \"sequential_states_per_sec\": {:.0}, \"par1_states_per_sec\": {:.0}, \"parN_states_per_sec\": {:.0}, \"baseline_states_per_sec\": {:.0}, \"seq_vs_baseline\": {:.2}, \"parN_vs_seq\": {:.2}}}",
                seq_sum.states_explored,
                seq_sum.verified,
                seq_rate,
                par1_rate,
                parn_rate,
                baseline,
                seq_rate / baseline,
                parn_rate / seq_rate,
            );
            eprintln!(
                "{name:>9} {check:<17} states {:>8}  seq {:>9.0}/s  par1 {:>9.0}/s  par{workers} {:>9.0}/s  (baseline {:>9.0}/s, seq x{:.2})",
                seq_sum.states_explored, seq_rate, par1_rate, parn_rate, baseline, seq_rate / baseline
            );
        }
    }
    println!();
    println!("  ]");
    println!("}}");
}
