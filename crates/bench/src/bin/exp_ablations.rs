//! E10 — design-choice ablations.
fn main() {
    pif_bench::experiments::e10_ablations::run().emit("e10_ablations");
}
