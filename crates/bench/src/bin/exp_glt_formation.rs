//! E3 — Theorem 3: GoodLegalTree within 8*Lmax+7 rounds.
fn main() {
    pif_bench::experiments::e3_glt_formation::run().emit("e3_glt_formation");
}
