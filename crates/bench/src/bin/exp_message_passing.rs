//! E13 — the algorithm over asynchronous message passing.
fn main() {
    pif_bench::experiments::e13_message_passing::run().emit("e13_message_passing");
}
