//! E15 — wave-service throughput and snap under load.
use pif_bench::experiments::e15_service;

fn main() {
    e15_service::run().emit("e15_service");
}
