//! `pif-trace` — record, replay and diff PIF execution traces.
//!
//! ```text
//! pif-trace record <topology> <out.jsonl> [daemon] [seed] [max-steps]
//! pif-trace replay <in.jsonl> [out.jsonl]
//! pif-trace diff <a.jsonl> <b.jsonl>
//! ```
//!
//! * `record` runs the snap-PIF protocol from a seeded random initial
//!   configuration on `<topology>` (a [`Topology`] spec such as `chain:16`,
//!   `torus:4x4` or `random:64:0.1:7`) under the named daemon and writes
//!   the versioned JSONL trace.
//! * `replay` re-executes a trace step by step with validation on and
//!   reports whether the re-recorded trace (final configuration, totals
//!   and per-phase metrics included) is identical to the input.
//! * `diff` compares two trace files field by field.
//!
//! Exit status: `0` on success (and identical traces), `1` when `replay`
//! diverges-free but re-records a different trace or `diff` finds
//! differences, `2` on any [`BenchError`].

use std::process::ExitCode;

use pif_bench::error::BenchError;
use pif_bench::workloads::DaemonKind;
use pif_core::{initial, PifProtocol};
use pif_daemon::trace_io::{diff, replay};
use pif_daemon::{
    Fanout, MetricsObserver, PhaseTag, RecordedTrace, RunLimits, Simulator, StopPolicy,
    TraceRecorder,
};
use pif_graph::{ProcId, Topology};

const USAGE: &str = "usage:
  pif-trace record <topology> <out.jsonl> [daemon] [seed] [max-steps]
  pif-trace replay <in.jsonl> [out.jsonl]
  pif-trace diff <a.jsonl> <b.jsonl>

topologies: chain:N ring:N torus:WxH random:N:P:SEED ... (see pif-graph)
daemons:    sync central-seq central-rand dist-0.5 adversarial";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("pif-trace: {e}");
            if matches!(e, BenchError::Usage(_)) {
                eprintln!("{USAGE}");
            }
            ExitCode::from(2)
        }
    }
}

/// Dispatches one invocation; `Ok(true)` means "success and identical".
fn run(args: &[String]) -> Result<bool, BenchError> {
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]).map(|()| true),
        Some("replay") => replay_cmd(&args[1..]),
        Some("diff") => diff_cmd(&args[1..]),
        Some(other) => Err(BenchError::Usage(format!("unknown subcommand {other:?}"))),
        None => Err(BenchError::Usage("missing subcommand".into())),
    }
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, BenchError> {
    args.get(i).map(String::as_str).ok_or_else(|| BenchError::Usage(format!("missing {what}")))
}

fn num(args: &[String], i: usize, default: u64, what: &str) -> Result<u64, BenchError> {
    match args.get(i) {
        None => Ok(default),
        Some(s) => {
            s.parse().map_err(|_| BenchError::Usage(format!("{what} {s:?} is not a number")))
        }
    }
}

fn record(args: &[String]) -> Result<(), BenchError> {
    let topology: Topology = arg(args, 0, "topology spec")?.parse()?;
    let out = arg(args, 1, "output path")?;
    let daemon_name = args.get(2).map(String::as_str).unwrap_or("central-rand");
    let kind = DaemonKind::parse(daemon_name)
        .ok_or_else(|| BenchError::Usage(format!("unknown daemon {daemon_name:?}")))?;
    let seed = num(args, 3, 42, "seed")?;
    let max_steps = num(args, 4, 20_000, "max-steps")?;

    let g = topology.build()?;
    let n = g.len();
    let protocol = PifProtocol::new(ProcId(0), &g);
    let init = initial::random_config(&g, &protocol, seed);
    let limits = RunLimits::new(max_steps, max_steps);
    let mut sim = Simulator::builder(g, protocol.clone()).states(init).limits(limits).build();
    let mut metrics = MetricsObserver::for_protocol(&protocol, n);
    let mut recorder = TraceRecorder::start(&sim, kind.name(), seed);
    let mut daemon = kind.build(n, seed);
    // Budget exhaustion is the normal way a PIF run ends (the root starts
    // a new wave forever), so the stop policy is Limits, not Fixpoint.
    let mut observers = Fanout::new(&mut metrics, &mut recorder);
    sim.run(daemon.as_mut(), &mut observers, StopPolicy::Limits(limits))?;
    let trace = recorder.finish(&sim, metrics.report());
    trace.write_file(out)?;
    print_summary("recorded", &trace);
    Ok(())
}

fn replay_cmd(args: &[String]) -> Result<bool, BenchError> {
    let input = arg(args, 0, "input path")?;
    let trace = RecordedTrace::read_file(input)?;
    let g = trace.graph()?;
    let protocol = PifProtocol::new(ProcId(0), &g);
    let replayed = replay(&trace, protocol)?;
    if let Some(out) = args.get(1) {
        replayed.write_file(out)?;
    }
    print_summary("replayed", &replayed);
    let lines = diff(&trace, &replayed);
    report_diff(&lines, "replay matches the recording")
}

fn diff_cmd(args: &[String]) -> Result<bool, BenchError> {
    let a = RecordedTrace::read_file(arg(args, 0, "first path")?)?;
    let b = RecordedTrace::read_file(arg(args, 1, "second path")?)?;
    let lines = diff(&a, &b);
    report_diff(&lines, "traces are identical")
}

fn report_diff(lines: &[String], ok_msg: &str) -> Result<bool, BenchError> {
    if lines.is_empty() {
        println!("{ok_msg}");
        return Ok(true);
    }
    for l in lines {
        println!("{l}");
    }
    Ok(false)
}

fn print_summary(verb: &str, t: &RecordedTrace) {
    let (steps, rounds, moves) = t.totals;
    println!(
        "{verb} {} (n={}, daemon={}, seed={}): {steps} steps, {rounds} rounds, {moves} moves",
        t.graph_name, t.n, t.daemon, t.seed
    );
    let per_phase: Vec<String> = PhaseTag::ALL
        .iter()
        .map(|&tag| format!("{tag}={}", t.phases.rounds_of(tag)))
        .collect();
    println!("phase rounds: {}", per_phase.join(" "));
}
