//! E2 — Theorem 1: error correction within 3*Lmax+3 rounds.
fn main() {
    pif_bench::experiments::e2_error_correction::run().emit("e2_error_correction");
}
