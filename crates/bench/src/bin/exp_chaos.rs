//! E18 — chaos: churn soaks and adversarial schedule search.
use pif_bench::experiments::e18_chaos;

fn main() {
    e18_chaos::run().emit("e18_chaos");
    e18_chaos::run_search().emit("e18_chaos_search");
}
