//! Parallel seed sweeps: experiments run thousands of independent
//! simulations; this fans them out over the available cores with
//! std's scoped threads.

/// Maps `f` over `items` in parallel, preserving input order in the
/// result.
///
/// # Panics
///
/// Panics (propagating the worker's panic message) if `f` panics — an
/// experiment should fail loudly, not silently drop samples.
///
/// # Examples
///
/// ```
/// let squares = pif_bench::runner::par_map((0u64..100).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    let chunk_size = n.div_ceil(threads);

    // Move the items into per-thread chunks up front; each worker returns
    // its mapped chunk, and chunks are re-concatenated in order.
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_size).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }

    let mapped: Vec<Vec<R>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });

    mapped.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..1000).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as i32) * 2);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![5], |x: i32| x + 1), vec![6]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
