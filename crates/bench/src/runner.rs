//! Parallel seed sweeps: experiments run thousands of independent
//! simulations; this fans them out over the available cores.
//!
//! The implementation lives in the shared [`pif_par`] crate (the
//! exhaustive checker in `pif-verify` uses the same primitives without
//! depending on the bench harness); this module re-exports it under the
//! historical `pif_bench::runner` path.

/// Maps `f` over `items` in parallel, preserving input order in the
/// result. Items are claimed through a shared atomic index (work
/// stealing), so uneven per-item costs — one slow topology in a sweep —
/// no longer idle whole threads.
///
/// # Panics
///
/// Panics (propagating the worker's panic message) if `f` panics — an
/// experiment should fail loudly, not silently drop samples.
///
/// # Examples
///
/// ```
/// let squares = pif_bench::runner::par_map((0u64..100).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    pif_par::par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..1000).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as i32) * 2);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![5], |x: i32| x + 1), vec![6]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
