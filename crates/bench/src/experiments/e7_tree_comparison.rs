//! **E7 — positioning against the tree algorithms [7, 9].** On tree
//! topologies, the arbitrary-network algorithm completes PIF cycles
//! within a constant factor of the tree-specialized snap PIF. The factor
//! is the price of not knowing the tree: the counting (`Count`) and `Fok`
//! sub-waves add two extra traversals.

use pif_baselines::tree_pif::{TreePifProtocol, TREE_B, TREE_F};
use pif_core::wave::{UnitAggregate, WaveRunner};
use pif_core::PifProtocol;
use pif_daemon::daemons::Synchronous;
use pif_daemon::{RunLimits, Simulator};
use pif_graph::{ProcId, Topology};

use crate::report::Table;
use crate::runner::par_map;
use crate::workloads::tree_suite;

/// One tree's comparison row.
#[derive(Clone, Debug)]
pub struct TreeCompRow {
    /// The tree topology.
    pub topology: Topology,
    /// Tree height from the root.
    pub height: u32,
    /// Rounds of one cycle of the arbitrary-network snap PIF.
    pub arbitrary_rounds: u64,
    /// Rounds of one cycle of the tree-specialized snap PIF.
    pub tree_rounds: u64,
}

impl TreeCompRow {
    /// Overhead factor of generality.
    pub fn factor(&self) -> f64 {
        self.arbitrary_rounds as f64 / self.tree_rounds.max(1) as f64
    }
}

/// Runs E7 over the tree suite.
pub fn run() -> Table {
    run_on(tree_suite())
}

/// Entry point over explicit topologies.
pub fn run_on(topologies: Vec<Topology>) -> Table {
    let rows = par_map(topologies, |t| measure(&t));
    let mut table = Table::new(
        "E7 — cycle rounds on trees: arbitrary-network vs tree-specialized snap PIF",
        &["tree", "height", "arbitrary(rounds)", "tree[7,9](rounds)", "factor"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.height.to_string(),
            r.arbitrary_rounds.to_string(),
            r.tree_rounds.to_string(),
            format!("{:.2}", r.factor()),
        ]);
    }
    table
}

/// Measures one tree under the synchronous daemon (rounds == steps).
pub fn measure(topology: &Topology) -> TreeCompRow {
    let g = topology.build().expect("tree topologies are valid");
    let root = ProcId(0);
    let height = pif_graph::metrics::eccentricity(&g, root);

    // Arbitrary-network algorithm.
    let protocol = PifProtocol::new(root, &g);
    let mut runner = WaveRunner::new(g.clone(), protocol, UnitAggregate);
    let outcome = runner
        .run_cycle_limited(1u8, &mut Synchronous::first_action(), RunLimits::default())
        .expect("cycle failed");
    assert!(outcome.satisfies_spec());

    // Tree-specialized algorithm: run from clean until the root's
    // F-action under the synchronous daemon.
    let tree_protocol = TreePifProtocol::on_tree(&g, root, 1);
    let init = TreePifProtocol::clean_config(g.len());
    let mut sim = Simulator::new(g.clone(), tree_protocol, init);
    let mut d = Synchronous::first_action();
    let mut initiated = false;
    let mut tree_rounds = 0u64;
    for _ in 0..100_000u64 {
        if sim.is_terminal() {
            break;
        }
        sim.step(&mut d).expect("tree-pif step failed");
        let mut done = false;
        for &(p, a) in sim.last_executed() {
            if p == root && a == TREE_B {
                initiated = true;
                tree_rounds = 0;
            }
            if p == root && a == TREE_F && initiated {
                done = true;
            }
        }
        tree_rounds += 1; // synchronous daemon: one round per step
        if done {
            break;
        }
    }

    TreeCompRow {
        topology: topology.clone(),
        height,
        arbitrary_rounds: outcome.cycle_rounds,
        tree_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_factor_is_bounded() {
        for t in [
            Topology::Chain { n: 9 },
            Topology::Star { n: 9 },
            Topology::KaryTree { n: 15, k: 2 },
        ] {
            let row = measure(&t);
            assert!(row.tree_rounds > 0);
            // The generality overhead: the arbitrary algorithm adds the
            // Count and Fok traversals — bounded by a small constant
            // factor (Theorem 4's 5h+5 vs the tree algorithm's ~2h).
            assert!(
                row.factor() <= 4.0,
                "{t:?}: factor {} too large ({} vs {})",
                row.factor(),
                row.arbitrary_rounds,
                row.tree_rounds
            );
            assert!(row.arbitrary_rounds >= row.tree_rounds, "{t:?}: generality is not free");
        }
    }
}
