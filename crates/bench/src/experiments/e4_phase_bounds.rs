//! **E4 — Theorem 2.** With a non-empty legal tree, classified starting
//! configurations reach their landmark configurations within the stated
//! round bounds:
//!
//! 1. `Pif_r = F` → a Start Broadcast (SB) configuration within
//!    `4·L_max + 4` rounds;
//! 2. `Pif_r = B ∧ Fok_r` → an End Feedback (EF) configuration within
//!    `5·L_max + 4` rounds;
//! 3. `Pif_r = B ∧ ¬Fok_r` → an End Broadcast Normal (EBN) configuration
//!    within `5·L_max + 4` rounds.
//!
//! Starting configurations are the adversarial fake-tree corruption with
//! the root's registers forced into each case (kept locally normal, as the
//! theorem's hypotheses require a live legal tree).

use pif_core::analysis::classify;
use pif_core::{initial, Phase, PifProtocol, PifState};
use pif_daemon::{
    MetricsObserver, PhaseReport, PhaseTag, RunLimits, Simulator, StopPolicy,
};
use pif_graph::{ProcId, Topology};

use crate::report::{Stats, Table};
use crate::runner::par_map;
use crate::workloads::{recovery_suite, DaemonKind};

/// The three cases of Theorem 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Case {
    /// `Pif_r = F` → SB within `4·L_max + 4`.
    RootF,
    /// `Pif_r = B ∧ Fok_r` → EF within `5·L_max + 4`.
    RootBFok,
    /// `Pif_r = B ∧ ¬Fok_r` → EBN within `5·L_max + 4`.
    RootBNoFok,
}

impl Case {
    /// All cases.
    pub const ALL: [Case; 3] = [Case::RootF, Case::RootBFok, Case::RootBNoFok];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Case::RootF => "1: Pif_r=F -> SB",
            Case::RootBFok => "2: Pif_r=B&Fok -> EF",
            Case::RootBNoFok => "3: Pif_r=B&!Fok -> EBN",
        }
    }

    /// The paper's bound as a function of `L_max`.
    pub fn bound(self, l_max: u16) -> u64 {
        match self {
            Case::RootF => 4 * u64::from(l_max) + 4,
            Case::RootBFok | Case::RootBNoFok => 5 * u64::from(l_max) + 4,
        }
    }

    fn force_root(self, protocol: &PifProtocol, states: &mut [PifState]) {
        let r = protocol.root().index();
        match self {
            Case::RootF => states[r].phase = Phase::F,
            Case::RootBFok => {
                states[r].phase = Phase::B;
                states[r].fok = true;
                states[r].count = protocol.n(); // GoodFok(r) kept
            }
            Case::RootBNoFok => {
                states[r].phase = Phase::B;
                states[r].fok = false;
                states[r].count = 1; // GoodCount/GoodFok kept
            }
        }
    }

    fn reached(self, protocol: &PifProtocol, g: &pif_graph::Graph, states: &[PifState]) -> bool {
        match self {
            Case::RootF => classify::is_start_broadcast(protocol, states),
            Case::RootBFok => classify::is_end_feedback(protocol, states),
            Case::RootBNoFok => {
                // EBN proper; the garbage wave may also legitimately reach
                // the Fok stage first once every processor is in the GLT.
                classify::is_ebn(protocol, g, states)
                    || states[protocol.root().index()].fok
            }
        }
    }
}

/// The Theorem 1 error-correction bound `3·L_max + 3`: rounds in which a
/// correction action (`B_CORRECTION`/`F_CORRECTION`) can still fire.
pub fn correction_bound(l_max: u16) -> u64 {
    3 * u64::from(l_max) + 3
}

/// Measures one case from one corrupted start, with per-phase attribution.
///
/// Returns the total completed rounds to the landmark configuration plus
/// the [`PhaseReport`] of the run (per-phase moves/steps/rounds), so the
/// report tables and theorem-bound tests can check not just the aggregate
/// bound but which phases consumed the rounds.
pub fn case_run(
    case: Case,
    g: &pif_graph::Graph,
    protocol: &PifProtocol,
    seed: u64,
    daemon: &mut dyn pif_daemon::Daemon<PifState>,
) -> (u64, PhaseReport) {
    let mut init = if g.len() > 1 {
        initial::adversarial_config(g, protocol, ProcId(1 + (seed as u32 % (g.len() as u32 - 1))), seed)
    } else {
        initial::normal_starting(g)
    };
    case.force_root(protocol, &mut init);
    let mut sim = Simulator::new(g.clone(), protocol.clone(), init);
    let mut metrics = MetricsObserver::for_protocol(protocol, g.len());
    let proto = protocol.clone();
    let graph = g.clone();
    let mut target = move |s: &Simulator<PifProtocol>| case.reached(&proto, &graph, s.states());
    let stats = sim
        .run(
            daemon,
            &mut metrics,
            StopPolicy::Predicate(RunLimits::new(2_000_000, 200_000), &mut target),
        )
        .expect("phase-bound run exceeded its budget");
    (stats.rounds, metrics.report())
}

/// Measures one case from one corrupted start (rounds only).
pub fn case_rounds(
    case: Case,
    g: &pif_graph::Graph,
    protocol: &PifProtocol,
    seed: u64,
    daemon: &mut dyn pif_daemon::Daemon<PifState>,
) -> u64 {
    case_run(case, g, protocol, seed, daemon).0
}

/// One (topology × case) row.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// The topology instance.
    pub topology: Topology,
    /// Which case of Theorem 2.
    pub case: Case,
    /// The paper's bound.
    pub bound: u64,
    /// The Theorem 1 bound `3·L_max + 3` on correction-phase rounds.
    pub corr_bound: u64,
    /// Measured statistics.
    pub stats: Stats,
    /// Maximum rounds attributed to each [`PhaseTag`] across all samples,
    /// indexed by [`PhaseTag::index`].
    pub phase_rounds_max: [u64; PhaseTag::COUNT],
    /// Whether every sample respected both the case bound and the
    /// correction bound.
    pub ok: bool,
}

impl PhaseRow {
    /// Maximum rounds attributed to `tag` across the row's samples.
    pub fn phase_rounds_of(&self, tag: PhaseTag) -> u64 {
        self.phase_rounds_max[tag.index()]
    }
}

/// Runs E4 over the full recovery suite.
pub fn run() -> Table {
    run_on(recovery_suite(), 25)
}

/// Scaled-down entry point.
pub fn run_on(topologies: Vec<Topology>, seeds: u64) -> Table {
    let jobs: Vec<(Topology, Case)> = topologies
        .into_iter()
        .flat_map(|t| Case::ALL.into_iter().map(move |c| (t.clone(), c)))
        .collect();
    let rows = par_map(jobs, |(t, c)| measure(&t, c, seeds));
    let mut table = Table::new(
        "E4 / Theorem 2 — classified starts reach their landmarks in bounded rounds",
        &[
            "topology",
            "case",
            "bound",
            "samples",
            "rounds_mean",
            "rounds_max",
            "bcast_r",
            "fok_r",
            "fback_r",
            "clean_r",
            "corr_r",
            "corr_bound",
            "within_bound",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.case.name().to_string(),
            r.bound.to_string(),
            r.stats.n.to_string(),
            format!("{:.1}", r.stats.mean),
            r.stats.max.to_string(),
            r.phase_rounds_of(PhaseTag::Broadcast).to_string(),
            r.phase_rounds_of(PhaseTag::Fok).to_string(),
            r.phase_rounds_of(PhaseTag::Feedback).to_string(),
            r.phase_rounds_of(PhaseTag::Cleaning).to_string(),
            r.phase_rounds_of(PhaseTag::Correction).to_string(),
            r.corr_bound.to_string(),
            if r.ok { "yes" } else { "VIOLATED" }.to_string(),
        ]);
    }
    table
}

/// Measures one topology × case.
pub fn measure(topology: &Topology, case: Case, seeds: u64) -> PhaseRow {
    let g = topology.build().expect("suite topologies are valid");
    let protocol = PifProtocol::new(ProcId(0), &g);
    let bound = case.bound(protocol.l_max());
    let corr_bound = correction_bound(protocol.l_max());
    let mut samples = Vec::new();
    let mut phase_rounds_max = [0u64; PhaseTag::COUNT];
    for seed in 0..seeds {
        for kind in [DaemonKind::Synchronous, DaemonKind::CentralRandom] {
            let mut d = kind.build(g.len(), seed);
            let (rounds, phases) = case_run(case, &g, &protocol, seed, d.as_mut());
            samples.push(rounds);
            for tag in PhaseTag::ALL {
                let r = &mut phase_rounds_max[tag.index()];
                *r = (*r).max(phases.rounds_of(tag));
            }
        }
    }
    let stats = Stats::of(&samples);
    let ok = stats.max <= bound && phase_rounds_max[PhaseTag::Correction.index()] <= corr_bound;
    PhaseRow {
        topology: topology.clone(),
        case,
        bound,
        corr_bound,
        stats,
        phase_rounds_max,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_bounds_hold_on_small_suite() {
        for t in [Topology::Chain { n: 6 }, Topology::Ring { n: 6 }] {
            for case in Case::ALL {
                let row = measure(&t, case, 6);
                assert!(
                    row.ok,
                    "{t:?} {}: max {} > bound {} (or correction rounds {} > {})",
                    case.name(),
                    row.stats.max,
                    row.bound,
                    row.phase_rounds_of(PhaseTag::Correction),
                    row.corr_bound,
                );
                // The run did attributable work: at least one phase saw a
                // completed round, and no single phase exceeds the bound.
                assert!(PhaseTag::ALL.iter().any(|t| row.phase_rounds_of(*t) > 0));
                for tag in PhaseTag::ALL {
                    assert!(row.phase_rounds_of(tag) <= row.bound);
                }
            }
        }
    }
}
