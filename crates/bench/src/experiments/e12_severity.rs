//! **E12 — fault-severity sweep (beyond the paper).** Corrupt exactly `k`
//! registers of the normal starting configuration and measure, as a
//! function of `k`: the first-wave success rate (the snap property
//! predicts a flat 100% — severity must not matter) and the rounds until
//! every processor is normal again (expected to grow with `k` but stay
//! under Theorem 1's bound).

use pif_core::{analysis, checker, initial, PifProtocol};
use pif_daemon::{RunLimits, Simulator};
use pif_graph::{ProcId, Topology};

use crate::report::{Stats, Table};
use crate::runner::par_map;
use crate::workloads::DaemonKind;

/// One (topology × k) row.
#[derive(Clone, Debug)]
pub struct SeverityRow {
    /// The topology instance.
    pub topology: Topology,
    /// Number of corrupted registers.
    pub k: usize,
    /// First waves that satisfied the PIF specification.
    pub snap_ok: usize,
    /// Trials.
    pub trials: usize,
    /// Recovery-round statistics.
    pub recovery: Stats,
    /// Theorem 1 bound.
    pub bound: u64,
}

/// Runs E12 with the default parameters.
pub fn run() -> Table {
    run_on(
        vec![
            Topology::Ring { n: 12 },
            Topology::Grid { w: 4, h: 3 },
            Topology::Random { n: 12, p: 0.2, seed: 9 },
        ],
        &[0, 1, 2, 4, 8, 16, 32],
        40,
    )
}

/// Parameterized entry point.
pub fn run_on(topologies: Vec<Topology>, ks: &[usize], trials: u64) -> Table {
    let jobs: Vec<(Topology, usize)> = topologies
        .into_iter()
        .flat_map(|t| ks.iter().map(move |&k| (t.clone(), k)))
        .collect();
    let rows = par_map(jobs, |(t, k)| measure(&t, k, trials));
    let mut table = Table::new(
        "E12 — fault severity: k corrupted registers vs first-wave success and recovery",
        &["topology", "k", "snap_ok", "trials", "recovery_mean", "recovery_max", "3Lmax+3"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.k.to_string(),
            r.snap_ok.to_string(),
            r.trials.to_string(),
            format!("{:.1}", r.recovery.mean),
            r.recovery.max.to_string(),
            r.bound.to_string(),
        ]);
    }
    table
}

/// Measures one (topology, k) point.
pub fn measure(topology: &Topology, k: usize, trials: u64) -> SeverityRow {
    let g = topology.build().expect("suite topologies are valid");
    let protocol = PifProtocol::new(ProcId(0), &g);
    let bound = 3 * u64::from(protocol.l_max()) + 3;
    let mut snap_ok = 0usize;
    let mut recovery = Vec::new();
    for seed in 0..trials {
        let mut init = initial::normal_starting(&g);
        initial::corrupt_registers(&mut init, &g, &protocol, k, seed);

        // First-wave verdict.
        let mut d = DaemonKind::CentralRandom.build(g.len(), seed);
        let report = checker::check_first_wave(
            g.clone(),
            protocol.clone(),
            init.clone(),
            d.as_mut(),
            RunLimits::new(500_000, 100_000),
        )
        .expect("checker run failed");
        if report.holds() {
            snap_ok += 1;
        }

        // Recovery rounds under the synchronous daemon.
        let mut sim = Simulator::new(g.clone(), protocol.clone(), init);
        let proto = protocol.clone();
        let graph = g.clone();
        let mut recovered =
            move |s: &Simulator<pif_core::PifProtocol>| {
                analysis::abnormal_procs(&proto, &graph, s.states()).is_empty()
            };
        let stats = sim
            .run(
                DaemonKind::Synchronous.build(g.len(), seed).as_mut(),
                &mut pif_daemon::NoOpObserver,
                pif_daemon::StopPolicy::Predicate(RunLimits::new(500_000, 100_000), &mut recovered),
            )
            .expect("recovery run failed");
        recovery.push(stats.rounds);
    }
    SeverityRow {
        topology: topology.clone(),
        k,
        snap_ok,
        trials: trials as usize,
        recovery: Stats::of(&recovery),
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_rate_is_flat_at_100_percent() {
        for k in [0usize, 2, 6, 20] {
            let row = measure(&Topology::Ring { n: 8 }, k, 12);
            assert_eq!(row.snap_ok, row.trials, "k = {k}");
            assert!(row.recovery.max <= row.bound, "k = {k}");
        }
    }

    #[test]
    fn zero_corruption_needs_zero_recovery() {
        let row = measure(&Topology::Grid { w: 3, h: 2 }, 0, 5);
        assert_eq!(row.recovery.max, 0);
    }
}
