//! **E8 — Properties 1 and 2.** The paper's invariants hold in every
//! configuration along every execution: Property 1 in all configurations,
//! Property 2 in all *normal* configurations (it is stated for those).
//!
//! Attach the invariant monitor to (a) clean cycles on every topology ×
//! daemon (with the chordless check, which is sound from clean starts)
//! and (b) recovery executions from fuzzed configurations (without it),
//! and count checked steps and violations. Expected: zero violations over
//! hundreds of thousands of checked configurations.

use pif_core::analysis::InvariantMonitor;
use pif_core::{initial, PifProtocol};
use pif_daemon::{RunLimits, Simulator};
use pif_graph::{ProcId, Topology};

use crate::report::Table;
use crate::runner::par_map;
use crate::workloads::{recovery_suite, DaemonKind};

/// One topology's monitoring totals.
#[derive(Clone, Debug)]
pub struct InvariantRow {
    /// The topology instance.
    pub topology: Topology,
    /// Steps whose post-configuration was checked.
    pub steps_checked: u64,
    /// Violations of Property 1.
    pub p1_violations: usize,
    /// Violations of Property 2.
    pub p2_violations: usize,
    /// Violations of chordless parent paths (clean runs only).
    pub chordless_violations: usize,
}

/// Runs E8 over the full recovery suite.
pub fn run() -> Table {
    run_on(recovery_suite(), 20)
}

/// Scaled-down entry point.
pub fn run_on(topologies: Vec<Topology>, seeds: u64) -> Table {
    let rows = par_map(topologies, |t| measure(&t, seeds));
    let mut table = Table::new(
        "E8 / Properties 1-2 — invariant monitoring (expect zero violations)",
        &["topology", "steps_checked", "P1_viol", "P2_viol", "chordless_viol"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.steps_checked.to_string(),
            r.p1_violations.to_string(),
            r.p2_violations.to_string(),
            r.chordless_violations.to_string(),
        ]);
    }
    table
}

/// Measures one topology.
pub fn measure(topology: &Topology, seeds: u64) -> InvariantRow {
    let g = topology.build().expect("suite topologies are valid");
    let root = ProcId(0);
    let protocol = PifProtocol::new(root, &g);
    let mut steps_checked = 0u64;
    let mut p1 = 0usize;
    let mut p2 = 0usize;
    let mut ch = 0usize;

    let mut absorb = |monitor: &InvariantMonitor| {
        steps_checked += monitor.steps_seen();
        for v in monitor.violations() {
            match v.invariant {
                "Property 1" => p1 += 1,
                "Property 2" => p2 += 1,
                _ => ch += 1,
            }
        }
    };

    // (a) Clean cycles, chordless check on.
    for kind in DaemonKind::ALL {
        let mut d = kind.build(g.len(), 1);
        let init = initial::normal_starting(&g);
        let mut sim = Simulator::new(g.clone(), protocol.clone(), init);
        let mut monitor = InvariantMonitor::new(protocol.clone()).with_chordless_check();
        let mut target = |s: &Simulator<PifProtocol>| {
            s.steps() > 0 && initial::is_normal_starting(s.states())
        };
        sim.run(
            d.as_mut(),
            &mut monitor,
            pif_daemon::StopPolicy::Predicate(RunLimits::new(2_000_000, 500_000), &mut target),
        )
        .expect("clean cycle failed");
        absorb(&monitor);
    }

    // (b) Recovery runs from fuzzed configurations, chordless check off
    // (corrupted trees may legitimately contain chords until corrected).
    for seed in 0..seeds {
        for kind in [DaemonKind::Synchronous, DaemonKind::CentralRandom] {
            let mut d = kind.build(g.len(), seed);
            let init = initial::random_config(&g, &protocol, seed);
            let mut sim = Simulator::new(g.clone(), protocol.clone(), init);
            let mut monitor = InvariantMonitor::new(protocol.clone());
            // Run through recovery and one subsequent full cycle.
            let proto = protocol.clone();
            let graph = g.clone();
            let mut seen_clean = false;
            let mut target = move |s: &Simulator<PifProtocol>| {
                if initial::is_normal_starting(s.states()) {
                    seen_clean = true;
                }
                seen_clean
                    && pif_core::analysis::abnormal_procs(&proto, &graph, s.states()).is_empty()
            };
            sim.run(
                d.as_mut(),
                &mut monitor,
                pif_daemon::StopPolicy::Predicate(RunLimits::new(2_000_000, 500_000), &mut target),
            )
            .expect("recovery run failed");
            absorb(&monitor);
        }
    }

    InvariantRow {
        topology: topology.clone(),
        steps_checked,
        p1_violations: p1,
        p2_violations: p2,
        chordless_violations: ch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_violations_on_small_suite() {
        for t in [Topology::Ring { n: 6 }, Topology::Grid { w: 3, h: 2 }] {
            let row = measure(&t, 5);
            assert!(row.steps_checked > 0);
            assert_eq!(row.p1_violations, 0, "{t:?}");
            assert_eq!(row.p2_violations, 0, "{t:?}");
            assert_eq!(row.chordless_violations, 0, "{t:?}");
        }
    }
}
