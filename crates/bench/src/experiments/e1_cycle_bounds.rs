//! **E1 — Theorem 4.** Starting from the normal starting (SBN)
//! configuration, a PIF cycle completes in at most `5h + 5` rounds, where
//! `h` is the height of the tree constructed during the cycle; `h` is
//! bounded by the longest elementary chordless path and is `Ω(diameter)`.
//!
//! For every topology in the size sweep and every daemon in the panel, run
//! one full cycle from SBN and compare the measured rounds against the
//! bound computed from the *measured* `h` of that same run.

use pif_core::wave::{UnitAggregate, WaveRunner};
use pif_core::PifProtocol;
use pif_daemon::RunLimits;
use pif_graph::{chordless, metrics, ProcId, Topology};

use crate::report::Table;
use crate::runner::par_map;
use crate::workloads::{size_sweep, DaemonKind};

/// One topology's measurements.
#[derive(Clone, Debug)]
pub struct CycleRow {
    /// The topology instance.
    pub topology: Topology,
    /// Network size.
    pub n: usize,
    /// Graph diameter.
    pub diameter: u32,
    /// Longest chordless path length (lower bound if search was budgeted).
    pub lcp: usize,
    /// Whether the chordless-path search was exact.
    pub lcp_exact: bool,
    /// Worst (max) observed tree height across the daemon panel.
    pub h_max: u32,
    /// Worst (max) observed cycle rounds across the daemon panel.
    pub rounds_max: u64,
    /// The bound `5·h + 5` evaluated at the `h` of the worst run.
    pub bound_at_worst: u64,
    /// Whether every run respected its own `5h + 5` bound.
    pub bound_ok: bool,
    /// Whether every run's `h` respected `h ≤ lcp` (only judged when the
    /// lcp search was exact).
    pub h_ok: bool,
}

/// Runs E1 over the full size sweep.
pub fn run() -> Table {
    run_on(size_sweep(), 3)
}

/// Runs E1 over the given topologies with `seeds` random-daemon seeds per
/// point (scaled-down entry point for tests).
pub fn run_on(topologies: Vec<Topology>, seeds: u64) -> Table {
    let rows = par_map(topologies, |t| measure(&t, seeds));
    let mut table = Table::new(
        "E1 / Theorem 4 — PIF cycle from SBN takes at most 5h+5 rounds",
        &[
            "topology", "N", "diam", "lcp", "h_max", "rounds_max", "5h+5", "rounds<=bound",
            "h<=lcp",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.n.to_string(),
            r.diameter.to_string(),
            if r.lcp_exact { r.lcp.to_string() } else { format!(">={}", r.lcp) },
            r.h_max.to_string(),
            r.rounds_max.to_string(),
            r.bound_at_worst.to_string(),
            if r.bound_ok { "yes" } else { "VIOLATED" }.to_string(),
            if !r.lcp_exact {
                "n/a".to_string()
            } else if r.h_ok {
                "yes".to_string()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }
    table
}

/// Measures one topology across the daemon panel.
pub fn measure(topology: &Topology, seeds: u64) -> CycleRow {
    let g = topology.build().expect("sweep topologies are valid");
    let n = g.len();
    let diameter = metrics::diameter(&g);
    let lcp_search = chordless::longest(&g, 2_000_000);
    let root = ProcId(0);

    let mut h_max = 0u32;
    let mut rounds_max = 0u64;
    let mut bound_at_worst = 5;
    let mut bound_ok = true;
    let mut h_ok = true;

    let mut daemons: Vec<Box<dyn pif_daemon::Daemon<pif_core::PifState>>> = Vec::new();
    daemons.push(DaemonKind::Synchronous.build(n, 0));
    daemons.push(DaemonKind::CentralSeq.build(n, 0));
    daemons.push(DaemonKind::Adversarial.build(n, 7));
    for s in 0..seeds {
        daemons.push(DaemonKind::CentralRandom.build(n, s));
        daemons.push(DaemonKind::DistributedHalf.build(n, s));
    }

    for mut d in daemons {
        let protocol = PifProtocol::new(root, &g);
        let mut runner = WaveRunner::new(g.clone(), protocol, UnitAggregate);
        let outcome = runner
            .run_cycle_limited(1u8, d.as_mut(), RunLimits::new(5_000_000, 1_000_000))
            .expect("cycle run failed");
        assert!(outcome.satisfies_spec(), "PIF spec violated on {topology:?}");
        let h = u64::from(outcome.height);
        let bound = 5 * h + 5;
        if outcome.cycle_rounds > bound {
            bound_ok = false;
        }
        if lcp_search.exact && outcome.height as usize > lcp_search.length().max(1) {
            h_ok = false;
        }
        if outcome.cycle_rounds > rounds_max {
            rounds_max = outcome.cycle_rounds;
            bound_at_worst = bound;
        }
        h_max = h_max.max(outcome.height);
    }

    CycleRow {
        topology: topology.clone(),
        n,
        diameter,
        lcp: lcp_search.length(),
        lcp_exact: lcp_search.exact,
        h_max,
        rounds_max,
        bound_at_worst,
        bound_ok,
        h_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_on_small_suite() {
        let table = run_on(
            vec![
                Topology::Chain { n: 8 },
                Topology::Ring { n: 8 },
                Topology::Star { n: 8 },
                Topology::Complete { n: 6 },
                Topology::Grid { w: 3, h: 3 },
            ],
            2,
        );
        let rendered = table.render();
        assert!(!rendered.contains("VIOLATED"), "{rendered}");
    }

    #[test]
    fn chain_height_equals_n_minus_1() {
        let row = measure(&Topology::Chain { n: 10 }, 1);
        assert_eq!(row.h_max, 9);
        assert!(row.bound_ok);
        assert!(row.h_ok);
    }
}
