//! **E5 — the Contribution claim (Definition 1).** The snap-stabilizing
//! PIF's *first* wave out of an arbitrary configuration always satisfies
//! \[PIF1\]/\[PIF2\]; the self-stabilizing baseline only guarantees *eventual*
//! correctness, and the non-stabilizing echo guarantees nothing.
//!
//! For every topology in the recovery suite, race the three contestants
//! (plus the tree-restricted snap PIF on trees) over the same seeds:
//! fuzzed initial configurations, seeded random central daemon. Report
//! first-wave delivery rates. Expected shape: snap PIF = 100%, tree
//! snap-PIF = 100% on trees, ss-PIF well below 100%, echo lowest (it also
//! deadlocks).

use pif_baselines::echo::EchoBaseline;
use pif_baselines::ss_pif::SsPifBaseline;
use pif_baselines::tree_pif::TreePifBaseline;
use pif_baselines::FirstWave;
use pif_daemon::RunLimits;
use pif_graph::{ProcId, Topology};

use crate::contestants::SnapPifContestant;
use crate::report::Table;
use crate::runner::par_map;
use crate::workloads::recovery_suite;

/// First-wave success counts for one contestant on one topology.
#[derive(Clone, Debug)]
pub struct ContrastRow {
    /// The topology instance.
    pub topology: Topology,
    /// Contestant name.
    pub contestant: &'static str,
    /// Successes from fuzzed starts.
    pub fuzzed_ok: usize,
    /// Fuzzed trials.
    pub fuzzed_total: usize,
    /// Whether the clean-start wave succeeded.
    pub clean_ok: bool,
}

impl ContrastRow {
    /// Success rate over fuzzed starts, in percent.
    pub fn rate(&self) -> f64 {
        if self.fuzzed_total == 0 {
            0.0
        } else {
            100.0 * self.fuzzed_ok as f64 / self.fuzzed_total as f64
        }
    }
}

/// Runs E5 over the full recovery suite.
pub fn run() -> Table {
    run_on(recovery_suite(), 100)
}

/// Scaled-down entry point.
pub fn run_on(topologies: Vec<Topology>, seeds: u64) -> Table {
    let rows: Vec<Vec<ContrastRow>> = par_map(topologies, |t| measure(&t, seeds));
    let mut table = Table::new(
        "E5 — first-wave delivery: snap vs self-stabilizing vs echo",
        &["topology", "contestant", "clean_start", "fuzzed_ok", "fuzzed_total", "rate_%"],
    );
    for group in &rows {
        for r in group {
            table.row_owned(vec![
                r.topology.to_string(),
                r.contestant.to_string(),
                if r.clean_ok { "ok" } else { "FAIL" }.to_string(),
                r.fuzzed_ok.to_string(),
                r.fuzzed_total.to_string(),
                format!("{:.1}", r.rate()),
            ]);
        }
    }
    table
}

/// Measures all contestants on one topology.
pub fn measure(topology: &Topology, seeds: u64) -> Vec<ContrastRow> {
    let g = topology.build().expect("suite topologies are valid");
    let root = ProcId(0);
    let limits = RunLimits::new(500_000, 100_000);
    let is_tree = g.edge_count() == g.len() - 1;

    let mut contestants: Vec<Box<dyn FirstWave + Send + Sync>> = vec![
        Box::new(SnapPifContestant),
        Box::new(SsPifBaseline),
        Box::new(EchoBaseline),
    ];
    if is_tree {
        contestants.push(Box::new(TreePifBaseline));
    }

    contestants
        .into_iter()
        .map(|c| {
            let clean_ok = c.first_wave(&g, root, None, limits).holds();
            let fuzzed_ok = (0..seeds)
                .filter(|&s| c.first_wave(&g, root, Some(s), limits).holds())
                .count();
            ContrastRow {
                topology: topology.clone(),
                contestant: c.name(),
                fuzzed_ok,
                fuzzed_total: seeds as usize,
                clean_ok,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_dominates_on_a_ring() {
        let rows = measure(&Topology::Ring { n: 8 }, 30);
        let snap = rows.iter().find(|r| r.contestant.starts_with("snap")).unwrap();
        let ss = rows.iter().find(|r| r.contestant.contains("self-stabilizing")).unwrap();
        let echo = rows.iter().find(|r| r.contestant.starts_with("echo")).unwrap();
        assert_eq!(snap.fuzzed_ok, snap.fuzzed_total, "snap must be perfect");
        assert!(snap.clean_ok && ss.clean_ok && echo.clean_ok);
        assert!(ss.fuzzed_ok < ss.fuzzed_total, "ss-PIF must fail sometimes");
        assert!(echo.fuzzed_ok < echo.fuzzed_total, "echo must fail sometimes");
    }

    #[test]
    fn tree_contestant_appears_only_on_trees() {
        let tree_rows = measure(&Topology::Chain { n: 6 }, 5);
        assert_eq!(tree_rows.len(), 4);
        let ring_rows = measure(&Topology::Ring { n: 6 }, 5);
        assert_eq!(ring_rows.len(), 3);
    }
}
