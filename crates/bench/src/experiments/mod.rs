//! The experiment battery: one module per experiment id of DESIGN.md's
//! per-experiment index. Each `run()` prints its tables, writes CSVs under
//! `target/experiments/`, and returns the tables for programmatic checks
//! (the integration tests assert the bounds on scaled-down instances).

pub mod e1_cycle_bounds;
pub mod e2_error_correction;
pub mod e3_glt_formation;
pub mod e4_phase_bounds;
pub mod e5_snap_vs_self;
pub mod e6_chordless;
pub mod e7_tree_comparison;
pub mod e8_invariants;
pub mod e9_space;
pub mod e10_ablations;
pub mod e12_severity;
pub mod e13_message_passing;
pub mod e15_service;
pub mod e18_chaos;
