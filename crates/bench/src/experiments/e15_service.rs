//! **E15 — wave-service throughput (beyond the paper).** Serve a fixed
//! request stream through `pif-serve` and measure, as a function of
//! initiators × shards × corruption rate: completed requests, in-flight
//! casualties, the post-fault success rate (the operational snap claim
//! predicts a flat 100%), and per-cycle latency in rounds.
//!
//! The full sweep with wall-clock throughput and per-phase latency
//! histograms is the `pif-serve bench` binary (committed as
//! `BENCH_service_throughput.json`); this experiment keeps the
//! deterministic slice that the integration tests can assert on.

use pif_graph::Topology;
use pif_serve::{run_scenario, spread_initiators, Scenario, ServeDaemon, ServiceReport};

use crate::report::{Stats, Table};
use crate::runner::par_map;

/// One (topology × initiators × shards × corruption) cell.
#[derive(Clone, Debug)]
pub struct ServiceRow {
    /// The topology instance.
    pub topology: Topology,
    /// Lanes (initiators).
    pub initiators: usize,
    /// Worker shards.
    pub shards: usize,
    /// Registers corrupted per lane per campaign (0 = fault-free).
    pub corrupt_k: usize,
    /// Requests served.
    pub requests: u64,
    /// Requests completing with \[PIF1\] ∧ \[PIF2\].
    pub completed_ok: u64,
    /// In-flight requests a fault cost.
    pub casualties: u64,
    /// Requests covered by the snap claim.
    pub post_fault_total: u64,
    /// Of those, correct ones (the claim: equal to `post_fault_total`).
    pub post_fault_ok: u64,
    /// Cycle-duration statistics (rounds, root `B` → root `F`).
    pub cycle_rounds: Stats,
}

/// Runs E15 with the default parameters.
pub fn run() -> Table {
    run_on(
        vec![Topology::Torus { w: 4, h: 4 }, Topology::Random { n: 16, p: 0.2, seed: 15 }],
        &[2, 4],
        &[1, 2],
        &[0, 8],
        60,
    )
}

/// Parameterized entry point.
pub fn run_on(
    topologies: Vec<Topology>,
    initiators: &[usize],
    shards: &[usize],
    corrupt_ks: &[usize],
    requests: u64,
) -> Table {
    let jobs: Vec<(Topology, usize, usize, usize)> = topologies
        .into_iter()
        .flat_map(|t| {
            initiators.iter().flat_map(move |&i| {
                let t = t.clone();
                shards.iter().flat_map(move |&s| {
                    let t = t.clone();
                    corrupt_ks.iter().map(move |&k| (t.clone(), i, s, k))
                })
            })
        })
        .collect();
    let rows = par_map(jobs, |(t, i, s, k)| measure(&t, i, s, k, requests));
    let mut table = Table::new(
        "E15 — wave service: throughput and snap under load (initiators x shards x corruption)",
        &[
            "topology",
            "initiators",
            "shards",
            "corrupt_k",
            "requests",
            "ok",
            "casualties",
            "post_fault_ok/total",
            "cycle_rounds_mean",
            "cycle_rounds_max",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.initiators.to_string(),
            r.shards.to_string(),
            r.corrupt_k.to_string(),
            r.requests.to_string(),
            r.completed_ok.to_string(),
            r.casualties.to_string(),
            format!("{}/{}", r.post_fault_ok, r.post_fault_total),
            format!("{:.1}", r.cycle_rounds.mean),
            r.cycle_rounds.max.to_string(),
        ]);
    }
    table
}

/// Measures one sweep cell. Panics on a snap violation — that would be a
/// protocol bug, not a data point.
pub fn measure(
    topology: &Topology,
    initiators: usize,
    shards: usize,
    corrupt_k: usize,
    requests: u64,
) -> ServiceRow {
    let n = topology.build().expect("suite topologies are valid").len();
    let scenario = Scenario {
        topology: topology.clone(),
        initiators: spread_initiators(n, initiators),
        shards,
        seed: 15,
        daemon: ServeDaemon::CentralRandom,
        requests,
        fault: (corrupt_k > 0).then_some((requests / 4, corrupt_k, 0xE15)),
    };
    let service = run_scenario(&scenario).expect("service run failed");
    let ledger = service.ledger();
    ledger.assert_snap().expect("snap violation under service load");
    let summary = ledger.summary();
    let cycle_rounds: Vec<u64> = ledger
        .records()
        .iter()
        .filter(|r| r.is_correct())
        .map(|r| r.cycle_rounds)
        .collect();
    let report = ServiceReport::capture(&service, scenario.fault);
    ServiceRow {
        topology: topology.clone(),
        initiators: scenario.initiators.len(),
        shards,
        corrupt_k,
        requests: report.requests,
        completed_ok: summary.completed_ok,
        casualties: summary.casualties,
        post_fault_total: summary.post_fault_total,
        post_fault_ok: summary.post_fault_ok,
        cycle_rounds: Stats::of(&cycle_rounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_cell_is_perfect() {
        let row = measure(&Topology::Torus { w: 3, h: 3 }, 3, 2, 0, 30);
        assert_eq!(row.completed_ok, 30);
        assert_eq!(row.casualties, 0);
        assert_eq!(row.post_fault_total, 0);
        assert!(row.cycle_rounds.max > 0);
    }

    #[test]
    fn corrupted_cell_keeps_post_fault_requests_correct() {
        let row = measure(&Topology::Torus { w: 3, h: 3 }, 3, 2, 8, 40);
        // measure() already asserts snap; double-check the counters agree.
        assert_eq!(row.post_fault_ok, row.post_fault_total);
        assert!(row.post_fault_total > 0, "campaign never fired");
    }
}
