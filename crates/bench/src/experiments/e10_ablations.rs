//! **E10 — ablations.** Remove one mechanism at a time and demonstrate
//! what breaks, justifying each design choice DESIGN.md calls out:
//!
//! * **(a) `Fok` wave** — without it a leaf may feed back before the
//!   broadcast has covered the network; an adversarial schedule makes the
//!   cycle "complete" while most processors never received the message,
//!   *even from the clean starting configuration*.
//! * **(b) `Leaf` guard** — without it a level-consistent stale subtree
//!   melts into the legal tree and gets counted without ever receiving
//!   the message (the grafted-zombie-chain counterexample).
//! * **(c) minimal-level `Potential`** — without it parent paths acquire
//!   chords; on a complete graph an adversarial join order builds a tree
//!   of height `N − 1` where the chordless bound is `1`, voiding
//!   Theorem 4's `5h + 5 ≤ 5·lcp + 5`.
//! * **(d) `GoodLevel` check** — without it a corrupted parent-pointer
//!   cycle is locally silent forever; the root can never start a wave
//!   (liveness lost).

use pif_core::checker::check_first_wave;
use pif_core::wave::{UnitAggregate, WaveRunner};
use pif_core::{initial, Features, Phase, PifProtocol, PifState};
use pif_daemon::daemons::FixedSchedule;
use pif_daemon::{RunLimits, Simulator};
use pif_graph::{generators, ProcId};

use crate::report::Table;

/// The outcome of one ablation scenario.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which mechanism was removed.
    pub mechanism: &'static str,
    /// The attack scenario.
    pub scenario: String,
    /// What the full algorithm does (expected: survives).
    pub full: String,
    /// What the ablated algorithm does (expected: breaks).
    pub ablated: String,
    /// Whether the experiment showed the expected separation.
    pub separation: bool,
}

/// Runs all four ablations.
pub fn run() -> Table {
    let rows = vec![ablate_fok_wave(8), ablate_leaf_guard(8), ablate_chordless(8), ablate_level_guard()];
    let mut table = Table::new(
        "E10 — ablations: remove one mechanism, observe the failure",
        &["mechanism", "scenario", "full algorithm", "ablated", "separation"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.mechanism.to_string(),
            r.scenario.clone(),
            r.full.clone(),
            r.ablated.clone(),
            if r.separation { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

fn early_feedback_schedule() -> FixedSchedule {
    // Root broadcasts; p1 joins; p1 feeds back immediately; root closes.
    FixedSchedule::new([vec![ProcId(0)], vec![ProcId(1)], vec![ProcId(1)], vec![ProcId(0)]])
}

/// Ablation (a): remove the `Fok` wave.
pub fn ablate_fok_wave(n: usize) -> AblationRow {
    let g = generators::chain(n).expect("chain");
    let scenario = format!("chain({n}), CLEAN start, adversarial schedule delaying p2..");

    let verdict = |features: Features| {
        let protocol = PifProtocol::new(ProcId(0), &g).with_features(features);
        let init = initial::normal_starting(&g);
        check_first_wave(
            g.clone(),
            protocol,
            init,
            &mut early_feedback_schedule(),
            RunLimits::new(100_000, 20_000),
        )
        .expect("run failed")
    };

    let full = verdict(Features::paper());
    let ablated = verdict(Features { fok_wave: false, ..Features::paper() });
    AblationRow {
        mechanism: "Fok wave",
        scenario,
        full: describe(&full),
        ablated: describe(&ablated),
        separation: full.holds() && !ablated.holds(),
    }
}

/// Ablation (b): remove the `Leaf` guard.
pub fn ablate_leaf_guard(n: usize) -> AblationRow {
    let g = generators::chain(n).expect("chain");
    let scenario = format!("chain({n}), grafted zombie chain at p2..p{}", n - 1);

    let verdict = |features: Features| {
        let protocol = PifProtocol::new(ProcId(0), &g).with_features(features);
        let init = initial::grafted_zombie_chain(&g, &protocol);
        let mut daemon = FixedSchedule::new([vec![ProcId(0)], vec![ProcId(1)]]);
        check_first_wave(g.clone(), protocol, init, &mut daemon, RunLimits::new(100_000, 20_000))
            .expect("run failed")
    };

    let full = verdict(Features::paper());
    let ablated = verdict(Features { leaf_guard: false, ..Features::paper() });
    AblationRow {
        mechanism: "Leaf guard",
        scenario,
        full: describe(&full),
        ablated: describe(&ablated),
        separation: full.holds() && !ablated.holds(),
    }
}

/// Ablation (c): remove the minimal-level restriction of `Potential`.
pub fn ablate_chordless(n: usize) -> AblationRow {
    let g = generators::complete(n).expect("complete");
    let root = ProcId((n - 1) as u32);
    let scenario = format!("complete({n}) rooted at p{}, descending join order", n - 1);

    // Adversarial join order: each new processor's minimal-id broadcasting
    // neighbor is the most recently joined one.
    let schedule = || {
        let joins: Vec<Vec<ProcId>> =
            (0..n as u32).rev().map(|i| vec![ProcId(i)]).collect();
        FixedSchedule::new(joins)
    };

    let height = |features: Features| {
        let protocol = PifProtocol::new(root, &g).with_features(features);
        let mut runner = WaveRunner::new(g.clone(), protocol, UnitAggregate);
        let outcome = runner
            .run_cycle_limited(1u8, &mut schedule(), RunLimits::new(500_000, 100_000))
            .expect("cycle failed");
        assert!(outcome.satisfies_spec(), "cycle must still complete");
        outcome.height
    };

    let full_h = height(Features::paper());
    let ablated_h = height(Features { chordless_potential: false, ..Features::paper() });
    let lcp = pif_graph::chordless::longest(&g, 1_000_000).length();
    AblationRow {
        mechanism: "chordless Potential",
        scenario,
        full: format!("h = {full_h} (lcp = {lcp})"),
        ablated: format!("h = {ablated_h} (lcp = {lcp})"),
        separation: full_h as usize <= lcp && ablated_h as usize > lcp,
    }
}

/// Ablation (d): remove the `GoodLevel` check.
pub fn ablate_level_guard() -> AblationRow {
    let g = generators::complete(4).expect("complete");
    let scenario = "complete(4), parent cycle p1->p2->p3->p1 at equal levels".to_string();

    let initiates = |features: Features| {
        let protocol = PifProtocol::new(ProcId(0), &g).with_features(features);
        let mut init = initial::normal_starting(&g);
        for (p, par) in [(1u32, 2u32), (2, 3), (3, 1)] {
            init[p as usize] = PifState {
                phase: Phase::B,
                par: ProcId(par),
                level: 2,
                count: 1,
                fok: false,
            };
        }
        let mut sim = Simulator::new(g.clone(), protocol, init);
        let mut d = pif_daemon::daemons::CentralSequential::new();
        // Either the corruption drains and the root broadcasts, or the
        // system seizes up.
        let mut root_b = |s: &Simulator<PifProtocol>| s.state(ProcId(0)).phase == Phase::B;
        let result = sim.run(
            &mut d,
            &mut pif_daemon::NoOpObserver,
            pif_daemon::StopPolicy::Predicate(RunLimits::new(50_000, 10_000), &mut root_b),
        );
        matches!(result, Ok(stats) if !stats.terminal || s_root_b(&sim))
    };
    fn s_root_b(sim: &Simulator<PifProtocol>) -> bool {
        sim.state(ProcId(0)).phase == Phase::B
    }

    let full = initiates(Features::paper());
    let ablated = initiates(Features { level_guard: false, ..Features::paper() });
    AblationRow {
        mechanism: "GoodLevel check",
        scenario,
        full: if full { "root broadcasts (recovers)" } else { "DEADLOCK" }.to_string(),
        ablated: if ablated { "root broadcasts" } else { "deadlock (liveness lost)" }.to_string(),
        separation: full && !ablated,
    }
}

fn describe(report: &pif_core::checker::SnapReport) -> String {
    if report.holds() {
        "PIF1+PIF2 hold".to_string()
    } else if !report.outcome.pif1 {
        format!("PIF1 VIOLATED ({} never received)", report.missed.len())
    } else {
        "PIF2 VIOLATED (completed without all acks)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ablations_separate() {
        assert!(ablate_fok_wave(6).separation, "fok");
        assert!(ablate_leaf_guard(6).separation, "leaf");
        assert!(ablate_chordless(6).separation, "chordless");
        assert!(ablate_level_guard().separation, "level");
    }
}
