//! **E2 — Theorem 1 (with Property 3 and Corollary 2).** Starting from an
//! arbitrary configuration, every processor becomes normal within
//! `3·L_max + 3` rounds.
//!
//! For every topology in the recovery suite, fuzz many initial
//! configurations (uniform register fuzzing and the adversarial
//! consistent-fake-tree construction) and measure the number of rounds
//! until no abnormal processor remains, under several daemons. The paper's
//! bound must dominate the worst observation.

use pif_core::{analysis, initial, PifProtocol, PifState};
use pif_daemon::{RunLimits, Simulator};
use pif_graph::{ProcId, Topology};

use crate::report::{Stats, Table};
use crate::runner::par_map;
use crate::workloads::{recovery_suite, DaemonKind};

/// Rounds until all-normal, for one topology under fuzzing.
#[derive(Clone, Debug)]
pub struct RecoveryRow {
    /// The topology instance.
    pub topology: Topology,
    /// `L_max` used by the protocol (`N − 1`).
    pub l_max: u16,
    /// The paper's bound `3·L_max + 3`.
    pub bound: u64,
    /// Statistics of the measured recovery rounds.
    pub stats: Stats,
    /// Whether the bound held for every sample.
    pub ok: bool,
}

/// Measures rounds-to-all-normal for one initial configuration.
pub fn recovery_rounds(
    g: &pif_graph::Graph,
    protocol: &PifProtocol,
    init: Vec<PifState>,
    daemon: &mut dyn pif_daemon::Daemon<PifState>,
) -> u64 {
    let mut sim = Simulator::new(g.clone(), protocol.clone(), init);
    let proto = protocol.clone();
    let graph = g.clone();
    let mut recovered = move |s: &Simulator<PifProtocol>| {
        analysis::abnormal_procs(&proto, &graph, s.states()).is_empty()
    };
    let stats = sim
        .run(
            daemon,
            &mut pif_daemon::NoOpObserver,
            pif_daemon::StopPolicy::Predicate(RunLimits::new(2_000_000, 200_000), &mut recovered),
        )
        .expect("recovery run exceeded its budget");
    stats.rounds
}

/// Runs E2 over the full recovery suite with `seeds` fuzzed configurations
/// per topology.
pub fn run() -> Table {
    run_on(recovery_suite(), 40)
}

/// Scaled-down entry point.
pub fn run_on(topologies: Vec<Topology>, seeds: u64) -> Table {
    let rows = par_map(topologies, |t| measure(&t, seeds));
    let mut table = Table::new(
        "E2 / Theorem 1 — all processors normal within 3*Lmax+3 rounds",
        &["topology", "Lmax", "bound", "samples", "rounds_mean", "rounds_max", "within_bound"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.l_max.to_string(),
            r.bound.to_string(),
            r.stats.n.to_string(),
            format!("{:.1}", r.stats.mean),
            r.stats.max.to_string(),
            if r.ok { "yes" } else { "VIOLATED" }.to_string(),
        ]);
    }
    table
}

/// Measures one topology.
pub fn measure(topology: &Topology, seeds: u64) -> RecoveryRow {
    let g = topology.build().expect("suite topologies are valid");
    let protocol = PifProtocol::new(ProcId(0), &g);
    let l_max = protocol.l_max();
    let bound = 3 * u64::from(l_max) + 3;

    let mut samples = Vec::new();
    for seed in 0..seeds {
        // Uniform fuzzing under three daemons.
        for kind in [DaemonKind::Synchronous, DaemonKind::CentralRandom, DaemonKind::Adversarial]
        {
            let init = initial::random_config(&g, &protocol, seed);
            let mut d = kind.build(g.len(), seed);
            samples.push(recovery_rounds(&g, &protocol, init, d.as_mut()));
        }
        // Adversarial fake trees under the synchronous daemon.
        if g.len() > 1 {
            let fake_root = ProcId(1 + (seed as u32 % (g.len() as u32 - 1)));
            let init = initial::adversarial_config(&g, &protocol, fake_root, seed);
            let mut d = DaemonKind::Synchronous.build(g.len(), seed);
            samples.push(recovery_rounds(&g, &protocol, init, d.as_mut()));
        }
    }
    let stats = Stats::of(&samples);
    RecoveryRow { topology: topology.clone(), l_max, bound, ok: stats.max <= bound, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_bound_holds_on_small_suite() {
        for t in [Topology::Chain { n: 7 }, Topology::Ring { n: 7 }, Topology::Complete { n: 6 }]
        {
            let row = measure(&t, 10);
            assert!(
                row.ok,
                "{t:?}: max {} rounds exceeds bound {}",
                row.stats.max, row.bound
            );
        }
    }
}
