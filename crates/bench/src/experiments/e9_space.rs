//! **E9 — space complexity.** Each processor stores `Pif` (2 bits), `Par`
//! (`⌈log₂ degree⌉` bits), `L` (`⌈log₂ L_max⌉` bits), `Count`
//! (`⌈log₂ N'⌉` bits) and `Fok` (1 bit): `O(log N)` bits per processor
//! beyond the neighbor labels — matching the related-work positioning
//! (the tree algorithms of [7, 9] are constant-space; generality costs a
//! logarithmic counter).

use pif_core::state::state_bits;
use pif_graph::Topology;

use crate::report::Table;

/// One (topology family × size) row.
#[derive(Clone, Debug)]
pub struct SpaceRow {
    /// The topology instance.
    pub topology: Topology,
    /// Network size.
    pub n: usize,
    /// Maximum per-processor state bits.
    pub max_bits: u32,
    /// `⌈log₂ N⌉` for reference.
    pub log2_n: u32,
}

/// Runs E9 over a size ladder per family.
pub fn run() -> Table {
    let mut topologies = Vec::new();
    for n in [4usize, 8, 16, 32, 64, 128, 256, 512, 1024] {
        topologies.push(Topology::Chain { n });
        topologies.push(Topology::Star { n });
        topologies.push(Topology::Complete { n: n.min(128) });
    }
    run_on(topologies)
}

/// Entry point over explicit topologies.
pub fn run_on(topologies: Vec<Topology>) -> Table {
    let mut table = Table::new(
        "E9 — per-processor state bits (O(log N))",
        &["topology", "N", "max_bits/proc", "ceil(log2 N)"],
    );
    for t in topologies {
        let r = measure(&t);
        table.row_owned(vec![
            r.topology.to_string(),
            r.n.to_string(),
            r.max_bits.to_string(),
            r.log2_n.to_string(),
        ]);
    }
    table
}

/// Measures one topology.
pub fn measure(topology: &Topology) -> SpaceRow {
    let g = topology.build().expect("topologies are valid");
    let n = g.len();
    let l_max = (n.saturating_sub(1)).max(1) as u16;
    let n_prime = n as u32;
    let max_bits = g
        .procs()
        .map(|p| state_bits(g.degree(p), l_max, n_prime))
        .max()
        .unwrap_or(0);
    SpaceRow {
        topology: topology.clone(),
        n,
        max_bits,
        log2_n: (n as u64).next_power_of_two().trailing_zeros(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_grow_logarithmically() {
        let small = measure(&Topology::Chain { n: 16 });
        let large = measure(&Topology::Chain { n: 1024 });
        // 64x more processors, only ~12 more bits (2 registers × 6 bits).
        assert!(large.max_bits - small.max_bits <= 14);
        assert!(large.max_bits > small.max_bits);
    }

    #[test]
    fn star_hub_pays_for_degree() {
        let star = measure(&Topology::Star { n: 64 });
        let chain = measure(&Topology::Chain { n: 64 });
        assert!(star.max_bits >= chain.max_bits);
    }
}
