//! **E3 — Theorem 3.** Starting from any configuration, the protocol
//! creates the GoodLegalTree within `8·L_max + 7` rounds.
//!
//! Operationally: measure the rounds until the configuration is a *Good
//! Configuration* (Definition 15 — at which point the legal tree is, by
//! Definition 16, the GLT) **and** stays one for the remainder of a
//! sampled window. The companion measurement records the rounds until the
//! legal tree spans all processors for the first time (the root's counter
//! can only reach `N` after this).

use pif_core::{analysis, initial, PifProtocol, PifState};
use pif_daemon::{RunLimits, Simulator};
use pif_graph::{ProcId, Topology};

use crate::report::{Stats, Table};
use crate::runner::par_map;
use crate::workloads::{recovery_suite, DaemonKind};

/// Measures rounds until a stable Good Configuration for one start.
///
/// "Stable" is sampled: after the first GC configuration, the next
/// `check_window` steps must remain GC (they do — GC-ness can only break
/// through abnormal processors, which are gone by then).
pub fn glt_rounds(
    g: &pif_graph::Graph,
    protocol: &PifProtocol,
    init: Vec<PifState>,
    daemon: &mut dyn pif_daemon::Daemon<PifState>,
) -> (u64, bool) {
    let mut sim = Simulator::new(g.clone(), protocol.clone(), init);
    let proto = protocol.clone();
    let graph = g.clone();
    // First: all processors normal AND the configuration good. Normality
    // ensures we are past the transient; a GC without normality can still
    // be destroyed by a later correction.
    let mut glt_formed = move |s: &Simulator<PifProtocol>| {
        analysis::abnormal_procs(&proto, &graph, s.states()).is_empty()
            && analysis::good_configuration(&proto, &graph, s.states())
    };
    let stats = sim
        .run(
            daemon,
            &mut pif_daemon::NoOpObserver,
            pif_daemon::StopPolicy::Predicate(RunLimits::new(2_000_000, 200_000), &mut glt_formed),
        )
        .expect("GLT run exceeded its budget");
    // Sampled stability check.
    let mut stable = true;
    for _ in 0..50 {
        if sim.is_terminal() {
            break;
        }
        sim.step(daemon).expect("step failed");
        if !analysis::good_configuration(protocol, g, sim.states()) {
            stable = false;
            break;
        }
    }
    (stats.rounds, stable)
}

/// One topology's E3 measurements.
#[derive(Clone, Debug)]
pub struct GltRow {
    /// The topology instance.
    pub topology: Topology,
    /// The paper's bound `8·L_max + 7`.
    pub bound: u64,
    /// Statistics of rounds-to-stable-GC.
    pub stats: Stats,
    /// Whether the bound held for every sample and GC remained stable.
    pub ok: bool,
}

/// Runs E3 over the full recovery suite.
pub fn run() -> Table {
    run_on(recovery_suite(), 30)
}

/// Scaled-down entry point.
pub fn run_on(topologies: Vec<Topology>, seeds: u64) -> Table {
    let rows = par_map(topologies, |t| measure(&t, seeds));
    let mut table = Table::new(
        "E3 / Theorem 3 — GoodLegalTree within 8*Lmax+7 rounds",
        &["topology", "bound", "samples", "rounds_mean", "rounds_max", "within_bound"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.bound.to_string(),
            r.stats.n.to_string(),
            format!("{:.1}", r.stats.mean),
            r.stats.max.to_string(),
            if r.ok { "yes" } else { "VIOLATED" }.to_string(),
        ]);
    }
    table
}

/// Measures one topology.
pub fn measure(topology: &Topology, seeds: u64) -> GltRow {
    let g = topology.build().expect("suite topologies are valid");
    let protocol = PifProtocol::new(ProcId(0), &g);
    let bound = 8 * u64::from(protocol.l_max()) + 7;
    let mut samples = Vec::new();
    let mut all_stable = true;
    for seed in 0..seeds {
        for kind in [DaemonKind::Synchronous, DaemonKind::CentralRandom] {
            let init = initial::random_config(&g, &protocol, seed);
            let mut d = kind.build(g.len(), seed);
            let (rounds, stable) = glt_rounds(&g, &protocol, init, d.as_mut());
            samples.push(rounds);
            all_stable &= stable;
        }
    }
    let stats = Stats::of(&samples);
    GltRow {
        topology: topology.clone(),
        bound,
        ok: stats.max <= bound && all_stable,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem3_bound_holds_on_small_suite() {
        for t in [Topology::Ring { n: 6 }, Topology::Star { n: 6 }] {
            let row = measure(&t, 8);
            assert!(row.ok, "{t:?}: max {} > bound {}", row.stats.max, row.bound);
        }
    }
}
