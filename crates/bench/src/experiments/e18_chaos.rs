//! **E18 — chaos: churn, adversarial schedules, SLO soaks (beyond the
//! paper).** Two measurements from `pif-chaos`:
//!
//! 1. **SLO-graded soak grid**: campaigns over {clean, churn,
//!    churn+corruption} per topology, graded by post-disturbance
//!    availability — the fraction of requests completing a correct cycle
//!    within `slo_k · diameter` rounds. The operational snap claim
//!    predicts steady-state availability `n/n` on every connected
//!    topology, *including across topology reconfigurations*.
//! 2. **Adversarial schedule search**: the seeded beam search over
//!    weakly fair schedules, reported against the fixed-daemon panel
//!    (E4's spectrum plus the LIFO adversary) and Theorems 1/2's round
//!    windows. The claims: the search matches or beats the panel's worst
//!    case on at least one instance, and *no* searched schedule ever
//!    exceeds a theorem window.
//!
//! The full matrix with wall-clock figures is the `pif-chaos bench`
//! binary (committed as `BENCH_chaos_slo.json`); this experiment keeps
//! the deterministic slice the integration tests assert on.

use pif_chaos::{
    run_campaign, search, CampaignConfig, ChurnSpec, Goal, SearchConfig, SearchReport,
};
use pif_graph::{generators, ProcId, Topology};
use pif_serve::Engine;

use crate::report::Table;
use crate::runner::par_map;

/// The soak grid: per topology, a clean control, a churned campaign, and
/// a churned + corrupted one (the corrupted cell runs on the SoA engine
/// so the grid also exercises the rebuild path of both backends).
pub fn campaign_grid() -> Vec<CampaignConfig> {
    let families =
        [Topology::Ring { n: 8 }, Topology::Grid { w: 3, h: 3 }, Topology::Torus { w: 3, h: 3 }];
    let mut cells = Vec::new();
    for (i, topology) in families.into_iter().enumerate() {
        let base = CampaignConfig::new(topology, 18 + i as u64);
        cells.push(base.clone());
        let mut churned = base.clone();
        churned.churn = Some(ChurnSpec { epochs: 2, per_epoch: 2, seed: 0xE18 + i as u64 });
        cells.push(churned.clone());
        let mut stormy = churned;
        stormy.corrupt_registers = 3;
        stormy.engine = Engine::Soa;
        cells.push(stormy);
    }
    cells
}

/// Runs the soak half of E18.
pub fn run() -> Table {
    let cells = par_map(campaign_grid(), |cfg| {
        let cell = run_campaign(&cfg).expect("campaign failed");
        assert!(cell.snap_ok, "{}: snap violated under chaos", cell.topology);
        cell
    });
    let mut table = Table::new(
        "E18 — chaos soaks: availability under churn and corruption (steady column must be n/n)",
        &[
            "topology",
            "engine",
            "churn app/ref",
            "corrupt_k",
            "requests",
            "ok",
            "retired",
            "post_slo",
            "steady_slo",
            "p50/p99 steps",
        ],
    );
    for c in &cells {
        table.row_owned(vec![
            c.topology.clone(),
            c.engine.clone(),
            format!("{}/{}", c.churn_applied, c.churn_skipped),
            c.corrupt_registers.to_string(),
            c.requests_total.to_string(),
            c.completed_ok.to_string(),
            c.shed_retired.to_string(),
            format!("{}/{}", c.post_within_slo, c.post_total),
            format!("{}/{}", c.steady_within_slo, c.steady_total),
            format!("{}/{}", c.p50_turnaround_steps, c.p99_turnaround_steps),
        ]);
    }
    table
}

/// The searched instances: small recovery graphs where a few hundred
/// evaluations already explore a meaningful slice of schedule space.
fn search_jobs() -> Vec<(&'static str, pif_graph::Graph, Goal)> {
    let chain = generators::chain(6).expect("valid");
    let ring = generators::ring(6).expect("valid");
    let mut jobs = Vec::new();
    for goal in Goal::ALL {
        jobs.push(("chain:6", chain.clone(), goal));
        jobs.push(("ring:6", ring.clone(), goal));
    }
    jobs
}

/// Runs the adversarial-search half of E18 and returns the reports with
/// the rendered table (callers assert on the reports).
pub fn run_search_reports() -> (Vec<(&'static str, SearchReport)>, Table) {
    let reports = par_map(search_jobs(), |(name, g, goal)| {
        (name, search(goal, &g, ProcId(0), 0xE18, &SearchConfig::default()))
    });
    let mut table = Table::new(
        "E18 — adversarial schedule search vs the fixed-daemon panel and the theorem windows",
        &[
            "topology",
            "goal",
            "best_rounds",
            "bound",
            "panel_rounds",
            "panel_daemon",
            "corr_rounds",
            "corr_window",
            "evaluations",
            "verdict",
        ],
    );
    for (name, r) in &reports {
        table.row_owned(vec![
            (*name).to_string(),
            r.goal.name().to_string(),
            r.best_rounds.to_string(),
            r.bound.to_string(),
            r.baseline_rounds.to_string(),
            r.baseline_daemon.to_string(),
            r.best_corr_rounds.to_string(),
            r.corr_bound.to_string(),
            r.evaluations.to_string(),
            match (r.all_within_bounds, r.beats_panel()) {
                (false, _) => "BOUND BROKEN".to_string(),
                (true, true) => "ok, ≥ panel".to_string(),
                (true, false) => "ok, < panel".to_string(),
            },
        ]);
    }
    (reports, table)
}

/// Runs the adversarial-search half of E18.
pub fn run_search() -> Table {
    run_search_reports().1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churned_campaigns_grade_steady_availability_n_of_n() {
        let mut cfg = CampaignConfig::new(Topology::Ring { n: 8 }, 18);
        cfg.churn = Some(ChurnSpec { epochs: 2, per_epoch: 2, seed: 0xE18 });
        cfg.corrupt_registers = 2;
        let cell = run_campaign(&cfg).unwrap();
        assert!(cell.snap_ok);
        assert!(cell.steady_total > 0);
        assert_eq!(cell.steady_within_slo, cell.steady_total);
    }

    #[test]
    fn search_beats_the_panel_somewhere_and_never_breaks_a_window() {
        // The acceptance criterion of the chaos searcher, on a scaled-down
        // search budget.
        let small =
            SearchConfig { depth: 24, population: 6, beam: 3, branch: 2, generations: 3, fairness_bound: 0 };
        let g = generators::chain(6).unwrap();
        let mut beats = false;
        for goal in Goal::ALL {
            let r = search(goal, &g, ProcId(0), 0xE18, &small);
            assert!(r.all_within_bounds, "{}: schedule broke a theorem window", goal.name());
            beats |= r.beats_panel();
        }
        assert!(beats, "search never matched the fixed panel's worst case");
    }
}
