//! **E13 — message-passing study (beyond the paper).** The paper's model
//! is locally shared memory; real networks pass messages. Running the
//! unchanged algorithm over the classical state-dissemination transform
//! (cached neighbor states over FIFO links, `pif-netsim`) measures what
//! survives the weaker model:
//!
//! * from a clean start the waves still complete and cover the network
//!   (the correction actions absorb stale-cache churn);
//! * with scrambled *register* state (shared-memory-style corruption,
//!   caches consistent) the first wave usually survives too;
//! * with scrambled *caches* and no heartbeats, the system can deadlock
//!   silently — heartbeats restore recovery. This is the classical
//!   argument for why message-passing self-stabilization needs periodic
//!   retransmission (Katz–Perry / Varghese), reproduced as a measurement.
//!
//! "Covered" is judged structurally: every processor executed its
//! `B-action` between the root's `B-action` and the root's `F-action` of
//! the same wave.

use pif_core::protocol::{B_ACTION, F_ACTION};
use pif_core::{initial, PifProtocol, PifState, Phase};
use pif_graph::{ProcId, Topology};
use pif_netsim::{Effect, NetSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Table;
use crate::runner::par_map;

/// The corruption modes compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetMode {
    /// Clean registers, consistent caches, empty channels.
    Clean,
    /// Fuzzed registers; caches consistent with them.
    FuzzedRegisters,
    /// Clean registers; caches scrambled (heartbeats on).
    ScrambledCaches,
    /// Clean registers; caches scrambled; heartbeats off.
    ScrambledNoHeartbeat,
}

impl NetMode {
    /// All modes.
    pub const ALL: [NetMode; 4] = [
        NetMode::Clean,
        NetMode::FuzzedRegisters,
        NetMode::ScrambledCaches,
        NetMode::ScrambledNoHeartbeat,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NetMode::Clean => "clean start",
            NetMode::FuzzedRegisters => "fuzzed registers",
            NetMode::ScrambledCaches => "scrambled caches (+heartbeat)",
            NetMode::ScrambledNoHeartbeat => "scrambled caches (no heartbeat)",
        }
    }
}

/// The verdict of one message-passing run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetVerdict {
    /// A wave completed and covered every processor.
    Covered,
    /// A wave completed but skipped someone.
    Skipped,
    /// No wave completed within the budget.
    Stuck,
}

/// Runs one trial.
pub fn trial(topology: &Topology, mode: NetMode, seed: u64, bias: f64) -> NetVerdict {
    let g = topology.build().expect("suite topologies are valid");
    let n = g.len();
    let root = ProcId(0);
    let protocol = PifProtocol::new(root, &g);
    let init = match mode {
        NetMode::FuzzedRegisters => initial::random_config(&g, &protocol, seed),
        _ => initial::normal_starting(&g),
    };
    let mut net = NetSimulator::new(g.clone(), protocol.clone(), init);
    if mode == NetMode::ScrambledNoHeartbeat {
        net = net.without_heartbeats();
    }
    if matches!(mode, NetMode::ScrambledCaches | NetMode::ScrambledNoHeartbeat) {
        // Cache states that look like a finished broadcast everywhere:
        // they block both joining (Fok set) and the root's start (phase B).
        net.scramble_caches(|_, q| PifState {
            phase: Phase::B,
            par: q,
            level: 1,
            count: 1,
            fok: true,
        });
    }

    // Drive with the traced scheduler, tracking wave membership.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE13);
    let mut joined = vec![false; n];
    let mut wave_open = false;
    for _ in 0..400_000u64 {
        match net.step_random(&mut rng, bias) {
            None => return NetVerdict::Stuck,
            Some(Effect::Executed(p, a)) => {
                if p == root && a == B_ACTION {
                    joined = vec![false; n];
                    joined[root.index()] = true;
                    wave_open = true;
                } else if a == B_ACTION {
                    joined[p.index()] = true;
                } else if p == root && a == F_ACTION && wave_open {
                    return if joined.iter().all(|&j| j) {
                        NetVerdict::Covered
                    } else {
                        NetVerdict::Skipped
                    };
                }
            }
            Some(_) => {}
        }
    }
    NetVerdict::Stuck
}

/// Runs E13 with default parameters.
pub fn run() -> Table {
    run_on(
        vec![
            Topology::Chain { n: 8 },
            Topology::Ring { n: 8 },
            Topology::Grid { w: 3, h: 3 },
        ],
        25,
    )
}

/// Parameterized entry point.
pub fn run_on(topologies: Vec<Topology>, trials: u64) -> Table {
    let jobs: Vec<(Topology, NetMode)> = topologies
        .into_iter()
        .flat_map(|t| NetMode::ALL.into_iter().map(move |m| (t.clone(), m)))
        .collect();
    let rows = par_map(jobs, |(t, m)| {
        let mut covered = 0;
        let mut skipped = 0;
        let mut stuck = 0;
        for seed in 0..trials {
            let bias = [0.3, 0.5, 0.7][(seed % 3) as usize];
            match trial(&t, m, seed, bias) {
                NetVerdict::Covered => covered += 1,
                NetVerdict::Skipped => skipped += 1,
                NetVerdict::Stuck => stuck += 1,
            }
        }
        (t, m, covered, skipped, stuck)
    });
    let mut table = Table::new(
        "E13 — the algorithm over asynchronous message passing (state dissemination)",
        &["topology", "mode", "covered", "skipped", "stuck", "trials"],
    );
    for (t, m, covered, skipped, stuck) in &rows {
        table.row_owned(vec![
            t.to_string(),
            m.name().to_string(),
            covered.to_string(),
            skipped.to_string(),
            stuck.to_string(),
            trials.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_starts_are_always_covered() {
        for seed in 0..6 {
            let v = trial(&Topology::Ring { n: 6 }, NetMode::Clean, seed, 0.5);
            assert_eq!(v, NetVerdict::Covered, "seed {seed}");
        }
    }

    #[test]
    fn no_heartbeat_scramble_gets_stuck() {
        let v = trial(&Topology::Chain { n: 5 }, NetMode::ScrambledNoHeartbeat, 1, 0.5);
        assert_eq!(v, NetVerdict::Stuck);
    }

    #[test]
    fn heartbeats_rescue_scrambled_caches() {
        let mut covered = 0;
        for seed in 0..6 {
            if trial(&Topology::Chain { n: 5 }, NetMode::ScrambledCaches, seed, 0.5)
                == NetVerdict::Covered
            {
                covered += 1;
            }
        }
        assert!(covered >= 5, "heartbeats should almost always rescue: {covered}/6");
    }
}
