//! **E13 — lossy message-passing certification (beyond the paper).** The
//! paper's model is locally shared memory; real networks pass messages
//! over channels that drop, duplicate, reorder, and corrupt. Running the
//! unchanged algorithm over the `pif-net` transport (cached neighbor
//! registers, CRC-framed snapshots, heartbeat retransmission) measures
//! what survives each adversity level:
//!
//! * under every fault-rate cell — up to the adversarial combination of
//!   drop 0.2, duplicate 0.1, reorder 0.3, corrupt 0.05 — every one of
//!   the `R` requests served from a *post-fault* configuration completes
//!   with \[PIF1\] and \[PIF2\] certified `n/n`, and **zero** corrupt
//!   frames are ever applied to a cache (the CRC32 gate);
//! * with scrambled *caches* and heartbeats on, the forged snapshots are
//!   flushed and the waves complete;
//! * with scrambled caches and heartbeats **off**, the system deadlocks
//!   silently — the classical Katz–Perry / Varghese argument for why
//!   message-passing self-stabilization needs periodic retransmission,
//!   reproduced as a measurement.
//!
//! Completion is judged by the same [`WaveOverlay`] markers the serving
//! layer uses: the root's `B-action` opens the cycle and its `F-action`
//! closes it; \[PIF1\] requires every processor to have received the
//! armed payload, \[PIF2\] additionally requires every acknowledgment
//! back at the root.

use pif_core::wave::{UnitAggregate, WaveOverlay};
use pif_core::{initial, PifProtocol, PifState};
use pif_graph::{ProcId, Topology};
use pif_net::{FaultPlan, NetSim, NetStats, Transport};

use crate::report::Table;
use crate::runner::par_map;

/// One adversity level of the study: a named fault plan plus the
/// heartbeat cadence it runs under.
#[derive(Clone, Copy, Debug)]
pub struct FaultCell {
    /// Display name (table row key).
    pub name: &'static str,
    /// Per-link fault rates.
    pub plan: FaultPlan,
    /// Heartbeat cadence in scheduler events (0 disables resends).
    pub heartbeat_every: u64,
    /// Whether to scramble every register cache before serving.
    pub scramble: bool,
}

/// The grid of cells the experiment sweeps, from lossless FIFO links to
/// the adversarial combination, plus the two cache-scramble controls.
pub fn cells() -> Vec<FaultCell> {
    let ff = FaultPlan::fault_free();
    vec![
        FaultCell { name: "lossless", plan: ff, heartbeat_every: 16, scramble: false },
        FaultCell { name: "drop 0.2", plan: ff.drop_rate(0.2), heartbeat_every: 16, scramble: false },
        FaultCell {
            name: "drop 0.2 + dup 0.1",
            plan: ff.drop_rate(0.2).duplicate_rate(0.1),
            heartbeat_every: 16,
            scramble: false,
        },
        FaultCell {
            name: "reorder 0.3",
            plan: ff.reorder_rate(0.3),
            heartbeat_every: 16,
            scramble: false,
        },
        FaultCell {
            name: "corrupt 0.05",
            plan: ff.corrupt_rate(0.05),
            heartbeat_every: 16,
            scramble: false,
        },
        FaultCell {
            name: "adversarial",
            plan: ff.drop_rate(0.2).duplicate_rate(0.1).reorder_rate(0.3).corrupt_rate(0.05),
            heartbeat_every: 16,
            scramble: false,
        },
        FaultCell {
            name: "scrambled caches (+heartbeat)",
            plan: ff,
            heartbeat_every: 16,
            scramble: true,
        },
        FaultCell {
            name: "scrambled caches (no heartbeat)",
            plan: ff,
            heartbeat_every: 0,
            scramble: true,
        },
    ]
}

/// The outcome of serving `requests` waves through one cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellOutcome {
    /// Requests that completed (root `F-action` closed the cycle).
    pub completed: u64,
    /// Completed requests whose payload reached all `n` processors.
    pub pif1_ok: u64,
    /// Completed requests fully acknowledged back at the root.
    pub pif2_ok: u64,
    /// Transport counters at the end of the run.
    pub stats: NetStats,
}

/// A cache state that *blocks*: it looks like a finished broadcast
/// everywhere (`Fok` set, phase `B`), so it suppresses both joining and
/// the root's start — the adversarial scramble of the deadlock study.
fn blocking(_: ProcId, q: ProcId) -> PifState {
    PifState { phase: pif_core::Phase::B, par: q, level: 1, count: 1, fok: true }
}

/// Serves `requests` waves through one `(topology, cell)` trial.
///
/// The initial configuration is a seeded `random_config` — the transient
/// fault has already happened, and every wave this trial serves is
/// initiated after it, which is exactly the population the snap claim
/// covers. `budget` bounds the total scheduler events per request.
pub fn trial(topology: &Topology, cell: &FaultCell, seed: u64, requests: u64) -> CellOutcome {
    let g = topology.build().expect("suite topologies are valid");
    let n = g.len();
    let root = ProcId(0);
    let protocol = PifProtocol::new(root, &g);
    let init = initial::random_config(&g, &protocol, seed);
    let mut net = NetSim::builder(g.clone(), protocol)
        .states(init)
        .fault_plan(cell.plan)
        .heartbeat_every(cell.heartbeat_every)
        .seed(seed ^ 0xE13)
        .build()
        .expect("cell plans are valid");
    if cell.scramble {
        net.scramble_caches_with(&mut blocking);
    }

    let mut overlay: WaveOverlay<u64, UnitAggregate> = WaveOverlay::new(n, root, UnitAggregate);
    let mut out = CellOutcome::default();
    const BUDGET_PER_REQUEST: u64 = 400_000;
    for r in 0..requests {
        overlay.arm(r);
        let mut done = false;
        for _ in 0..BUDGET_PER_REQUEST {
            net.tick_observed(&mut overlay);
            if let (Some(_), Some(_)) = (overlay.broadcast_step(), overlay.feedback_step()) {
                done = true;
                break;
            }
        }
        if !done {
            break; // stuck: remaining requests count as incomplete
        }
        out.completed += 1;
        if g.procs().all(|p| overlay.message_of(p) == Some(&r)) {
            out.pif1_ok += 1;
            if overlay.all_acknowledged() {
                out.pif2_ok += 1;
            }
        }
    }
    out.stats = net.stats();
    out
}

/// Runs E13 with default parameters.
pub fn run() -> Table {
    run_on(
        vec![
            Topology::Chain { n: 8 },
            Topology::Ring { n: 8 },
            Topology::Grid { w: 3, h: 3 },
        ],
        5,
        8,
    )
}

/// Parameterized entry point: `trials` seeds × `requests` waves per
/// `(topology, cell)`.
pub fn run_on(topologies: Vec<Topology>, trials: u64, requests: u64) -> Table {
    let jobs: Vec<(Topology, FaultCell)> = topologies
        .into_iter()
        .flat_map(|t| cells().into_iter().map(move |c| (t.clone(), c)))
        .collect();
    let rows = par_map(jobs, |(t, c)| {
        let mut total = CellOutcome::default();
        for seed in 0..trials {
            let o = trial(&t, &c, seed, requests);
            total.completed += o.completed;
            total.pif1_ok += o.pif1_ok;
            total.pif2_ok += o.pif2_ok;
            total.stats.corrupt_applied += o.stats.corrupt_applied;
            total.stats.corrupt_rejected += o.stats.corrupt_rejected;
            total.stats.stale_rejected += o.stats.stale_rejected;
            total.stats.dropped += o.stats.dropped;
        }
        (t, c, total)
    });
    let mut table = Table::new(
        "E13 — post-fault PIF certification over lossy message passing (pif-net)",
        &[
            "topology",
            "cell",
            "requests",
            "completed",
            "pif1 ok",
            "pif2 ok",
            "corrupt applied",
            "crc rejected",
            "stale rejected",
        ],
    );
    for (t, c, o) in &rows {
        table.row_owned(vec![
            t.to_string(),
            c.name.to_string(),
            (trials * requests).to_string(),
            o.completed.to_string(),
            o.pif1_ok.to_string(),
            o.pif2_ok.to_string(),
            o.stats.corrupt_applied.to_string(),
            o.stats.corrupt_rejected.to_string(),
            o.stats.stale_rejected.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_named(name: &str) -> FaultCell {
        cells().into_iter().find(|c| c.name == name).expect("known cell")
    }

    #[test]
    fn every_fault_rate_cell_certifies_n_of_n_post_fault() {
        let t = Topology::Ring { n: 6 };
        for cell in cells().iter().filter(|c| !c.scramble) {
            for seed in 0..3 {
                let o = trial(&t, cell, seed, 4);
                assert_eq!(o.completed, 4, "{} seed {seed}: {o:?}", cell.name);
                assert_eq!(o.pif1_ok, 4, "{} seed {seed}: [PIF1] violated", cell.name);
                assert_eq!(o.pif2_ok, 4, "{} seed {seed}: [PIF2] violated", cell.name);
                assert_eq!(
                    o.stats.corrupt_applied, 0,
                    "{} seed {seed}: corrupt frame applied",
                    cell.name
                );
            }
        }
    }

    #[test]
    fn no_heartbeat_scramble_gets_stuck() {
        let o = trial(&Topology::Chain { n: 5 }, &cell_named("scrambled caches (no heartbeat)"), 1, 2);
        assert_eq!(o.completed, 0, "{o:?}");
        assert!(o.stats.forged_frames > 0, "scramble campaign did not run");
    }

    #[test]
    fn heartbeats_rescue_scrambled_caches() {
        let o = trial(&Topology::Chain { n: 5 }, &cell_named("scrambled caches (+heartbeat)"), 1, 2);
        assert_eq!(o.completed, 2, "{o:?}");
        assert_eq!(o.pif2_ok, 2, "{o:?}");
    }

    #[test]
    fn trials_replay_bit_identically() {
        let t = Topology::Grid { w: 3, h: 3 };
        let cell = cell_named("adversarial");
        let a = trial(&t, &cell, 7, 3);
        let b = trial(&t, &cell, 7, 3);
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert_ne!(trial(&t, &cell, 8, 3), a, "different seeds should diverge");
    }
}
