//! **E6 — the chordless-path lemma of Theorem 4.** The `Potential_p`
//! macro only ever creates chordless parent paths, hence the height `h`
//! of the constructed tree is bounded by the longest elementary chordless
//! path; `h` is also at least the root's eccentricity (so `h ∈
//! Ω(diameter)`).
//!
//! For every topology: run cycles from SBN under the daemon panel,
//! checking *every* intermediate configuration for chordless parent
//! paths, and compare the observed `h` range against eccentricity and the
//! longest chordless path.

use pif_core::analysis::InvariantMonitor;
use pif_core::wave::{UnitAggregate, WaveRunner};
use pif_core::{initial, PifProtocol};
use pif_daemon::{RunLimits, Simulator};
use pif_graph::{chordless, metrics, ProcId, Topology};

use crate::report::Table;
use crate::runner::par_map;
use crate::workloads::{DaemonKind};

/// One topology's E6 measurements.
#[derive(Clone, Debug)]
pub struct ChordlessRow {
    /// The topology instance.
    pub topology: Topology,
    /// Eccentricity of the root (lower bound on `h`).
    pub root_ecc: u32,
    /// Longest chordless path length.
    pub lcp: usize,
    /// Whether the lcp search was exact.
    pub lcp_exact: bool,
    /// Minimum observed height across the panel.
    pub h_min: u32,
    /// Maximum observed height across the panel.
    pub h_max: u32,
    /// Whether every intermediate configuration had only chordless parent
    /// paths.
    pub chordless_ok: bool,
    /// Whether `ecc(root) ≤ h ≤ lcp` held in every run (lcp side judged
    /// only when exact).
    pub range_ok: bool,
}

/// The default topology list: emphasizes graphs where chords exist.
pub fn default_suite() -> Vec<Topology> {
    vec![
        Topology::Ring { n: 16 },
        Topology::Complete { n: 10 },
        Topology::Wheel { n: 12 },
        Topology::Lollipop { clique: 6, tail: 8 },
        Topology::Torus { w: 4, h: 4 },
        Topology::Hypercube { d: 4 },
        Topology::Grid { w: 5, h: 4 },
        Topology::Random { n: 16, p: 0.25, seed: 3 },
        Topology::Chain { n: 16 },
    ]
}

/// Runs E6 over the default suite.
pub fn run() -> Table {
    run_on(default_suite(), 4)
}

/// Scaled-down entry point.
pub fn run_on(topologies: Vec<Topology>, seeds: u64) -> Table {
    let rows = par_map(topologies, |t| measure(&t, seeds));
    let mut table = Table::new(
        "E6 / Theorem 4 lemma — parent paths are chordless; ecc(r) <= h <= lcp",
        &["topology", "ecc(r)", "lcp", "h_min", "h_max", "paths_chordless", "range_ok"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.topology.to_string(),
            r.root_ecc.to_string(),
            if r.lcp_exact { r.lcp.to_string() } else { format!(">={}", r.lcp) },
            r.h_min.to_string(),
            r.h_max.to_string(),
            if r.chordless_ok { "yes" } else { "VIOLATED" }.to_string(),
            if r.range_ok { "yes" } else { "VIOLATED" }.to_string(),
        ]);
    }
    table
}

/// Measures one topology.
pub fn measure(topology: &Topology, seeds: u64) -> ChordlessRow {
    let g = topology.build().expect("suite topologies are valid");
    let root = ProcId(0);
    let root_ecc = metrics::eccentricity(&g, root);
    let lcp = chordless::longest(&g, 2_000_000);

    let mut h_min = u32::MAX;
    let mut h_max = 0u32;
    let mut chordless_ok = true;
    let mut range_ok = true;

    let mut daemons: Vec<Box<dyn pif_daemon::Daemon<pif_core::PifState>>> = vec![
        DaemonKind::Synchronous.build(g.len(), 0),
        DaemonKind::CentralSeq.build(g.len(), 0),
        DaemonKind::Adversarial.build(g.len(), 1),
    ];
    for s in 0..seeds {
        daemons.push(DaemonKind::CentralRandom.build(g.len(), s));
    }

    for mut d in daemons {
        // Invariant-monitored cycle: chordlessness checked at every step.
        let protocol = PifProtocol::new(root, &g);
        let init = initial::normal_starting(&g);
        let mut sim = Simulator::new(g.clone(), protocol.clone(), init);
        let mut monitor = InvariantMonitor::new(protocol.clone()).with_chordless_check();
        let mut target = |s: &Simulator<PifProtocol>| {
            s.steps() > 0 && initial::is_normal_starting(s.states())
        };
        sim.run(
            d.as_mut(),
            &mut monitor,
            pif_daemon::StopPolicy::Predicate(RunLimits::new(2_000_000, 500_000), &mut target),
        )
        .expect("cycle failed");
        if !monitor.violations().is_empty() {
            chordless_ok = false;
        }

        // Height-measured cycle via the wave runner (fresh daemon state is
        // fine: all panel daemons are memoryless across cycles).
        let protocol = PifProtocol::new(root, &g);
        let mut runner = WaveRunner::new(g.clone(), protocol, UnitAggregate);
        let outcome = runner
            .run_cycle_limited(1u8, d.as_mut(), RunLimits::new(2_000_000, 500_000))
            .expect("cycle failed");
        assert!(outcome.satisfies_spec());
        h_min = h_min.min(outcome.height);
        h_max = h_max.max(outcome.height);
        if outcome.height < root_ecc {
            range_ok = false;
        }
        if lcp.exact && outcome.height as usize > lcp.length().max(1) {
            range_ok = false;
        }
    }

    ChordlessRow {
        topology: topology.clone(),
        root_ecc,
        lcp: lcp.length(),
        lcp_exact: lcp.exact,
        h_min,
        h_max,
        chordless_ok,
        range_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chordless_lemma_holds_on_chorded_graphs() {
        for t in [
            Topology::Complete { n: 6 },
            Topology::Wheel { n: 8 },
            Topology::Ring { n: 8 },
        ] {
            let row = measure(&t, 2);
            assert!(row.chordless_ok, "{t:?}");
            assert!(row.range_ok, "{t:?}: h in [{}, {}]", row.h_min, row.h_max);
        }
    }

    #[test]
    fn complete_graph_height_is_one() {
        let row = measure(&Topology::Complete { n: 8 }, 2);
        assert_eq!(row.h_max, 1, "minimal-level Potential forces a star");
    }
}
