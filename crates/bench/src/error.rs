//! Typed errors for the bench command-line tools.
//!
//! The experiment binaries historically aborted with `expect`; the
//! `pif-trace` tool instead reports every failure as a [`BenchError`], so
//! callers (and the tier-2 gate script) get a stable exit status and a
//! message that names the failing layer.

use std::fmt;

use pif_daemon::{SimError, TraceError};
use pif_graph::GraphError;

/// Any error a bench CLI run can surface.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// The command line itself is malformed (unknown subcommand, missing
    /// operand, unparsable number, unknown daemon name).
    Usage(String),
    /// A topology spec failed to parse or build.
    Graph(GraphError),
    /// The simulator rejected the run (budget exhausted, invalid
    /// selection).
    Sim(SimError),
    /// Recording, parsing or replaying a trace failed.
    Trace(TraceError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Usage(msg) => write!(f, "usage error: {msg}"),
            BenchError::Graph(e) => write!(f, "graph error: {e}"),
            BenchError::Sim(e) => write!(f, "simulation error: {e}"),
            BenchError::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Usage(_) => None,
            BenchError::Graph(e) => Some(e),
            BenchError::Sim(e) => Some(e),
            BenchError::Trace(e) => Some(e),
        }
    }
}

impl From<GraphError> for BenchError {
    fn from(e: GraphError) -> Self {
        BenchError::Graph(e)
    }
}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        BenchError::Sim(e)
    }
}

impl From<TraceError> for BenchError {
    fn from(e: TraceError) -> Self {
        BenchError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failing_layer() {
        let e = BenchError::Usage("missing trace path".into());
        assert!(e.to_string().contains("usage error"));
        let e: BenchError = TraceError::UnsupportedVersion { found: 99 }.into();
        assert!(e.to_string().contains("trace error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
