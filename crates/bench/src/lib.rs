//! Shared infrastructure for the experiment binaries: text/CSV report
//! tables, a parallel seed-sweep runner, the standard workload suite, and
//! the snap-PIF contestant for the delivery-contrast experiment.
//!
//! Each experiment binary (`exp_*`) regenerates one row-set of
//! EXPERIMENTS.md; `exp_all` runs the complete battery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contestants;
pub mod error;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod step_measure;
pub mod workloads;
