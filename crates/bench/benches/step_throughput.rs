//! Criterion group `step_throughput`: raw simulator hot-loop speed.
//!
//! Measures the time of one batch of 1000 computation steps of the
//! arbitrary-network snap PIF under a central daemon, across the three
//! standard topology families at n ∈ {16, 64, 256, 1024}. Complements
//! `BENCH_step_throughput.json` (see `exp_step_throughput`), which
//! records absolute steps/second for baseline-vs-optimized comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pif_bench::step_measure::{Topology, Workload, SIZES};

const BATCH: u64 = 1000;

fn bench_step_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_throughput");
    for topology in Topology::ALL {
        for n in SIZES {
            let mut w = Workload::new(topology, n);
            w.run_steps(2_000); // warm past the corrected prefix
            group.bench_with_input(
                BenchmarkId::new(topology.label(), n),
                &n,
                |b, _| b.iter(|| black_box(w.run_steps(BATCH))),
            );
        }
    }
    group.finish();
}

criterion_group!(step_throughput, bench_step_throughput);
criterion_main!(step_throughput);
