//! Criterion timing benches (B1–B6 in DESIGN.md): simulator step
//! throughput, full-cycle latency per topology, error-correction latency,
//! analysis/classifier overhead, graph generation, and chordless-path
//! search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pif_core::wave::{UnitAggregate, WaveRunner};
use pif_core::{analysis, initial, PifProtocol};
use pif_daemon::daemons::{CentralRandom, Synchronous};
use pif_daemon::{RunLimits, Simulator};
use pif_graph::{chordless, generators, ProcId, Topology};

/// B1 — raw simulator step throughput mid-broadcast on a torus.
fn bench_step_throughput(c: &mut Criterion) {
    let g = generators::torus(8, 8).unwrap();
    c.bench_function("step_throughput/torus(8x8)", |b| {
        b.iter(|| {
            let proto = PifProtocol::new(ProcId(0), &g);
            let init = initial::normal_starting(&g);
            let mut sim = Simulator::new(g.clone(), proto, init);
            let mut d = Synchronous::first_action();
            for _ in 0..50 {
                if sim.is_terminal() {
                    break;
                }
                sim.step(&mut d).unwrap();
            }
            black_box(sim.steps())
        })
    });
}

/// B2 — full PIF cycle latency per topology at N ≈ 64.
fn bench_cycle_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_latency");
    for t in [
        Topology::Chain { n: 64 },
        Topology::Star { n: 64 },
        Topology::Torus { w: 8, h: 8 },
        Topology::Random { n: 64, p: 0.08, seed: 5 },
    ] {
        let g = t.build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(&t), &g, |b, g| {
            b.iter(|| {
                let proto = PifProtocol::new(ProcId(0), g);
                let mut runner = WaveRunner::new(g.clone(), proto, UnitAggregate);
                let out = runner
                    .run_cycle_limited(
                        1u8,
                        &mut Synchronous::first_action(),
                        RunLimits::default(),
                    )
                    .unwrap();
                assert!(out.satisfies_spec());
                black_box(out.cycle_rounds)
            })
        });
    }
    group.finish();
}

/// B3 — error-correction latency from an adversarial configuration.
fn bench_correction(c: &mut Criterion) {
    let g = generators::random_connected(48, 0.1, 9).unwrap();
    let proto = PifProtocol::new(ProcId(0), &g);
    c.bench_function("correction/random(48)", |b| {
        b.iter(|| {
            let init = initial::adversarial_config(&g, &proto, ProcId(17), 3);
            let mut sim = Simulator::new(g.clone(), proto.clone(), init);
            let mut d = Synchronous::first_action();
            let proto2 = proto.clone();
            let g2 = g.clone();
            let mut recovered = move |s: &Simulator<PifProtocol>| {
                analysis::abnormal_procs(&proto2, &g2, s.states()).is_empty()
            };
            let stats = sim
                .run(
                    &mut d,
                    &mut pif_daemon::NoOpObserver,
                    pif_daemon::StopPolicy::Predicate(RunLimits::default(), &mut recovered),
                )
                .unwrap();
            black_box(stats.rounds)
        })
    });
}

/// B4 — classifier/analysis overhead on a mid-size configuration.
fn bench_analysis(c: &mut Criterion) {
    let g = generators::torus(12, 12).unwrap();
    let proto = PifProtocol::new(ProcId(0), &g);
    let states = initial::adversarial_config(&g, &proto, ProcId(100), 7);
    c.bench_function("analysis/classify/torus(12x12)", |b| {
        b.iter(|| black_box(analysis::classify(&proto, &g, &states)))
    });
    c.bench_function("analysis/legal_tree/torus(12x12)", |b| {
        b.iter(|| black_box(analysis::legal_tree(&proto, &g, &states).legal_size()))
    });
}

/// B5 — graph generator cost.
fn bench_graphgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphgen");
    group.bench_function("random_connected(256,0.05)", |b| {
        b.iter(|| black_box(generators::random_connected(256, 0.05, 1).unwrap().edge_count()))
    });
    group.bench_function("torus(16x16)", |b| {
        b.iter(|| black_box(generators::torus(16, 16).unwrap().edge_count()))
    });
    group.bench_function("random_tree(256)", |b| {
        b.iter(|| black_box(generators::random_tree(256, 1).unwrap().edge_count()))
    });
    group.finish();
}

/// B6 — chordless-path search cost.
fn bench_chordless(c: &mut Criterion) {
    let mut group = c.benchmark_group("chordless");
    for t in [Topology::Torus { w: 4, h: 4 }, Topology::Hypercube { d: 4 }] {
        let g = t.build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(&t), &g, |b, g| {
            b.iter(|| black_box(chordless::longest(g, 500_000).length()))
        });
    }
    group.finish();
}

/// B7 — daemon overhead comparison on identical work.
fn bench_daemons(c: &mut Criterion) {
    let g = generators::grid(8, 8).unwrap();
    let mut group = c.benchmark_group("daemon_overhead");
    group.bench_function("synchronous", |b| {
        b.iter(|| {
            let proto = PifProtocol::new(ProcId(0), &g);
            let mut runner = WaveRunner::new(g.clone(), proto, UnitAggregate);
            black_box(
                runner
                    .run_cycle_limited(1u8, &mut Synchronous::first_action(), RunLimits::default())
                    .unwrap()
                    .cycle_steps,
            )
        })
    });
    group.bench_function("central_random", |b| {
        b.iter(|| {
            let proto = PifProtocol::new(ProcId(0), &g);
            let mut runner = WaveRunner::new(g.clone(), proto, UnitAggregate);
            black_box(
                runner
                    .run_cycle_limited(1u8, &mut CentralRandom::new(1), RunLimits::default())
                    .unwrap()
                    .cycle_steps,
            )
        })
    });
    group.finish();
}

/// B8 — message-passing overhead: the same cycle over the `pif-net`
/// transport vs shared memory.
fn bench_netsim(c: &mut Criterion) {
    use pif_net::Transport;
    let g = generators::ring(16).unwrap();
    c.bench_function("net/cycle/ring(16)", |b| {
        b.iter(|| {
            let proto = PifProtocol::new(ProcId(0), &g);
            let mut net = pif_net::NetSim::builder(g.clone(), proto)
                .states(initial::normal_starting(&g))
                .seed(1)
                .build()
                .unwrap();
            let stats = net
                .run_until(2_000_000, &mut |s: &[pif_core::PifState]| {
                    s[0].phase == pif_core::Phase::F
                })
                .expect("fault-free cycle completes");
            black_box(stats.deliveries)
        })
    });
}

/// B9 — exhaustive verification cost on the smallest instance.
fn bench_verify(c: &mut Criterion) {
    c.bench_function("verify/snap_safety/chain(2)", |b| {
        b.iter(|| {
            let g = generators::chain(2).unwrap();
            let proto = PifProtocol::new(ProcId(0), &g);
            let space = pif_verify::StateSpace::new(g.clone(), proto);
            let report = space.check_snap_safety(true);
            assert!(report.verified());
            black_box(report.states_explored)
        })
    });
}

criterion_group!(
    benches,
    bench_step_throughput,
    bench_cycle_latency,
    bench_correction,
    bench_analysis,
    bench_graphgen,
    bench_chordless,
    bench_daemons,
    bench_netsim,
    bench_verify
);
criterion_main!(benches);
