//! # pif-chaos — churn, adversarial schedules, and SLO-graded soaks
//!
//! The paper proves snap-stabilization on one *static* arbitrary network:
//! after any transient fault, every PIF cycle initiated afterwards is
//! correct, immediately. This crate stress-tests that claim from three
//! directions the core experiments do not reach:
//!
//! 1. **Dynamic topologies** ([`churn`]): a seeded [`ChurnPlan`] fails and
//!    recovers links and removes/re-adds processors through a [`DynGraph`]
//!    wrapper. Each applied event is a *reconfiguration*: the surviving
//!    network is compacted into a fresh static instance and the serving
//!    layer rebuilds on it, carrying the survivors' register state across
//!    verbatim. Snap-stabilization is precisely what makes this sound —
//!    the carried registers are an arbitrary initial configuration of the
//!    new instance, and Theorem 4 promises the first post-rebuild cycle is
//!    already correct. Events that would disconnect the network are
//!    refused (the paper's model requires connectivity), never silently
//!    dropped.
//! 2. **Adversarial schedule search** ([`mod@search`]): instead of measuring
//!    Theorem 2's round bounds under a fixed daemon panel (experiment E4),
//!    a seeded beam search hunts the schedule space itself for worst
//!    cases, with every candidate kept weakly fair by construction so its
//!    round count is a legal witness against the theorem's window.
//! 3. **SLO-graded soak campaigns** ([`slo`]): long request streams
//!    against `pif_serve::WaveService` under combined churn and register
//!    corruption, scored against an explicit availability SLO — the
//!    fraction of post-disturbance requests completing a correct cycle
//!    within `k · diameter` rounds — with p50/p99 turnaround, all
//!    bit-replayable from the recorded seeds (`pif_chaos check`).
//!
//! The `pif_chaos` binary drives soaks, the benchmark matrix
//! (`BENCH_chaos_slo.json`), replay verification, and the schedule
//! search from the command line.

#![warn(missing_docs)]

pub mod churn;
pub mod search;
pub mod slo;

pub use churn::{apply_to_net, ChurnAction, ChurnEvent, ChurnOutcome, ChurnPlan, DynGraph};
pub use search::{
    correction_bound, evaluate, search, Goal, ScriptedAdversary, SearchConfig, SearchReport,
};
pub use slo::{
    envelope, parse_envelope, run_campaign, CampaignConfig, ChaosCell, ChurnSpec,
    CHAOS_REPORT_VERSION,
};

/// Errors surfaced by the chaos layer.
#[derive(Debug)]
pub enum ChaosError {
    /// The underlying topology was invalid.
    Graph(pif_graph::GraphError),
    /// The serving layer rejected a campaign step.
    Serve(pif_serve::ServeError),
    /// A report/ledger file was malformed or failed verification.
    Report(String),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Graph(e) => write!(f, "graph error: {e}"),
            ChaosError::Serve(e) => write!(f, "serve error: {e}"),
            ChaosError::Report(msg) => write!(f, "report error: {msg}"),
        }
    }
}

impl std::error::Error for ChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaosError::Graph(e) => Some(e),
            ChaosError::Serve(e) => Some(e),
            ChaosError::Report(_) => None,
        }
    }
}

impl From<pif_graph::GraphError> for ChaosError {
    fn from(e: pif_graph::GraphError) -> Self {
        ChaosError::Graph(e)
    }
}

impl From<pif_serve::ServeError> for ChaosError {
    fn from(e: pif_serve::ServeError) -> Self {
        ChaosError::Serve(e)
    }
}
