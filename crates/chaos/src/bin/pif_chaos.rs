//! `pif-chaos` — churn/corruption soak driver and schedule searcher.
//!
//! ```text
//! pif-chaos soak   [--topology SPEC] [--seed X] [--epochs E]
//!                  [--requests N] [--initiators K] [--shards S]
//!                  [--daemon NAME] [--engine aos|soa] [--slo-k K]
//!                  [--churn-epochs E --churn-per-epoch M [--churn-seed X]]
//!                  [--corrupt-registers K] [--json PATH]
//! pif-chaos bench  [--seed X] [--out PATH]
//! pif-chaos check  FILE
//! pif-chaos search [--topology SPEC] [--root R] [--seed X]
//!                  [--generations G] [--population P] [--beam B]
//! ```
//!
//! * `soak` runs one SLO-graded campaign (see `pif_chaos::slo`), prints
//!   the availability grade, and fails on a snap violation or a
//!   steady-state SLO miss.
//! * `bench` sweeps {ring, grid, torus} × {clean, churn, churn+corrupt}
//!   and writes the versioned `BENCH_chaos_slo.json` envelope.
//! * `check` replays every cell in a recorded envelope from its seeds
//!   and verifies the deterministic fields are bit-identical.
//! * `search` runs the adversarial beam search for every Theorem 2 goal
//!   and tabulates the worst schedules found against the fixed-daemon
//!   panel and the theorem windows.

use std::process::ExitCode;

use pif_chaos::{
    envelope, parse_envelope, run_campaign, search, CampaignConfig, ChaosError, ChurnSpec, Goal,
    SearchConfig,
};
use pif_graph::{ProcId, Topology};
use pif_serve::{Engine, ServeDaemon};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("soak") => soak(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("search") => search_cmd(&args[1..]),
        _ => {
            eprintln!("usage: pif-chaos <soak|bench|check|search> [options]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pif-chaos: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of an option list (last occurrence wins).
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).rev().find(|w| w[0] == flag).map(|w| w[1].as_str())
}

fn parse_num<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, ChaosError> {
    match opt(args, flag) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| ChaosError::Report(format!("bad value for {flag}: {v:?}")))
        }
    }
}

fn campaign_from_args(args: &[String]) -> Result<CampaignConfig, ChaosError> {
    let spec = opt(args, "--topology").unwrap_or("ring:8");
    let topology =
        Topology::parse(spec).map_err(|e| ChaosError::Report(format!("bad topology: {e}")))?;
    let seed: u64 = parse_num(args, "--seed", 1)?;
    let mut cfg = CampaignConfig::new(topology, seed);
    cfg.epochs = parse_num(args, "--epochs", cfg.epochs)?;
    cfg.requests_per_epoch = parse_num(args, "--requests", cfg.requests_per_epoch)?;
    cfg.initiators = parse_num(args, "--initiators", cfg.initiators)?;
    cfg.shards = parse_num(args, "--shards", cfg.shards)?;
    cfg.slo_k = parse_num(args, "--slo-k", cfg.slo_k)?;
    cfg.corrupt_registers = parse_num(args, "--corrupt-registers", 0)?;
    cfg.daemon = ServeDaemon::parse(opt(args, "--daemon").unwrap_or("synchronous"))?;
    let engine_spec = opt(args, "--engine").unwrap_or("aos");
    cfg.engine = Engine::parse(engine_spec)
        .ok_or_else(|| ChaosError::Report(format!("bad value for --engine: {engine_spec:?}")))?;
    let churn_epochs: u32 = parse_num(args, "--churn-epochs", 0)?;
    if churn_epochs > 0 {
        cfg.churn = Some(ChurnSpec {
            epochs: churn_epochs,
            per_epoch: parse_num(args, "--churn-per-epoch", 2)?,
            seed: parse_num(args, "--churn-seed", seed ^ 0xC0D9)?,
        });
    }
    Ok(cfg)
}

fn print_cell(cell: &pif_chaos::ChaosCell) {
    println!(
        "{} [{}]: {} requests over {} epochs, {} ok / {} bad / {} shed ({} retired) / {} timed \
         out; churn {} applied {} refused; availability {:.3} post, {:.3} steady \
         (SLO {}·diameter); p50/p99 turnaround {}/{} steps; snap {} ({:.3}s)",
        cell.topology,
        cell.engine,
        cell.requests_total,
        cell.epochs,
        cell.completed_ok,
        cell.completed_bad,
        cell.shed_displaced + cell.shed_retired,
        cell.shed_retired,
        cell.timed_out,
        cell.churn_applied,
        cell.churn_skipped,
        cell.availability(),
        cell.steady_availability(),
        cell.slo_k,
        cell.p50_turnaround_steps,
        cell.p99_turnaround_steps,
        if cell.snap_ok { "ok" } else { "VIOLATED" },
        cell.elapsed_seconds,
    );
}

fn grade(cell: &pif_chaos::ChaosCell) -> Result<(), ChaosError> {
    if !cell.snap_ok {
        return Err(ChaosError::Report(format!(
            "{}: snap-stabilization violated",
            cell.topology
        )));
    }
    if cell.steady_within_slo != cell.steady_total {
        return Err(ChaosError::Report(format!(
            "{}: steady availability {}/{} misses the n/n bar",
            cell.topology, cell.steady_within_slo, cell.steady_total
        )));
    }
    Ok(())
}

fn soak(args: &[String]) -> Result<(), ChaosError> {
    let cfg = campaign_from_args(args)?;
    let cell = run_campaign(&cfg)?;
    print_cell(&cell);
    if let Some(path) = opt(args, "--json") {
        std::fs::write(path, envelope(cfg.seed, std::slice::from_ref(&cell)))
            .map_err(|e| ChaosError::Report(format!("cannot write {path}: {e}")))?;
        println!("[json written to {path}]");
    }
    grade(&cell)
}

/// The benchmark matrix: three families × {clean, churn, churn+corrupt}.
fn bench_suite(seed: u64) -> Vec<CampaignConfig> {
    let families =
        [Topology::Ring { n: 8 }, Topology::Grid { w: 3, h: 3 }, Topology::Torus { w: 3, h: 3 }];
    let mut cells = Vec::new();
    for (i, topology) in families.into_iter().enumerate() {
        let base = CampaignConfig::new(topology, seed.wrapping_add(i as u64));
        cells.push(base.clone());
        let mut churned = base.clone();
        churned.churn = Some(ChurnSpec { epochs: 2, per_epoch: 2, seed: seed ^ 0xC0D9 });
        cells.push(churned.clone());
        let mut stormy = churned;
        stormy.corrupt_registers = 3;
        stormy.engine = Engine::Soa;
        cells.push(stormy);
    }
    cells
}

fn bench(args: &[String]) -> Result<(), ChaosError> {
    let seed: u64 = parse_num(args, "--seed", 2026)?;
    let out = opt(args, "--out").unwrap_or("BENCH_chaos_slo.json");
    let mut cells = Vec::new();
    for cfg in bench_suite(seed) {
        let cell = run_campaign(&cfg)?;
        print_cell(&cell);
        grade(&cell)?;
        cells.push(cell);
    }
    std::fs::write(out, envelope(seed, &cells))
        .map_err(|e| ChaosError::Report(format!("cannot write {out}: {e}")))?;
    println!("[json written to {out}]");
    Ok(())
}

fn check(args: &[String]) -> Result<(), ChaosError> {
    let path =
        args.first().ok_or_else(|| ChaosError::Report("usage: pif-chaos check FILE".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ChaosError::Report(format!("cannot read {path}: {e}")))?;
    let (_, recorded) = parse_envelope(&text)?;
    let mut failures = 0usize;
    for cell in &recorded {
        let replayed = run_campaign(&cell.scenario()?)?;
        if replayed.deterministic_eq(cell) {
            println!("check {} (seed {}): ok", cell.topology, cell.seed);
        } else {
            failures += 1;
            eprintln!(
                "check {} (seed {}): MISMATCH (recorded {} ok / {} steps, replayed {} ok / {} \
                 steps)",
                cell.topology,
                cell.seed,
                cell.completed_ok,
                cell.total_steps,
                replayed.completed_ok,
                replayed.total_steps,
            );
        }
    }
    if failures > 0 {
        return Err(ChaosError::Report(format!(
            "{failures} of {} cells failed replay",
            recorded.len()
        )));
    }
    println!("all {} cells replayed deterministically", recorded.len());
    Ok(())
}

fn search_cmd(args: &[String]) -> Result<(), ChaosError> {
    let spec = opt(args, "--topology").unwrap_or("chain:6");
    let topology =
        Topology::parse(spec).map_err(|e| ChaosError::Report(format!("bad topology: {e}")))?;
    let g = topology.build()?;
    let root_ix: usize = parse_num(args, "--root", 0)?;
    if root_ix >= g.len() {
        return Err(ChaosError::Report(format!("--root {root_ix} outside {spec}")));
    }
    let root = ProcId::from_index(root_ix);
    let seed: u64 = parse_num(args, "--seed", 7)?;
    let mut config = SearchConfig::default();
    config.generations = parse_num(args, "--generations", config.generations)?;
    config.population = parse_num(args, "--population", config.population)?;
    config.beam = parse_num(args, "--beam", config.beam)?;
    let mut broke_a_bound = false;
    for goal in Goal::ALL {
        let r = search(goal, &g, root, seed, &config);
        println!(
            "search {spec} root {root_ix} {}: best {} rounds (bound {}, panel {} via {}), \
             correction {} rounds (window {}), {} schedules, {}",
            goal.name(),
            r.best_rounds,
            r.bound,
            r.baseline_rounds,
            r.baseline_daemon,
            r.best_corr_rounds,
            r.corr_bound,
            r.evaluations,
            if r.beats_panel() { "matches/beats panel" } else { "below panel" },
        );
        if !r.all_within_bounds {
            broke_a_bound = true;
            eprintln!("search {spec} {}: A SCHEDULE EXCEEDED A THEOREM WINDOW", goal.name());
        }
    }
    if broke_a_bound {
        return Err(ChaosError::Report("a searched schedule broke a theorem bound".into()));
    }
    Ok(())
}
