//! SLO-graded soak campaigns: long request streams against
//! [`pif_serve::WaveService`] under combined churn and register
//! corruption, scored against an explicit availability objective.
//!
//! A campaign is a sequence of **epochs**. Each epoch snapshots the
//! current [`DynGraph`] into a static instance, rebuilds
//! the wave service on it (carrying the surviving replicas' register
//! state verbatim — the Theorem 4 composition described in the
//! [crate docs](crate)), submits a canonical request batch, applies the
//! epoch's churn events (graph changes take effect at the next rebuild;
//! a departing initiator's lane is retired *now*, shedding its queued
//! requests as [`pif_serve::ShedCause::Retired`]), optionally arms a
//! register-corruption campaign, and drains the batch.
//!
//! The grade is **availability**: the fraction of post-disturbance
//! requests that completed a *correct* cycle (\[PIF1\] ∧ \[PIF2\]) within
//! `slo_k · diameter` rounds, where the diameter is the one of the
//! instance the request actually ran on. `steady` availability restricts
//! the denominator to epochs at least two past the last disturbance —
//! the acceptance bar is `n/n` there on every connected topology.
//!
//! Every figure in a [`ChaosCell`] except the wall-clock ones derives
//! from the recorded `(topology, seeds, counts)` alone, so a cell
//! replays bit-identically: [`ChaosCell::scenario`] reconstructs the
//! [`CampaignConfig`] and [`run_campaign`] reproduces the cell
//! ([`ChaosCell::deterministic_eq`]).

use std::fmt::Write as _;
use std::time::Instant;

use pif_core::{initial, PifState};
use pif_daemon::json::{self, Json};
use pif_graph::{metrics, ProcId, Topology};
use pif_serve::report::topology_spec;
use pif_serve::{
    AggregateKind, Engine, FaultSpec, Request, RequestOutcome, ServeConfig, ServeDaemon,
    ShedCause, WaveService,
};

use crate::churn::{ChurnAction, ChurnOutcome, ChurnPlan, DynGraph};
use crate::ChaosError;

/// Version stamp of the `chaos_slo` report format.
pub const CHAOS_REPORT_VERSION: u64 = 1;

/// Seeded churn parameters of a campaign (regenerates the identical
/// [`ChurnPlan`] on replay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Epochs `1..=epochs` receive churn events (clamped so at least two
    /// trailing epochs stay churn-free; see [`CampaignConfig`]).
    pub epochs: u32,
    /// Events drawn per churn epoch.
    pub per_epoch: u32,
    /// Seed of the churn draw.
    pub seed: u64,
}

/// One soak-campaign scenario, fully replayable.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Base network family.
    pub topology: Topology,
    /// Initiator count (spread evenly over the surviving instance each
    /// epoch; clamped to the instance size).
    pub initiators: usize,
    /// Worker shards of the service.
    pub shards: usize,
    /// Master seed (service seeds and fault draws derive from it).
    pub seed: u64,
    /// Campaign length in epochs (epoch 0 runs on the pristine base).
    pub epochs: u32,
    /// Requests submitted per epoch.
    pub requests_per_epoch: u64,
    /// Seeded churn, or `None` for a churn-free cell.
    pub churn: Option<ChurnSpec>,
    /// Registers corrupted per lane in each disturbance epoch (0 = no
    /// corruption).
    pub corrupt_registers: usize,
    /// Daemon strategy of every lane.
    pub daemon: ServeDaemon,
    /// Step backend of every lane.
    pub engine: Engine,
    /// SLO window in units of the instance diameter: a request meets the
    /// SLO if its correct cycle closed within `slo_k · diameter` rounds.
    pub slo_k: u64,
    /// Per-request step budget.
    pub step_limit: u64,
}

impl CampaignConfig {
    /// A small default scenario on the given topology: 2 initiators,
    /// 2 shards, 5 epochs of 16 requests, no churn or corruption, the
    /// synchronous daemon on the `Aos` engine, and a `16 · diameter` SLO.
    pub fn new(topology: Topology, seed: u64) -> Self {
        CampaignConfig {
            topology,
            initiators: 2,
            shards: 2,
            seed,
            epochs: 5,
            requests_per_epoch: 16,
            churn: None,
            corrupt_registers: 0,
            daemon: ServeDaemon::Synchronous,
            engine: Engine::Aos,
            slo_k: 16,
            step_limit: 100_000,
        }
    }

    /// The last epoch allowed to carry a disturbance: clamped so at least
    /// one post-disturbance epoch *and* one steady epoch remain.
    fn disturbance_end(&self) -> u32 {
        self.epochs.saturating_sub(3)
    }
}

/// One graded campaign cell — the scenario that produced it plus every
/// measured figure, JSON-serializable into the `chaos_slo` envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosCell {
    /// Base topology, in [`Topology::parse`] spec format.
    pub topology: String,
    /// Base network size.
    pub n_base: usize,
    /// Configured initiator count.
    pub initiators: usize,
    /// Worker shards.
    pub shards: usize,
    /// Master seed.
    pub seed: u64,
    /// Campaign length in epochs.
    pub epochs: u32,
    /// Requests per epoch.
    pub requests_per_epoch: u64,
    /// Seeded churn parameters (`None` = churn-free).
    pub churn: Option<ChurnSpec>,
    /// Registers corrupted per lane per disturbance epoch.
    pub corrupt_registers: usize,
    /// Lane daemon name.
    pub daemon: String,
    /// Step backend name.
    pub engine: String,
    /// SLO window factor.
    pub slo_k: u64,
    /// Per-request step budget.
    pub step_limit: u64,
    /// Churn events applied.
    pub churn_applied: u64,
    /// Churn events refused (disconnecting or no-op).
    pub churn_skipped: u64,
    /// Last epoch that carried an applied churn event or a corruption
    /// campaign (0 = undisturbed).
    pub last_disturbance_epoch: u32,
    /// Survivors in the final instance.
    pub final_n: usize,
    /// Diameter of the final instance.
    pub final_diameter: u64,
    /// Requests submitted over the whole campaign.
    pub requests_total: u64,
    /// Completed with \[PIF1\] ∧ \[PIF2\].
    pub completed_ok: u64,
    /// Completed with a verdict violation (fault casualties).
    pub completed_bad: u64,
    /// Shed by admission control.
    pub shed_displaced: u64,
    /// Shed because their initiator's processor left the topology.
    pub shed_retired: u64,
    /// Step budget expired.
    pub timed_out: u64,
    /// In-flight or pre-fault casualties of corruption campaigns.
    pub casualties: u64,
    /// Whether every epoch's ledger upheld the snap-stabilization claim.
    pub snap_ok: bool,
    /// Requests issued in epochs after the last disturbance.
    pub post_total: u64,
    /// ... of which completed correctly within the SLO window.
    pub post_within_slo: u64,
    /// Requests issued ≥ 2 epochs after the last disturbance.
    pub steady_total: u64,
    /// ... of which completed correctly within the SLO window.
    pub steady_within_slo: u64,
    /// Median turnaround of completed requests, in steps.
    pub p50_turnaround_steps: u64,
    /// 99th-percentile turnaround of completed requests, in steps.
    pub p99_turnaround_steps: u64,
    /// Steps executed across all epochs and lanes.
    pub total_steps: u64,
    /// Rounds completed across all epochs and lanes.
    pub total_rounds: u64,
    /// Wall-clock seconds (not deterministic, excluded from replay
    /// comparison).
    pub elapsed_seconds: f64,
}

impl ChaosCell {
    /// Post-disturbance availability (1.0 when nothing was disturbed or
    /// no post-disturbance request exists).
    pub fn availability(&self) -> f64 {
        ratio(self.post_within_slo, self.post_total)
    }

    /// Steady-state availability — the `n/n` acceptance figure.
    pub fn steady_availability(&self) -> f64 {
        ratio(self.steady_within_slo, self.steady_total)
    }

    /// Reconstructs the scenario this cell records.
    ///
    /// # Errors
    ///
    /// [`ChaosError::Report`] if the recorded topology, daemon, or
    /// engine name does not parse.
    pub fn scenario(&self) -> Result<CampaignConfig, ChaosError> {
        Ok(CampaignConfig {
            topology: Topology::parse(&self.topology)
                .map_err(|e| ChaosError::Report(format!("bad topology spec: {e}")))?,
            initiators: self.initiators,
            shards: self.shards,
            seed: self.seed,
            epochs: self.epochs,
            requests_per_epoch: self.requests_per_epoch,
            churn: self.churn,
            corrupt_registers: self.corrupt_registers,
            daemon: ServeDaemon::parse(&self.daemon)?,
            engine: Engine::parse(&self.engine)
                .ok_or_else(|| ChaosError::Report(format!("unknown engine {:?}", self.engine)))?,
            slo_k: self.slo_k,
            step_limit: self.step_limit,
        })
    }

    /// Whether the replay-stable fields of two cells coincide (ignores
    /// the wall-clock figure).
    pub fn deterministic_eq(&self, other: &ChaosCell) -> bool {
        let a = (self, 0.0f64);
        let b = (other, 0.0f64);
        let strip = |(c, z): (&ChaosCell, f64)| ChaosCell { elapsed_seconds: z, ..c.clone() };
        strip(a) == strip(b)
    }

    /// Serializes to a JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        out.push_str("\"topology\": ");
        json::write_string(&self.topology, &mut out);
        let _ = write!(out, ", \"n_base\": {}", self.n_base);
        let _ = write!(out, ", \"initiators\": {}", self.initiators);
        let _ = write!(out, ", \"shards\": {}", self.shards);
        let _ = write!(out, ", \"seed\": {}", self.seed);
        let _ = write!(out, ", \"epochs\": {}", self.epochs);
        let _ = write!(out, ", \"requests_per_epoch\": {}", self.requests_per_epoch);
        match self.churn {
            Some(c) => {
                let _ = write!(
                    out,
                    ", \"churn\": {{\"epochs\": {}, \"per_epoch\": {}, \"seed\": {}}}",
                    c.epochs, c.per_epoch, c.seed
                );
            }
            None => out.push_str(", \"churn\": null"),
        }
        let _ = write!(out, ", \"corrupt_registers\": {}", self.corrupt_registers);
        out.push_str(", \"daemon\": ");
        json::write_string(&self.daemon, &mut out);
        out.push_str(", \"engine\": ");
        json::write_string(&self.engine, &mut out);
        let _ = write!(out, ", \"slo_k\": {}", self.slo_k);
        let _ = write!(out, ", \"step_limit\": {}", self.step_limit);
        let _ = write!(out, ", \"churn_applied\": {}", self.churn_applied);
        let _ = write!(out, ", \"churn_skipped\": {}", self.churn_skipped);
        let _ = write!(out, ", \"last_disturbance_epoch\": {}", self.last_disturbance_epoch);
        let _ = write!(out, ", \"final_n\": {}", self.final_n);
        let _ = write!(out, ", \"final_diameter\": {}", self.final_diameter);
        let _ = write!(out, ", \"requests_total\": {}", self.requests_total);
        let _ = write!(out, ", \"completed_ok\": {}", self.completed_ok);
        let _ = write!(out, ", \"completed_bad\": {}", self.completed_bad);
        let _ = write!(out, ", \"shed_displaced\": {}", self.shed_displaced);
        let _ = write!(out, ", \"shed_retired\": {}", self.shed_retired);
        let _ = write!(out, ", \"timed_out\": {}", self.timed_out);
        let _ = write!(out, ", \"casualties\": {}", self.casualties);
        let _ = write!(out, ", \"snap_ok\": {}", self.snap_ok);
        let _ = write!(out, ", \"post_total\": {}", self.post_total);
        let _ = write!(out, ", \"post_within_slo\": {}", self.post_within_slo);
        let _ = write!(out, ", \"steady_total\": {}", self.steady_total);
        let _ = write!(out, ", \"steady_within_slo\": {}", self.steady_within_slo);
        let _ = write!(out, ", \"availability\": {:.6}", self.availability());
        let _ = write!(out, ", \"steady_availability\": {:.6}", self.steady_availability());
        let _ = write!(out, ", \"p50_turnaround_steps\": {}", self.p50_turnaround_steps);
        let _ = write!(out, ", \"p99_turnaround_steps\": {}", self.p99_turnaround_steps);
        let _ = write!(out, ", \"total_steps\": {}", self.total_steps);
        let _ = write!(out, ", \"total_rounds\": {}", self.total_rounds);
        let _ = write!(out, ", \"elapsed_seconds\": {:.6}", self.elapsed_seconds);
        out.push('}');
        out
    }

    /// Parses one result object produced by [`ChaosCell::to_json`]
    /// (derived availability figures are recomputed, not trusted).
    ///
    /// # Errors
    ///
    /// [`ChaosError::Report`] describing the first missing or ill-typed
    /// field.
    pub fn from_json(v: &Json) -> Result<Self, ChaosError> {
        fn need<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ChaosError> {
            v.get(key).ok_or_else(|| ChaosError::Report(format!("missing field {key:?}")))
        }
        fn num(v: &Json, key: &str) -> Result<u64, ChaosError> {
            need(v, key)?
                .as_u64()
                .ok_or_else(|| ChaosError::Report(format!("field {key:?} is not an integer")))
        }
        fn text(v: &Json, key: &str) -> Result<String, ChaosError> {
            Ok(need(v, key)?
                .as_str()
                .ok_or_else(|| ChaosError::Report(format!("field {key:?} is not a string")))?
                .to_string())
        }
        let churn = match need(v, "churn")? {
            Json::Null => None,
            c => Some(ChurnSpec {
                epochs: u32::try_from(num(c, "epochs")?)
                    .map_err(|_| ChaosError::Report("churn epochs out of range".into()))?,
                per_epoch: u32::try_from(num(c, "per_epoch")?)
                    .map_err(|_| ChaosError::Report("churn per_epoch out of range".into()))?,
                seed: num(c, "seed")?,
            }),
        };
        let elapsed = match need(v, "elapsed_seconds")? {
            Json::Num(s) => s
                .parse()
                .map_err(|_| ChaosError::Report("elapsed_seconds is not a number".into()))?,
            _ => return Err(ChaosError::Report("elapsed_seconds is not a number".into())),
        };
        Ok(ChaosCell {
            topology: text(v, "topology")?,
            n_base: num(v, "n_base")? as usize,
            initiators: num(v, "initiators")? as usize,
            shards: num(v, "shards")? as usize,
            seed: num(v, "seed")?,
            epochs: u32::try_from(num(v, "epochs")?)
                .map_err(|_| ChaosError::Report("epochs out of range".into()))?,
            requests_per_epoch: num(v, "requests_per_epoch")?,
            churn,
            corrupt_registers: num(v, "corrupt_registers")? as usize,
            daemon: text(v, "daemon")?,
            engine: text(v, "engine")?,
            slo_k: num(v, "slo_k")?,
            step_limit: num(v, "step_limit")?,
            churn_applied: num(v, "churn_applied")?,
            churn_skipped: num(v, "churn_skipped")?,
            last_disturbance_epoch: u32::try_from(num(v, "last_disturbance_epoch")?)
                .map_err(|_| ChaosError::Report("last_disturbance_epoch out of range".into()))?,
            final_n: num(v, "final_n")? as usize,
            final_diameter: num(v, "final_diameter")?,
            requests_total: num(v, "requests_total")?,
            completed_ok: num(v, "completed_ok")?,
            completed_bad: num(v, "completed_bad")?,
            shed_displaced: num(v, "shed_displaced")?,
            shed_retired: num(v, "shed_retired")?,
            timed_out: num(v, "timed_out")?,
            casualties: num(v, "casualties")?,
            snap_ok: need(v, "snap_ok")?
                .as_bool()
                .ok_or_else(|| ChaosError::Report("snap_ok is not a bool".into()))?,
            post_total: num(v, "post_total")?,
            post_within_slo: num(v, "post_within_slo")?,
            steady_total: num(v, "steady_total")?,
            steady_within_slo: num(v, "steady_within_slo")?,
            p50_turnaround_steps: num(v, "p50_turnaround_steps")?,
            p99_turnaround_steps: num(v, "p99_turnaround_steps")?,
            total_steps: num(v, "total_steps")?,
            total_rounds: num(v, "total_rounds")?,
            elapsed_seconds: elapsed,
        })
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Nearest-rank percentile of a sorted sample (0 for an empty one).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// `SplitMix64` — the same seed-derivation mix the serving layer uses.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs one soak campaign and grades it. Deterministic in the scenario:
/// two runs of the same [`CampaignConfig`] produce
/// [`ChaosCell::deterministic_eq`] cells.
///
/// # Errors
///
/// [`ChaosError::Graph`] for an invalid base topology, or
/// [`ChaosError::Serve`] if the serving layer rejects a campaign step.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<ChaosCell, ChaosError> {
    let start = Instant::now();
    let base = cfg.topology.build()?;
    let disturb_end = cfg.disturbance_end();
    let plan = match cfg.churn {
        Some(c) => ChurnPlan::seeded(&base, c.epochs.min(disturb_end), c.per_epoch, c.seed),
        None => ChurnPlan::none(),
    };
    let mut dyn_g = DynGraph::new(base.clone());

    let mut last_disturbance = 0u32;
    let mut snap_ok = true;
    let mut total_steps = 0u64;
    let mut total_rounds = 0u64;
    // (epoch, SLO window in rounds, that epoch's ledger records)
    let mut epoch_records = Vec::new();
    // Carried replica registers, keyed by initiator *base* id; register
    // `par` fields are stored in base ids too, remapped on reuse.
    let mut carried: Vec<(ProcId, Vec<Option<PifState>>)> = Vec::new();
    let mut next_payload = 0u64;
    let mut final_n = base.len();
    let mut final_diameter = u64::from(metrics::diameter(&base));

    for epoch in 0..cfg.epochs {
        let (g, map) = dyn_g.snapshot();
        let n = g.len();
        let diameter = u64::from(metrics::diameter(&g));
        final_n = n;
        final_diameter = diameter;
        let slo_rounds = cfg.slo_k * diameter.max(1);
        let initiators = pif_serve::spread_initiators(n, cfg.initiators.clamp(1, n));
        let mut inverse: Vec<Option<usize>> = vec![None; base.len()];
        for (i, &b) in map.iter().enumerate() {
            inverse[b.index()] = Some(i);
        }

        // Re-anchor every initiator lane on the compacted instance,
        // carrying its surviving replicas' registers across the rebuild.
        let defaults = initial::normal_starting(&g);
        let mut lane_states = Vec::new();
        for &p in &initiators {
            let b = map[p.index()];
            if let Some((_, base_states)) = carried.iter().find(|(q, _)| *q == b) {
                let states: Vec<PifState> = (0..n)
                    .map(|j| match base_states[map[j].index()] {
                        Some(s) => {
                            // A departed parent degrades to self — the
                            // correction phase re-anchors it (Theorem 4).
                            let par = inverse[s.par.index()]
                                .map_or(ProcId::from_index(j), ProcId::from_index);
                            PifState { par, ..s }
                        }
                        None => defaults[j],
                    })
                    .collect();
                lane_states.push((p, states));
            }
        }

        let mut config = ServeConfig::new(cfg.topology.clone())
            .initiators(initiators.clone())
            .shards(cfg.shards)
            .seed(mix(cfg.seed ^ (u64::from(epoch) << 8)))
            .daemon(cfg.daemon)
            .engine(cfg.engine)
            .step_limit(cfg.step_limit)
            .queue_capacity(usize::try_from(cfg.requests_per_epoch).unwrap_or(usize::MAX).max(1))
            .graph_override(g.clone());
        if !lane_states.is_empty() {
            config = config.lane_states(lane_states);
        }
        let mut service: WaveService<u64> = WaveService::new(config)?;

        if cfg.corrupt_registers > 0 && (1..=disturb_end).contains(&epoch) {
            service.schedule_fault(FaultSpec {
                after_completions: (cfg.requests_per_epoch / 4).max(1),
                registers_per_lane: cfg.corrupt_registers,
                seed: mix(cfg.seed ^ (u64::from(epoch) << 24) ^ 0xFA17),
            });
            last_disturbance = last_disturbance.max(epoch);
        }

        for i in 0..cfg.requests_per_epoch {
            let initiator = initiators[usize::try_from(i).unwrap_or(0) % initiators.len()];
            let kind = AggregateKind::ALL[(next_payload % 4) as usize];
            service.submit(Request::new(initiator, next_payload, kind))?;
            next_payload += 1;
        }

        // The epoch's churn boundary: graph changes take effect at the
        // next rebuild, but a departing initiator's lane retires NOW,
        // shedding its queued requests as `ShedCause::Retired`.
        let events: Vec<ChurnAction> = plan.events_at(epoch).map(|e| e.action).collect();
        for action in events {
            if dyn_g.apply(action) == ChurnOutcome::Applied {
                last_disturbance = last_disturbance.max(epoch);
                if let ChurnAction::Leave(b) = action {
                    if let Some(c) = inverse[b.index()] {
                        let p = ProcId::from_index(c);
                        if initiators.contains(&p) {
                            service.retire_initiator(p)?;
                        }
                    }
                }
            }
        }

        service.run()?;
        let ledger = service.ledger();
        if ledger.assert_snap().is_err() {
            snap_ok = false;
        }
        let phases = service.phase_report();
        total_steps += phases.total_steps;
        total_rounds += phases.total_rounds;
        epoch_records.push((epoch, slo_rounds, ledger.records().to_vec()));

        // Carry the surviving lanes' replicas forward in base ids.
        carried = service
            .lane_states()
            .into_iter()
            .map(|(p, states)| {
                let mut base_states = vec![None; base.len()];
                for (j, s) in states.iter().enumerate() {
                    base_states[map[j].index()] =
                        Some(PifState { par: map[s.par.index()], ..*s });
                }
                (map[p.index()], base_states)
            })
            .collect();
    }

    let mut completed_ok = 0u64;
    let mut completed_bad = 0u64;
    let mut shed_displaced = 0u64;
    let mut shed_retired = 0u64;
    let mut timed_out = 0u64;
    let mut casualties = 0u64;
    let mut requests_total = 0u64;
    let (mut post_total, mut post_within) = (0u64, 0u64);
    let (mut steady_total, mut steady_within) = (0u64, 0u64);
    let mut turnarounds = Vec::new();
    for (epoch, slo_rounds, records) in &epoch_records {
        for r in records {
            requests_total += 1;
            match &r.outcome {
                RequestOutcome::Completed { .. } => {
                    if r.is_correct() {
                        completed_ok += 1;
                    } else {
                        completed_bad += 1;
                    }
                    if r.is_casualty() {
                        casualties += 1;
                    }
                    turnarounds.push(r.turnaround_steps);
                }
                RequestOutcome::Shed { cause: ShedCause::Displaced } => shed_displaced += 1,
                RequestOutcome::Shed { cause: ShedCause::Retired } => shed_retired += 1,
                RequestOutcome::TimedOut => timed_out += 1,
            }
            let within = r.is_correct() && r.cycle_rounds <= *slo_rounds;
            if *epoch > last_disturbance {
                post_total += 1;
                if within {
                    post_within += 1;
                }
                if *epoch >= last_disturbance + 2 {
                    steady_total += 1;
                    if within {
                        steady_within += 1;
                    }
                }
            }
        }
    }
    turnarounds.sort_unstable();

    Ok(ChaosCell {
        topology: topology_spec(&cfg.topology),
        n_base: base.len(),
        initiators: cfg.initiators,
        shards: cfg.shards,
        seed: cfg.seed,
        epochs: cfg.epochs,
        requests_per_epoch: cfg.requests_per_epoch,
        churn: cfg.churn,
        corrupt_registers: cfg.corrupt_registers,
        daemon: cfg.daemon.name().to_string(),
        engine: cfg.engine.name().to_string(),
        slo_k: cfg.slo_k,
        step_limit: cfg.step_limit,
        churn_applied: dyn_g.applied(),
        churn_skipped: dyn_g.skipped(),
        last_disturbance_epoch: last_disturbance,
        final_n,
        final_diameter,
        requests_total,
        completed_ok,
        completed_bad,
        shed_displaced,
        shed_retired,
        timed_out,
        casualties,
        snap_ok,
        post_total,
        post_within_slo: post_within,
        steady_total,
        steady_within_slo: steady_within,
        p50_turnaround_steps: percentile(&turnarounds, 50),
        p99_turnaround_steps: percentile(&turnarounds, 99),
        total_steps,
        total_rounds,
        elapsed_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Wraps campaign cells in the versioned `chaos_slo` benchmark envelope
/// (`BENCH_chaos_slo.json` format).
pub fn envelope(seed: u64, cells: &[ChaosCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"chaos_slo\",\n");
    let _ = write!(out, "  \"version\": {CHAOS_REPORT_VERSION},\n  \"seed\": {seed},\n");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.to_json());
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `chaos_slo` benchmark envelope back into its cells.
///
/// # Errors
///
/// [`ChaosError::Report`] on syntax errors, a wrong benchmark name, or an
/// unsupported version.
pub fn parse_envelope(text: &str) -> Result<(u64, Vec<ChaosCell>), ChaosError> {
    let v = json::parse(text).map_err(|e| ChaosError::Report(e.to_string()))?;
    match v.get("benchmark").and_then(Json::as_str) {
        Some("chaos_slo") => {}
        other => return Err(ChaosError::Report(format!("unexpected benchmark name {other:?}"))),
    }
    match v.get("version").and_then(Json::as_u64) {
        Some(CHAOS_REPORT_VERSION) => {}
        other => return Err(ChaosError::Report(format!("unsupported version {other:?}"))),
    }
    let seed = v
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| ChaosError::Report("missing envelope seed".into()))?;
    let cells = v
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| ChaosError::Report("missing results array".into()))?
        .iter()
        .map(ChaosCell::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((seed, cells))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(topology: Topology, seed: u64) -> CampaignConfig {
        CampaignConfig {
            epochs: 5,
            requests_per_epoch: 8,
            slo_k: 32,
            ..CampaignConfig::new(topology, seed)
        }
    }

    #[test]
    fn clean_soak_meets_the_slo_everywhere() {
        let cell = run_campaign(&small(Topology::Ring { n: 8 }, 11)).unwrap();
        assert_eq!(cell.requests_total, 40);
        assert_eq!(cell.completed_ok, 40);
        assert_eq!(cell.completed_bad + cell.timed_out + cell.casualties, 0);
        assert!(cell.snap_ok);
        assert_eq!(cell.last_disturbance_epoch, 0);
        assert_eq!(cell.post_total, 32, "epochs 1..=4 are all post-'disturbance'");
        assert!((cell.availability() - 1.0).abs() < 1e-12);
        assert!((cell.steady_availability() - 1.0).abs() < 1e-12);
        assert!(cell.p50_turnaround_steps > 0);
        assert!(cell.p99_turnaround_steps >= cell.p50_turnaround_steps);
    }

    #[test]
    fn churned_soak_stays_available_in_the_steady_state() {
        let mut cfg = small(Topology::Ring { n: 8 }, 23);
        cfg.churn = Some(ChurnSpec { epochs: 2, per_epoch: 3, seed: 5 });
        let cell = run_campaign(&cfg).unwrap();
        assert!(cell.churn_applied > 0, "the seeded plan must land something");
        assert!(cell.last_disturbance_epoch <= 2);
        assert!(cell.steady_total > 0);
        assert_eq!(
            cell.steady_within_slo, cell.steady_total,
            "steady availability must be n/n on a connected topology"
        );
        assert!(cell.snap_ok);
    }

    #[test]
    fn corruption_soak_recovers_to_full_availability() {
        let mut cfg = small(Topology::Grid { w: 3, h: 3 }, 31);
        cfg.corrupt_registers = 3;
        let cell = run_campaign(&cfg).unwrap();
        assert_eq!(cell.last_disturbance_epoch, 2, "corruption arms epochs 1..=2");
        assert!(cell.snap_ok, "casualties are allowed, snap violations are not");
        assert_eq!(cell.steady_within_slo, cell.steady_total);
        assert!(cell.steady_total > 0);
    }

    #[test]
    fn campaigns_replay_bit_identically() {
        let mut cfg = small(Topology::Ring { n: 8 }, 42);
        cfg.churn = Some(ChurnSpec { epochs: 2, per_epoch: 2, seed: 9 });
        cfg.corrupt_registers = 2;
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert!(a.deterministic_eq(&b));
        // ... and through the recorded scenario (the `check` path).
        let c = run_campaign(&a.scenario().unwrap()).unwrap();
        assert!(a.deterministic_eq(&c));
    }

    #[test]
    fn cells_round_trip_through_the_envelope() {
        let mut cfg = small(Topology::Chain { n: 6 }, 3);
        cfg.churn = Some(ChurnSpec { epochs: 1, per_epoch: 2, seed: 1 });
        let cell = run_campaign(&cfg).unwrap();
        let text = envelope(3, std::slice::from_ref(&cell));
        let (seed, cells) = parse_envelope(&text).unwrap();
        assert_eq!(seed, 3);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].deterministic_eq(&cell), "round trip is exact");
        assert!((cells[0].elapsed_seconds - cell.elapsed_seconds).abs() < 1e-6);
        assert!(parse_envelope(&text.replace("chaos_slo", "bogus")).is_err());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }
}
