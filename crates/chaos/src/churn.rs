//! Dynamic topologies: seeded churn plans applied through a [`DynGraph`]
//! wrapper over the static `pif-graph` instance.
//!
//! The paper's model is a **static** arbitrary network: every theorem
//! quantifies over executions on one fixed graph. Churn is therefore
//! modeled as a sequence of *reconfigurations*, each producing a new
//! static instance the algorithm then runs on — snap-stabilization is
//! exactly the property that makes this composition meaningful, because
//! every post-reconfiguration cycle is correct regardless of the register
//! garbage the previous instance left behind (Theorem 1/4 applied to the
//! new instance's arbitrary initial configuration).
//!
//! A [`DynGraph`] tracks which base processors are active and which base
//! links are administratively failed. Events that would disconnect the
//! surviving network are **refused** (recorded as
//! [`ChurnOutcome::Skipped`], never silently dropped): the paper requires
//! a connected network, so a disconnecting event would change the model,
//! not stress it. [`DynGraph::snapshot`] compacts the surviving
//! processors into a fresh valid [`Graph`] (ids `0..n_active`) plus the
//! compact → base id mapping the serving layer uses to carry per-replica
//! register state across the rebuild.

use std::collections::BTreeSet;

use pif_graph::{metrics, Graph, ProcId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One churn event's action, in base-graph ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnAction {
    /// Administratively fail one base link (frames on it are lost; see
    /// `pif_net::NetSim::set_link_down` for the transport mapping).
    FailLink(ProcId, ProcId),
    /// Recover a previously failed base link.
    RecoverLink(ProcId, ProcId),
    /// Deactivate a processor (it leaves the network with its links).
    Leave(ProcId),
    /// Reactivate a previously departed processor with its base links
    /// (minus any still-failed ones).
    Join(ProcId),
}

impl ChurnAction {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ChurnAction::FailLink(..) => "fail-link",
            ChurnAction::RecoverLink(..) => "recover-link",
            ChurnAction::Leave(..) => "leave",
            ChurnAction::Join(..) => "join",
        }
    }
}

/// One scheduled churn event: `action` fires at the boundary entering
/// `epoch` (epoch 0 is the pristine base instance, so plans never
/// schedule anything there).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Campaign epoch the event fires in (≥ 1).
    pub epoch: u32,
    /// What happens.
    pub action: ChurnAction,
}

/// A replayable churn schedule. Either scripted explicitly or generated
/// from a seed — both are pure data, so a recorded `(seed, epochs,
/// events_per_epoch)` triple regenerates the identical plan and a soak
/// campaign replays bit-identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Events, grouped by ascending epoch.
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// A plan with no events (the clean-soak control cell).
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// An explicitly scripted plan. Events are sorted by epoch (stable,
    /// so same-epoch order is preserved).
    pub fn scheduled(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(|e| e.epoch);
        ChurnPlan { events }
    }

    /// A seeded plan over `base`: `events_per_epoch` events in each of
    /// epochs `1..=churn_epochs`, drawn deterministically from `seed`.
    /// Draws mix link failures/recoveries with node leaves/joins; the
    /// plan is generated blind (it may name already-failed links or
    /// departed nodes — [`DynGraph::apply`] skips those honestly).
    pub fn seeded(base: &Graph, churn_epochs: u32, events_per_epoch: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(ProcId, ProcId)> = base.edges().collect();
        let n = base.len();
        let mut events = Vec::new();
        for epoch in 1..=churn_epochs {
            for _ in 0..events_per_epoch {
                let kind = rng.random_range(0..4u32);
                let action = match kind {
                    0 | 1 => {
                        let (u, v) = edges[rng.random_range(0..edges.len())];
                        if kind == 0 {
                            ChurnAction::FailLink(u, v)
                        } else {
                            ChurnAction::RecoverLink(u, v)
                        }
                    }
                    2 => ChurnAction::Leave(ProcId(rng.random_range(0..n as u32))),
                    _ => ChurnAction::Join(ProcId(rng.random_range(0..n as u32))),
                };
                events.push(ChurnEvent { epoch, action });
            }
        }
        ChurnPlan { events }
    }

    /// The events scheduled for `epoch`, in plan order.
    pub fn events_at(&self, epoch: u32) -> impl Iterator<Item = &ChurnEvent> {
        self.events.iter().filter(move |e| e.epoch == epoch)
    }

    /// The largest epoch with a scheduled event (0 for an empty plan).
    pub fn last_epoch(&self) -> u32 {
        self.events.iter().map(|e| e.epoch).max().unwrap_or(0)
    }
}

/// What [`DynGraph::apply`] did with an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnOutcome {
    /// The event took effect.
    Applied,
    /// The event was refused; the reason is recorded, never hidden.
    Skipped(&'static str),
}

/// A dynamic view over a static base [`Graph`]: active processors plus
/// administratively failed links. See the module docs for the model.
#[derive(Clone, Debug)]
pub struct DynGraph {
    base: Graph,
    active: Vec<bool>,
    /// Failed base links, normalized `u < v`.
    down: BTreeSet<(ProcId, ProcId)>,
    applied: u64,
    skipped: u64,
}

fn norm(u: ProcId, v: ProcId) -> (ProcId, ProcId) {
    if u < v { (u, v) } else { (v, u) }
}

impl DynGraph {
    /// Starts with every base processor active and every link up.
    pub fn new(base: Graph) -> Self {
        let n = base.len();
        DynGraph { base, active: vec![true; n], down: BTreeSet::new(), applied: 0, skipped: 0 }
    }

    /// The static base instance.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Events applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Events refused so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Currently active processors, ascending by base id.
    pub fn active_nodes(&self) -> Vec<ProcId> {
        self.base.procs().filter(|&p| self.active[p.index()]).collect()
    }

    /// Currently failed links, normalized and ascending.
    pub fn failed_links(&self) -> Vec<(ProcId, ProcId)> {
        self.down.iter().copied().collect()
    }

    /// Whether the link `{u, v}` is currently usable: a base link, both
    /// endpoints active, not failed.
    pub fn link_up(&self, u: ProcId, v: ProcId) -> bool {
        self.base.has_edge(u, v)
            && self.active[u.index()]
            && self.active[v.index()]
            && !self.down.contains(&norm(u, v))
    }

    /// Whether the surviving network (active nodes over usable links) is
    /// connected and non-empty.
    fn survivors_connected(&self, extra_down: Option<(ProcId, ProcId)>, without: Option<ProcId>) -> bool {
        let alive = |p: ProcId| self.active[p.index()] && Some(p) != without;
        let Some(start) = self.base.procs().find(|&p| alive(p)) else {
            return false;
        };
        let mut seen = vec![false; self.base.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        let mut count = 1usize;
        while let Some(p) = stack.pop() {
            for q in self.base.neighbors(p) {
                if seen[q.index()] || !alive(q) {
                    continue;
                }
                let e = norm(p, q);
                if self.down.contains(&e) || extra_down == Some(e) {
                    continue;
                }
                seen[q.index()] = true;
                count += 1;
                stack.push(q);
            }
        }
        count == self.base.procs().filter(|&p| alive(p)).count()
    }

    /// Applies one event, refusing anything that would disconnect the
    /// surviving network or is a no-op (already failed, already departed,
    /// …). Both paths are counted; nothing is silently dropped.
    pub fn apply(&mut self, action: ChurnAction) -> ChurnOutcome {
        let outcome = match action {
            ChurnAction::FailLink(u, v) => {
                let e = norm(u, v);
                if !self.base.has_edge(u, v) {
                    ChurnOutcome::Skipped("not a base link")
                } else if self.down.contains(&e) {
                    ChurnOutcome::Skipped("already failed")
                } else if !self.survivors_connected(Some(e), None) {
                    ChurnOutcome::Skipped("would disconnect")
                } else {
                    self.down.insert(e);
                    ChurnOutcome::Applied
                }
            }
            ChurnAction::RecoverLink(u, v) => {
                let e = norm(u, v);
                if self.down.remove(&e) {
                    ChurnOutcome::Applied
                } else {
                    ChurnOutcome::Skipped("not failed")
                }
            }
            ChurnAction::Leave(p) => {
                if p.index() >= self.base.len() || !self.active[p.index()] {
                    ChurnOutcome::Skipped("not active")
                } else if self.active.iter().filter(|&&a| a).count() == 1 {
                    ChurnOutcome::Skipped("last processor")
                } else if !self.survivors_connected(None, Some(p)) {
                    ChurnOutcome::Skipped("would disconnect")
                } else {
                    self.active[p.index()] = false;
                    ChurnOutcome::Applied
                }
            }
            ChurnAction::Join(p) => {
                if p.index() >= self.base.len() {
                    ChurnOutcome::Skipped("not active")
                } else if self.active[p.index()] {
                    ChurnOutcome::Skipped("already active")
                } else {
                    self.active[p.index()] = true;
                    if self.survivors_connected(None, None) {
                        ChurnOutcome::Applied
                    } else {
                        // Re-joining with every usable link failed would
                        // strand the node; refuse and roll back.
                        self.active[p.index()] = false;
                        ChurnOutcome::Skipped("would disconnect")
                    }
                }
            }
        };
        match outcome {
            ChurnOutcome::Applied => self.applied += 1,
            ChurnOutcome::Skipped(_) => self.skipped += 1,
        }
        outcome
    }

    /// Compacts the surviving network into a fresh static [`Graph`]
    /// (processors renumbered `0..n_active` in ascending base-id order)
    /// plus the compact-index → base-id mapping. The result is always a
    /// valid connected instance — the apply-time guard maintains that
    /// invariant — so the serving layer can rebuild lanes on it directly.
    ///
    /// # Panics
    ///
    /// Panics if the survivors are disconnected, which the apply-time
    /// guard makes unreachable.
    pub fn snapshot(&self) -> (Graph, Vec<ProcId>) {
        let map = self.active_nodes();
        let mut inverse = vec![u32::MAX; self.base.len()];
        for (i, &p) in map.iter().enumerate() {
            inverse[p.index()] = i as u32;
        }
        let mut edges = Vec::new();
        for (u, v) in self.base.edges() {
            if self.link_up(u, v) {
                edges.push((inverse[u.index()], inverse[v.index()]));
            }
        }
        let name = format!(
            "churn({}, n={}, links_down={})",
            self.base.name(),
            map.len(),
            self.down.len()
        );
        let g = Graph::from_edges(map.len(), edges)
            .expect("apply-time guard keeps survivors connected")
            .with_name(name);
        debug_assert!(metrics::is_connected(&g));
        (g, map)
    }
}

/// Maps a link-level churn action onto a live `pif_net::NetSim`'s fault
/// channels: failures flush and close the link pair (frames lost, counted
/// in `down_lost`), recoveries reopen it. Returns whether the action was
/// representable — `Leave`/`Join` are **not** (the framed transport has a
/// fixed membership; node churn requires the rebuild path), and neither
/// are links outside the transport's topology.
pub fn apply_to_net<P>(action: ChurnAction, net: &mut pif_net::NetSim<P>) -> bool
where
    P: pif_daemon::Protocol,
    P::State: pif_net::WireState,
{
    match action {
        ChurnAction::FailLink(u, v) => net.set_link_down(u, v, true),
        ChurnAction::RecoverLink(u, v) => net.set_link_down(u, v, false),
        ChurnAction::Leave(_) | ChurnAction::Join(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_graph::generators;

    fn ring6() -> Graph {
        generators::ring(6).unwrap()
    }

    #[test]
    fn seeded_plans_replay_bit_identically() {
        let g = ring6();
        let a = ChurnPlan::seeded(&g, 3, 4, 42);
        let b = ChurnPlan::seeded(&g, 3, 4, 42);
        let c = ChurnPlan::seeded(&g, 3, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events.len(), 12);
        assert_eq!(a.last_epoch(), 3);
        assert!(a.events_at(2).all(|e| e.epoch == 2));
    }

    #[test]
    fn disconnecting_events_are_refused() {
        let mut d = DynGraph::new(ring6());
        // A ring survives one link failure but not two disjoint ones
        // isolating an arc... fail one link, then the failure that would
        // cut the remaining chain is refused.
        assert_eq!(d.apply(ChurnAction::FailLink(ProcId(0), ProcId(1))), ChurnOutcome::Applied);
        assert_eq!(
            d.apply(ChurnAction::FailLink(ProcId(3), ProcId(4))),
            ChurnOutcome::Skipped("would disconnect")
        );
        // Interior node of the surviving chain cannot leave...
        assert_eq!(
            d.apply(ChurnAction::Leave(ProcId(3))),
            ChurnOutcome::Skipped("would disconnect")
        );
        // ...but a chain endpoint can.
        assert_eq!(d.apply(ChurnAction::Leave(ProcId(0))), ChurnOutcome::Applied);
        assert_eq!(d.applied(), 2);
        assert_eq!(d.skipped(), 2);
        let (g, map) = d.snapshot();
        assert_eq!(g.len(), 5);
        assert_eq!(map, vec![ProcId(1), ProcId(2), ProcId(3), ProcId(4), ProcId(5)]);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn leave_then_join_restores_the_instance() {
        let mut d = DynGraph::new(ring6());
        assert_eq!(d.apply(ChurnAction::Leave(ProcId(2))), ChurnOutcome::Applied);
        assert_eq!(d.apply(ChurnAction::Leave(ProcId(2))), ChurnOutcome::Skipped("not active"));
        let (g, _) = d.snapshot();
        assert_eq!(g.len(), 5);
        assert_eq!(d.apply(ChurnAction::Join(ProcId(2))), ChurnOutcome::Applied);
        assert_eq!(d.apply(ChurnAction::Join(ProcId(2))), ChurnOutcome::Skipped("already active"));
        let (g, map) = d.snapshot();
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(map, ring6().procs().collect::<Vec<_>>());
    }

    #[test]
    fn join_with_all_links_failed_is_refused() {
        // star(4): center 0, leaves 1..3. Fail 0-3, then 3 can leave; its
        // only link back is still down, so re-joining would strand it.
        let mut d = DynGraph::new(generators::star(4).unwrap());
        assert_eq!(d.apply(ChurnAction::Leave(ProcId(3))), ChurnOutcome::Applied);
        assert_eq!(d.apply(ChurnAction::FailLink(ProcId(0), ProcId(3))), ChurnOutcome::Applied);
        assert_eq!(
            d.apply(ChurnAction::Join(ProcId(3))),
            ChurnOutcome::Skipped("would disconnect")
        );
        assert_eq!(d.apply(ChurnAction::RecoverLink(ProcId(0), ProcId(3))), ChurnOutcome::Applied);
        assert_eq!(d.apply(ChurnAction::Join(ProcId(3))), ChurnOutcome::Applied);
        assert_eq!(d.snapshot().0.len(), 4);
    }

    #[test]
    fn snapshot_remaps_ids_compactly() {
        let mut d = DynGraph::new(ring6());
        d.apply(ChurnAction::Leave(ProcId(0)));
        let (g, map) = d.snapshot();
        // Survivors 1..5 renumbered 0..4; the surviving chain's links are
        // exactly the base links among them.
        assert_eq!(map, vec![ProcId(1), ProcId(2), ProcId(3), ProcId(4), ProcId(5)]);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(ProcId(0), ProcId(1))); // base 1-2
        assert!(!g.has_edge(ProcId(0), ProcId(4))); // base 1-5 never existed
    }

    #[test]
    fn net_mapping_covers_exactly_the_link_events() {
        let g = ring6();
        let mut net =
            pif_net::NetBuilder::new(g.clone(), pif_core::PifProtocol::new(ProcId(0), &g))
                .states(pif_core::initial::normal_starting(&g))
                .seed(7)
                .build()
                .unwrap();
        assert!(apply_to_net(ChurnAction::FailLink(ProcId(1), ProcId(2)), &mut net));
        assert_eq!(net.link_down(ProcId(1), ProcId(2)), Some(true));
        assert!(apply_to_net(ChurnAction::RecoverLink(ProcId(1), ProcId(2)), &mut net));
        assert_eq!(net.link_down(ProcId(1), ProcId(2)), Some(false));
        assert!(!apply_to_net(ChurnAction::Leave(ProcId(1)), &mut net));
        assert!(!apply_to_net(ChurnAction::FailLink(ProcId(0), ProcId(3)), &mut net));
    }
}
