//! Adversarial daemon search: a seeded beam searcher over enabled-set
//! selections, hunting schedules that maximize rounds-to-landmark.
//!
//! E4 measures Theorem 2's round bounds under a *fixed* daemon panel.
//! This module goes further: it searches the schedule space itself. A
//! candidate schedule is a vector of 64-bit masks; at step `t` the
//! [`ScriptedAdversary`] selects the enabled processors whose position in
//! the (ascending) enabled list is set in `masks[t mod len]`, with an
//! explicit weak-fairness bound forcing any processor continuously
//! enabled for `fairness_bound` steps — the daemon stays inside the
//! paper's "any weakly fair daemon" quantifier by construction, so every
//! searched schedule is a *legal* adversary and its round count is a
//! genuine lower-bound witness for the theorem's window.
//!
//! The search is greedy-beam: a seeded population of schedules is scored
//! (rounds to the landmark configuration, exactly E4's measurement), the
//! best `beam` survive, and each survivor spawns mutated offspring for
//! the next generation. Everything — population, mutations, tie-breaks —
//! derives from the search seed, so a [`SearchReport`] replays
//! bit-identically from its recorded `(seed, config)` and the winning
//! mask vector is re-checkable with [`evaluate`].

use pif_core::analysis::classify;
use pif_core::{initial, Phase, PifProtocol, PifState};
use pif_daemon::daemons::{
    AdversarialLifo, CentralRandom, CentralSequential, DistributedRandom, Synchronous,
};
use pif_daemon::{
    ActionId, Daemon, EnabledSet, MetricsObserver, PhaseTag, RunLimits, Simulator, StopPolicy,
};
use pif_graph::{Graph, ProcId};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// The landmark goals of Theorem 2 (mirrors E4's case analysis; kept here
/// because `pif-bench` consumes this crate, not the other way around).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Goal {
    /// `Pif_r = F` → Start Broadcast within `4·L_max + 4` rounds.
    RootF,
    /// `Pif_r = B ∧ Fok_r` → End Feedback within `5·L_max + 4` rounds.
    RootBFok,
    /// `Pif_r = B ∧ ¬Fok_r` → EBN within `5·L_max + 4` rounds.
    RootBNoFok,
}

impl Goal {
    /// All goals.
    pub const ALL: [Goal; 3] = [Goal::RootF, Goal::RootBFok, Goal::RootBNoFok];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Goal::RootF => "root-F",
            Goal::RootBFok => "root-B-fok",
            Goal::RootBNoFok => "root-B-nofok",
        }
    }

    /// Theorem 2's round bound for this goal.
    pub fn bound(self, l_max: u16) -> u64 {
        match self {
            Goal::RootF => 4 * u64::from(l_max) + 4,
            Goal::RootBFok | Goal::RootBNoFok => 5 * u64::from(l_max) + 4,
        }
    }

    fn force_root(self, protocol: &PifProtocol, states: &mut [PifState]) {
        let r = protocol.root().index();
        match self {
            Goal::RootF => states[r].phase = Phase::F,
            Goal::RootBFok => {
                states[r].phase = Phase::B;
                states[r].fok = true;
                states[r].count = protocol.n();
            }
            Goal::RootBNoFok => {
                states[r].phase = Phase::B;
                states[r].fok = false;
                states[r].count = 1;
            }
        }
    }

    fn reached(self, protocol: &PifProtocol, g: &Graph, states: &[PifState]) -> bool {
        match self {
            Goal::RootF => classify::is_start_broadcast(protocol, states),
            Goal::RootBFok => classify::is_end_feedback(protocol, states),
            Goal::RootBNoFok => {
                classify::is_ebn(protocol, g, states) || states[protocol.root().index()].fok
            }
        }
    }
}

/// The Theorem 1 correction window `3·L_max + 3` (rounds in which a
/// correction action may still fire).
pub fn correction_bound(l_max: u16) -> u64 {
    3 * u64::from(l_max) + 3
}

/// A mask-scripted weakly fair adversary. See the module docs for the
/// selection rule; the fairness bound is enforced by force-selecting any
/// processor whose continuous-enablement age reaches it, exactly like
/// [`AdversarialLifo`].
#[derive(Clone, Debug)]
pub struct ScriptedAdversary {
    masks: Vec<u64>,
    cursor: usize,
    ages: Vec<u64>,
    fairness_bound: u64,
}

impl ScriptedAdversary {
    /// Builds the adversary for an `n`-processor instance. `masks` must
    /// be non-empty; `fairness_bound` is clamped to ≥ 1.
    pub fn new(masks: Vec<u64>, n: usize, fairness_bound: u64) -> Self {
        assert!(!masks.is_empty(), "a schedule needs at least one mask");
        ScriptedAdversary {
            masks,
            cursor: 0,
            ages: vec![0; n],
            fairness_bound: fairness_bound.max(1),
        }
    }
}

impl<S> Daemon<S> for ScriptedAdversary {
    fn select(&mut self, enabled: &EnabledSet<'_, S>, out: &mut Vec<(ProcId, ActionId)>) {
        let procs = enabled.enabled_procs();
        if procs.is_empty() {
            return;
        }
        // Continuous-enablement ages: disabled processors reset.
        let mut is_enabled = vec![false; self.ages.len()];
        for &p in procs {
            is_enabled[p.index()] = true;
            self.ages[p.index()] += 1;
        }
        for (i, age) in self.ages.iter_mut().enumerate() {
            if !is_enabled[i] {
                *age = 0;
            }
        }
        let mask = self.masks[self.cursor % self.masks.len()];
        self.cursor += 1;
        for (i, &p) in procs.iter().enumerate() {
            let scripted = (mask >> (i % 64)) & 1 == 1;
            let forced = self.ages[p.index()] >= self.fairness_bound;
            if scripted || forced {
                out.push((p, enabled.actions_of(p)[0]));
            }
        }
        if out.is_empty() {
            // All-zero mask step: select the longest-enabled processor
            // (largest id on ties) so the selection is never empty.
            let p = *procs
                .iter()
                .max_by_key(|p| (self.ages[p.index()], p.0))
                .expect("non-empty");
            out.push((p, enabled.actions_of(p)[0]));
        }
        for &(p, _) in out.iter() {
            self.ages[p.index()] = 0;
        }
    }

    fn name(&self) -> &'static str {
        "scripted-adversary"
    }
}

/// Search hyperparameters. Defaults are sized for the small recovery
/// instances the experiments use (≤ a few hundred evaluations per goal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchConfig {
    /// Schedule length in masks (replayed cyclically past the end).
    pub depth: usize,
    /// Initial population size.
    pub population: usize,
    /// Survivors kept per generation.
    pub beam: usize,
    /// Mutated offspring per survivor per generation.
    pub branch: usize,
    /// Generations after the initial scoring.
    pub generations: usize,
    /// Weak-fairness bound of every candidate (0 → `4·n` at evaluation).
    pub fairness_bound: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            depth: 48,
            population: 12,
            beam: 4,
            branch: 3,
            generations: 6,
            fairness_bound: 0,
        }
    }
}

/// Everything one search produced, replayable from `(seed, config)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchReport {
    /// The goal searched.
    pub goal: Goal,
    /// `L_max` of the instance.
    pub l_max: u16,
    /// Theorem 2's bound for the goal.
    pub bound: u64,
    /// Theorem 1's correction window `3·L_max + 3`.
    pub corr_bound: u64,
    /// Best (largest) rounds-to-landmark any fixed panel daemon reached.
    pub baseline_rounds: u64,
    /// Name of the panel daemon that set the baseline.
    pub baseline_daemon: &'static str,
    /// Best rounds-to-landmark the search found.
    pub best_rounds: u64,
    /// Correction-phase rounds of the winning schedule.
    pub best_corr_rounds: u64,
    /// The winning mask vector (replay with [`evaluate`]).
    pub best_masks: Vec<u64>,
    /// Schedules evaluated (panel baseline excluded).
    pub evaluations: u64,
    /// Whether every evaluated schedule stayed within the goal bound and
    /// the correction window — the searched half of the acceptance claim.
    pub all_within_bounds: bool,
}

impl SearchReport {
    /// Whether the search matched or beat the fixed panel.
    pub fn beats_panel(&self) -> bool {
        self.best_rounds >= self.baseline_rounds
    }
}

/// Scores one schedule: rounds to the goal landmark from the adversarial
/// start, plus correction-phase rounds (Theorem 1's window), measured
/// exactly like E4. Deterministic in `(goal, graph, root, seed, masks)`.
pub fn evaluate(
    goal: Goal,
    g: &Graph,
    root: ProcId,
    seed: u64,
    masks: &[u64],
    fairness_bound: u64,
) -> (u64, u64) {
    let protocol = PifProtocol::new(root, g);
    let mut daemon = ScriptedAdversary::new(masks.to_vec(), g.len(), fairness_bound);
    run_goal(goal, g, &protocol, seed, &mut daemon)
}

fn run_goal(
    goal: Goal,
    g: &Graph,
    protocol: &PifProtocol,
    seed: u64,
    daemon: &mut dyn Daemon<PifState>,
) -> (u64, u64) {
    let mut init = if g.len() > 1 {
        initial::adversarial_config(
            g,
            protocol,
            ProcId(1 + (seed as u32 % (g.len() as u32 - 1))),
            seed,
        )
    } else {
        initial::normal_starting(g)
    };
    goal.force_root(protocol, &mut init);
    let mut sim = Simulator::new(g.clone(), protocol.clone(), init);
    let mut metrics = MetricsObserver::for_protocol(protocol, g.len());
    let proto = protocol.clone();
    let graph = g.clone();
    let mut target = move |s: &Simulator<PifProtocol>| goal.reached(&proto, &graph, s.states());
    let stats = sim
        .run(
            daemon,
            &mut metrics,
            StopPolicy::Predicate(RunLimits::new(2_000_000, 200_000), &mut target),
        )
        .expect("goal run exceeded its budget");
    (stats.rounds, metrics.report().rounds_of(PhaseTag::Correction))
}

/// Rounds-to-landmark of the fixed daemon panel (E4's spectrum plus the
/// LIFO adversary): the baseline the search must match or beat.
fn panel_baseline(goal: Goal, g: &Graph, root: ProcId, seed: u64) -> (u64, &'static str) {
    let protocol = PifProtocol::new(root, g);
    let n = g.len();
    let mut daemons: Vec<Box<dyn Daemon<PifState>>> = vec![
        Box::new(Synchronous::first_action()),
        Box::new(CentralSequential::new()),
        Box::new(CentralRandom::new(seed)),
        Box::new(DistributedRandom::new(0.5, seed.wrapping_add(1))),
        Box::new(AdversarialLifo::new(4 * n as u64, seed.wrapping_add(2))),
    ];
    let mut best = (0u64, "synchronous");
    for d in &mut daemons {
        let name = d.name();
        let (rounds, _) = run_goal(goal, g, &protocol, seed, d.as_mut());
        if rounds > best.0 {
            best = (rounds, name);
        }
    }
    best
}

/// Runs the beam search for one goal on one rooted instance.
///
/// # Panics
///
/// Panics if a candidate run exceeds the (generous) step/round budget,
/// which a weakly fair daemon on the small search instances cannot.
pub fn search(goal: Goal, g: &Graph, root: ProcId, seed: u64, config: &SearchConfig) -> SearchReport {
    let protocol = PifProtocol::new(root, g);
    let l_max = protocol.l_max();
    let bound = goal.bound(l_max);
    let corr_bound = correction_bound(l_max);
    let fairness = if config.fairness_bound == 0 {
        4 * g.len() as u64
    } else {
        config.fairness_bound
    };
    let (baseline_rounds, baseline_daemon) = panel_baseline(goal, g, root, seed);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5CAB);
    let depth = config.depth.max(1);
    let mut population: Vec<Vec<u64>> = (0..config.population.max(1))
        .map(|_| (0..depth).map(|_| rng.next_u64()).collect())
        .collect();
    let mut evaluations = 0u64;
    let mut all_within = true;
    let mut scored: Vec<(u64, u64, Vec<u64>)> = Vec::new();
    let score_all = |cands: Vec<Vec<u64>>,
                         scored: &mut Vec<(u64, u64, Vec<u64>)>,
                         evaluations: &mut u64,
                         all_within: &mut bool| {
        for masks in cands {
            let (rounds, corr) = evaluate(goal, g, root, seed, &masks, fairness);
            *evaluations += 1;
            if rounds > bound || corr > corr_bound {
                *all_within = false;
            }
            scored.push((rounds, corr, masks));
        }
    };
    score_all(std::mem::take(&mut population), &mut scored, &mut evaluations, &mut all_within);

    for _gen in 0..config.generations {
        // Keep the beam (rounds descending; deterministic tie-break on
        // the mask bytes so replay never depends on sort stability).
        scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(&b.2)));
        scored.truncate(config.beam.max(1));
        let mut offspring = Vec::new();
        for (_, _, masks) in &scored {
            for _ in 0..config.branch.max(1) {
                let mut child = masks.clone();
                // Mutate a seeded handful of positions: redraw or flip.
                let edits = 1 + rng.random_range(0..3usize);
                for _ in 0..edits {
                    let i = rng.random_range(0..child.len());
                    if rng.random_bool(0.5) {
                        child[i] = rng.next_u64();
                    } else {
                        child[i] ^= 1u64 << rng.random_range(0..64u32);
                    }
                }
                offspring.push(child);
            }
        }
        score_all(offspring, &mut scored, &mut evaluations, &mut all_within);
    }
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(&b.2)));
    let (best_rounds, best_corr_rounds, best_masks) = scored.into_iter().next().expect("non-empty");
    SearchReport {
        goal,
        l_max,
        bound,
        corr_bound,
        baseline_rounds,
        baseline_daemon,
        best_rounds,
        best_corr_rounds,
        best_masks,
        evaluations,
        all_within_bounds: all_within,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_graph::generators;

    fn small_config() -> SearchConfig {
        SearchConfig { depth: 24, population: 6, beam: 3, branch: 2, generations: 3, fairness_bound: 0 }
    }

    #[test]
    fn search_replays_bit_identically_from_its_seed() {
        let g = generators::ring(6).unwrap();
        let a = search(Goal::RootF, &g, ProcId(0), 9, &small_config());
        let b = search(Goal::RootF, &g, ProcId(0), 9, &small_config());
        assert_eq!(a, b);
        // The winning schedule re-evaluates to its recorded score.
        let (rounds, corr) = evaluate(Goal::RootF, &g, ProcId(0), 9, &a.best_masks, 4 * 6);
        assert_eq!((rounds, corr), (a.best_rounds, a.best_corr_rounds));
    }

    #[test]
    fn searched_schedules_respect_the_theorem_windows() {
        let g = generators::chain(6).unwrap();
        for goal in Goal::ALL {
            let r = search(goal, &g, ProcId(0), 3, &small_config());
            assert!(r.all_within_bounds, "{}: a schedule broke a bound", goal.name());
            assert!(r.best_rounds <= r.bound);
            assert!(r.best_corr_rounds <= r.corr_bound);
            assert!(r.evaluations > 0);
        }
    }

    #[test]
    fn scripted_adversary_is_weakly_fair_under_the_all_zero_script() {
        // An all-zero script selects only via the fallback/fairness path;
        // the run must still make progress to the landmark.
        let g = generators::ring(5).unwrap();
        let (rounds, _) = evaluate(Goal::RootF, &g, ProcId(0), 1, &[0u64; 8], 4 * 5);
        assert!(rounds > 0);
        assert!(rounds <= Goal::RootF.bound(PifProtocol::new(ProcId(0), &g).l_max()));
    }

    #[test]
    fn search_matches_or_beats_the_fixed_panel_somewhere() {
        // The acceptance claim of the chaos searcher: on at least one of
        // the small recovery instances it finds a schedule at least as
        // slow as the worst fixed panel daemon.
        let beaten = [generators::chain(6).unwrap(), generators::ring(6).unwrap()]
            .iter()
            .any(|g| {
                Goal::ALL.iter().any(|&goal| {
                    search(goal, g, ProcId(0), 7, &small_config()).beats_panel()
                })
            });
        assert!(beaten, "search never matched the fixed-daemon worst case");
    }
}
