//! Frontier-level parallel search drivers.
//!
//! The exhaustive searches of this crate are breadth-first closures over
//! a product state space. This module supplies the three parallel shapes
//! they need, all generic over the item type and the per-worker scratch:
//!
//! * [`search`] — level-synchronous BFS: workers claim blocks of the
//!   current frontier through an atomic index, expand them with private
//!   scratch, and append newly discovered states to worker-local next
//!   buffers that become the next frontier. The only shared mutable
//!   structure is whatever the `expand` closure captures (in practice
//!   the [`crate::visited::VisitedSet`]).
//! * [`seed_scan`] — embarrassingly parallel generation over the id
//!   range `0..total`, used to seed the searches with every (relevant)
//!   configuration.
//! * [`find_min_violation`] — embarrassingly parallel predicate scan
//!   over `0..total` returning the *smallest* violating id, with an
//!   atomic best-so-far bound that lets workers skip ids that can no
//!   longer matter. Deterministic: the result is the minimum over all
//!   violating ids regardless of scheduling.
//!
//! With one worker every driver runs inline on the calling thread (no
//! spawns), so the parallel code path degrades gracefully to a plain
//! loop on single-core hosts.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Items claimed per atomic fetch when splitting a frontier. Large
/// enough to amortize the atomic op, small enough to balance uneven
/// expansion costs.
const BLOCK: usize = 256;

/// Ids claimed per atomic fetch in the range scans (seeding, universal
/// predicates). Id-scan work items are much cheaper than frontier
/// expansions, so blocks are bigger.
const ID_BLOCK: u64 = 4096;

/// Runs a level-synchronous parallel BFS from `frontier` until the
/// frontier is empty. One worker per scratch in `scratches`; `expand`
/// receives a worker's scratch, one frontier item, and the worker-local
/// buffer into which it pushes the item's *newly discovered* successors
/// (deduplication against a shared visited set is the closure's job).
pub fn search<T, S, F>(mut frontier: Vec<T>, scratches: &mut [S], expand: F)
where
    T: Send + Sync,
    S: Send,
    F: Fn(&mut S, &T, &mut Vec<T>) + Sync,
{
    let workers = scratches.len().max(1);
    let mut next_bufs: Vec<Vec<T>> = (0..workers).map(|_| Vec::new()).collect();
    while !frontier.is_empty() {
        if workers == 1 {
            let (sc, nb) = (&mut scratches[0], &mut next_bufs[0]);
            for item in &frontier {
                expand(sc, item, nb);
            }
        } else {
            let counter = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for (sc, nb) in scratches.iter_mut().zip(next_bufs.iter_mut()) {
                    let (frontier, counter, expand) = (&frontier, &counter, &expand);
                    scope.spawn(move || loop {
                        let start = counter.fetch_add(BLOCK, Ordering::Relaxed);
                        if start >= frontier.len() {
                            break;
                        }
                        let end = (start + BLOCK).min(frontier.len());
                        for item in &frontier[start..end] {
                            expand(sc, item, nb);
                        }
                    });
                }
            });
        }
        frontier.clear();
        for nb in &mut next_bufs {
            frontier.append(nb);
        }
    }
}

/// Scans ids `0..total` in parallel, one worker per scratch; `generate`
/// pushes any seed items for an id into the worker-local buffer. Returns
/// the concatenated seeds (order is unspecified across workers — the
/// searches consuming them are order-insensitive).
pub fn seed_scan<T, S, F>(total: u64, scratches: &mut [S], generate: F) -> Vec<T>
where
    T: Send,
    S: Send,
    F: Fn(&mut S, u64, &mut Vec<T>) + Sync,
{
    let workers = scratches.len().max(1);
    let mut bufs: Vec<Vec<T>> = (0..workers).map(|_| Vec::new()).collect();
    if workers == 1 {
        for id in 0..total {
            generate(&mut scratches[0], id, &mut bufs[0]);
        }
    } else {
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for (sc, buf) in scratches.iter_mut().zip(bufs.iter_mut()) {
                let (counter, generate) = (&counter, &generate);
                scope.spawn(move || loop {
                    let start = counter.fetch_add(ID_BLOCK, Ordering::Relaxed);
                    if start >= total {
                        break;
                    }
                    let end = (start + ID_BLOCK).min(total);
                    for id in start..end {
                        generate(sc, id, buf);
                    }
                });
            }
        });
    }
    let mut out = Vec::with_capacity(bufs.iter().map(Vec::len).sum());
    for mut buf in bufs {
        out.append(&mut buf);
    }
    out
}

/// Evaluates `violates` over ids `0..total` with `workers` threads and
/// returns the smallest id for which it holds, or `None`.
///
/// Each worker gets its own scratch from `init`. A shared atomic holds
/// the best (smallest) violating id found so far; ids at or above it are
/// skipped, so the scan short-circuits like a sequential `find` while
/// still returning the deterministic minimum.
pub fn find_min_violation<S, I, F>(workers: usize, total: u64, init: I, violates: F) -> Option<u64>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> bool + Sync,
{
    let best = AtomicU64::new(u64::MAX);
    let counter = AtomicU64::new(0);
    pif_par::run_workers(workers.max(1), |_| {
        let mut scratch = init();
        loop {
            let start = counter.fetch_add(ID_BLOCK, Ordering::Relaxed);
            // Blocks are claimed in increasing order, so once this
            // worker's block starts at or beyond the best known
            // violation, every id it could still claim is irrelevant.
            if start >= total || start >= best.load(Ordering::Relaxed) {
                break;
            }
            let end = (start + ID_BLOCK).min(total);
            for id in start..end {
                if id >= best.load(Ordering::Relaxed) {
                    break;
                }
                if violates(&mut scratch, id) {
                    best.fetch_min(id, Ordering::Relaxed);
                    break;
                }
            }
        }
    });
    match best.load(Ordering::Relaxed) {
        u64::MAX => None,
        id => Some(id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn search_reaches_the_whole_closure() {
        // Graph on 0..100 with edges i -> i+1, i -> 2i; BFS from 0 must
        // visit exactly the reachable set, once each, for any worker
        // count.
        for workers in [1usize, 4] {
            let visited = Mutex::new(HashSet::new());
            let seeds: Vec<u64> = vec![0];
            visited.lock().unwrap().insert(0u64);
            let mut scratches = vec![(); workers];
            search(seeds, &mut scratches, |_, &item, out| {
                for succ in [item + 1, item * 2] {
                    if succ < 100 && visited.lock().unwrap().insert(succ) {
                        out.push(succ);
                    }
                }
            });
            assert_eq!(visited.lock().unwrap().len(), 100);
        }
    }

    #[test]
    fn seed_scan_covers_the_range() {
        for workers in [1usize, 3] {
            let mut scratches = vec![(); workers];
            let mut seeds = seed_scan(10_000, &mut scratches, |_, id, out| {
                if id % 3 == 0 {
                    out.push(id);
                }
            });
            seeds.sort_unstable();
            assert_eq!(seeds, (0..10_000).filter(|i| i % 3 == 0).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn find_min_violation_is_deterministic() {
        for workers in [1, 2, 8] {
            let got = find_min_violation(workers, 1_000_000, || (), |_, id| id % 7777 == 7000);
            assert_eq!(got, Some(7000));
        }
        assert_eq!(find_min_violation(4, 1_000_000, || (), |_, _| false), None);
    }
}
