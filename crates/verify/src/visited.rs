//! Sharded visited-set for the parallel state-space searches.
//!
//! The searches key product states as packed `u128`s (configuration id
//! plus the search overlay — delivery bitmaps, round counters). The
//! visited set is the only structure shared between workers, so it is
//! sharded: a key hashes to one of [`SHARD_COUNT`] independently locked
//! open-addressing tables, and workers expanding different shards never
//! contend. Within a shard, slots are a linear-probed power-of-two array
//! of raw `u128` keys — no buckets, no per-entry allocation, ~16 bytes
//! per visited state plus load-factor headroom.
//!
//! Determinism: [`VisitedSet::insert`] returns whether the key was newly
//! inserted, exactly once per key across all workers (the shard lock
//! serializes insertions of colliding keys). The *set* of visited states
//! of a breadth-first search closure is independent of insertion order,
//! which is what makes the parallel searches bit-identical to the
//! sequential ones — see `DESIGN.md` §11.

// Via pif-par's cfg-switched module: std's mutex normally, the
// loom-instrumented one under `--cfg loom` (see tests/loom_visited.rs).
use pif_par::sync::Mutex;

/// Number of independently locked shards (a power of two). 64 shards
/// keep contention negligible up to the thread counts std exposes while
/// costing only 64 mutexes of overhead.
pub const SHARD_COUNT: usize = 64;

/// Sentinel marking an empty slot. Packed keys never collide with it:
/// every search packs a configuration id of < 2^40 below bit 90, so all
/// real keys are far smaller than `u128::MAX`.
const EMPTY: u128 = u128::MAX;

/// Growth / initial sizing load factor: grow a shard when it is 3/4 full.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

fn hash(key: u128) -> u64 {
    // Fold the halves, then SplitMix64 finalization — cheap and well
    // distributed for the dense, low-entropy packed keys the searches
    // produce.
    let mut x = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

struct Shard {
    /// Linear-probed slot array; length is a power of two.
    slots: Vec<u128>,
    /// Occupied slot count.
    items: usize,
}

impl Shard {
    fn with_capacity(expected: usize) -> Self {
        let min_slots = (expected * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(16);
        Shard { slots: vec![EMPTY; min_slots], items: 0 }
    }

    /// Inserts `key`; returns `true` if it was not present.
    fn insert(&mut self, key: u128, h: u64) -> bool {
        if (self.items + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                self.slots[i] = key;
                self.items += 1;
                return true;
            }
            if slot == key {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_len]);
        let mask = new_len - 1;
        for key in old {
            if key == EMPTY {
                continue;
            }
            let mut i = (hash(key) as usize) & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = key;
        }
    }
}

/// A concurrent set of packed `u128` product states.
///
/// Sharded open addressing: `insert` takes one shard lock, held only for
/// the probe. Built for the write-once access pattern of a BFS visited
/// set — there is no lookup-without-insert and no removal.
pub struct VisitedSet {
    shards: Vec<Mutex<Shard>>,
}

impl VisitedSet {
    /// Creates a set pre-sized for `expected` total keys (spread evenly
    /// over the shards), so steady-state inserts rarely rehash.
    pub fn with_capacity(expected: usize) -> Self {
        let per_shard = expected / SHARD_COUNT;
        VisitedSet {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Shard::with_capacity(per_shard))).collect(),
        }
    }

    /// Inserts `key`, returning `true` exactly once per distinct key
    /// across all threads.
    ///
    /// # Panics
    ///
    /// Panics if `key == u128::MAX` (the empty-slot sentinel) or if a
    /// shard lock is poisoned by a panicking worker.
    pub fn insert(&self, key: u128) -> bool {
        assert_ne!(key, EMPTY, "u128::MAX is reserved as the empty-slot sentinel");
        let h = hash(key);
        // Shard on the top bits, probe on the low bits, so the probe
        // position within a shard is independent of shard selection.
        let shard = (h >> (64 - SHARD_COUNT.trailing_zeros())) as usize;
        self.shards[shard].lock().expect("visited shard poisoned").insert(key, h)
    }

    /// Total number of distinct keys inserted.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("visited shard poisoned").items).sum()
    }

    /// Whether no key has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_novelty_exactly_once() {
        let set = VisitedSet::with_capacity(0);
        assert!(set.insert(42));
        assert!(!set.insert(42));
        assert!(set.insert(43));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn growth_preserves_membership() {
        let set = VisitedSet::with_capacity(0);
        // Far more keys than the initial sizing, forcing many rehashes;
        // adversarially dense keys (sequential ids shifted like the real
        // pack functions).
        for k in 0..100_000u128 {
            assert!(set.insert(k << 23));
        }
        for k in 0..100_000u128 {
            assert!(!set.insert(k << 23));
        }
        assert_eq!(set.len(), 100_000);
    }

    #[test]
    fn concurrent_inserts_count_each_key_once() {
        let set = VisitedSet::with_capacity(1 << 12);
        let winners: usize = pif_par::run_workers(8, |_| {
            (0..10_000u128).filter(|&k| set.insert(k * 3)).count()
        })
        .into_iter()
        .sum();
        assert_eq!(winners, 10_000, "each key must be claimed by exactly one worker");
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_key_is_rejected() {
        VisitedSet::with_capacity(0).insert(u128::MAX);
    }
}
