//! Sharded visited-set for the parallel state-space searches.
//!
//! The searches key product states as packed `u128`s (configuration id
//! plus the search overlay — delivery bitmaps, round counters). The
//! visited set is the only structure shared between workers, so it is
//! sharded: a key hashes to one of `shard_count` independently locked
//! open-addressing tables, and workers expanding different shards never
//! contend. Within a shard, slots are a linear-probed power-of-two array
//! of raw keys — no buckets, no per-entry allocation.
//!
//! Two memory levers sit behind the same interface (`DESIGN.md` §16):
//!
//! * **Key-width compression.** Every search knows an upper bound on the
//!   packed keys it will produce (`configuration count × overlay width`).
//!   When that bound fits in 64 bits — true for every instance up to and
//!   including the chain(4)/ring(4) tier-2 searches — the slot arrays
//!   store `u64`s, halving the table's 16 bytes/state to 8.
//! * **Disk spill.** With a live-table byte budget configured, a shard
//!   that would grow past its share of the budget instead *freezes* its
//!   live table into an immutable sorted run: keys go to an
//!   already-unlinked temporary file (so the OS reclaims the space when
//!   the set drops, even on panic), fronted by a Bloom filter
//!   (~10 bits/key) and in-memory fence keys (one per
//!   [`RUN_BLOCK`]-key block). Membership probes hit the live table
//!   first; only a Bloom-positive key pays one block-sized `pread` plus
//!   a binary search within the block. Inserts always land in the live
//!   table, so the frozen runs stay immutable and lock-free to read.
//!
//! Determinism: [`VisitedSet::insert`] returns whether the key was newly
//! inserted, exactly once per key across all workers (the shard lock
//! serializes insertions of colliding keys). The *set* of visited states
//! of a breadth-first search closure is independent of insertion order,
//! which is what makes the parallel searches bit-identical to the
//! sequential ones — see `DESIGN.md` §11. Neither the slot width nor the
//! spill tier changes any `insert` verdict, only where the key lives.

// Via pif-par's cfg-switched module: std's mutex normally, the
// loom-instrumented one under `--cfg loom` (see tests/loom_visited.rs).
use pif_par::sync::Mutex;

use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of independently locked shards (a power of two). 64
/// shards keep contention negligible up to the thread counts std exposes
/// while costing only 64 mutexes of overhead.
pub const SHARD_COUNT: usize = 64;

/// Keys per frozen-run block: fence keys are kept in memory one per
/// block, and a disk probe reads exactly one block.
pub const RUN_BLOCK: usize = 512;

/// Sentinel marking an empty slot. Packed keys never collide with it:
/// [`VisitedConfig::max_key`] must stay below the sentinel of the chosen
/// slot width, which every search satisfies by construction.
const EMPTY: u128 = u128::MAX;
const EMPTY64: u64 = u64::MAX;

/// Growth / initial sizing load factor: grow a shard when it is 3/4 full.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

fn hash(key: u128) -> u64 {
    // Fold the halves, then SplitMix64 finalization — cheap and well
    // distributed for the dense, low-entropy packed keys the searches
    // produce.
    let mut x = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Construction parameters for a [`VisitedSet`].
#[derive(Clone, Debug)]
pub struct VisitedConfig {
    /// Expected number of distinct keys: the live tables are pre-sized
    /// for it (spread evenly over the shards) so steady-state inserts
    /// rarely rehash. Pre-sizing is capped at the spill budget when one
    /// is set.
    pub expected: usize,
    /// Inclusive upper bound on every key that will be inserted. Bounds
    /// `< u64::MAX` get 8-byte slots instead of 16.
    pub max_key: u128,
    /// Number of shards; must be a power of two.
    pub shard_count: usize,
    /// Total live-table byte budget across all shards; `None` disables
    /// the spill tier. When a shard's next growth would push the live
    /// tables past the budget, it freezes its contents into a sorted
    /// on-disk run instead.
    pub spill_budget: Option<usize>,
}

impl Default for VisitedConfig {
    fn default() -> Self {
        VisitedConfig {
            expected: 0,
            max_key: EMPTY - 1,
            shard_count: SHARD_COUNT,
            spill_budget: None,
        }
    }
}

/// Slot array in one of the two supported key widths.
enum Slots {
    U64(Vec<u64>),
    U128(Vec<u128>),
}

impl Slots {
    fn with_len(len: usize, wide: bool) -> Self {
        if wide {
            Slots::U128(vec![EMPTY; len])
        } else {
            Slots::U64(vec![EMPTY64; len])
        }
    }

    fn len(&self) -> usize {
        match self {
            Slots::U64(v) => v.len(),
            Slots::U128(v) => v.len(),
        }
    }

    fn key_bytes(&self) -> usize {
        match self {
            Slots::U64(_) => 8,
            Slots::U128(_) => 16,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> u128 {
        match self {
            Slots::U64(v) => {
                let s = v[i];
                if s == EMPTY64 {
                    EMPTY
                } else {
                    u128::from(s)
                }
            }
            Slots::U128(v) => v[i],
        }
    }

    #[inline]
    fn set(&mut self, i: usize, key: u128) {
        match self {
            Slots::U64(v) => v[i] = key as u64,
            Slots::U128(v) => v[i] = key,
        }
    }
}

/// Blocked Bloom-free fence index plus filter for one frozen run.
struct Run {
    /// Already-unlinked backing file holding `len` sorted keys.
    file: File,
    len: usize,
    /// Bytes per key in the file (the slot width at freeze time).
    width: usize,
    /// First key of each [`RUN_BLOCK`]-key block, ascending.
    fences: Vec<u128>,
    /// Bloom filter bits (two probes per key), length a power of two.
    bloom: Vec<u64>,
}

impl Run {
    /// Freezes `keys` (sorted, distinct) into an immutable run.
    fn freeze(dir: &std::path::Path, seq: u64, keys: &[u128], width: usize) -> std::io::Result<Run> {
        let bloom_words = (keys.len() * 10).div_ceil(64).next_power_of_two().max(1);
        let mut bloom = vec![0u64; bloom_words];
        let bit_mask = bloom_words * 64 - 1;
        let mut bytes: Vec<u8> = Vec::with_capacity(keys.len() * width);
        let mut fences = Vec::with_capacity(keys.len() / RUN_BLOCK + 1);
        for (i, &k) in keys.iter().enumerate() {
            if i % RUN_BLOCK == 0 {
                fences.push(k);
            }
            bytes.extend_from_slice(&k.to_le_bytes()[..width]);
            let h = hash(k);
            for bit in [h as usize & bit_mask, (h >> 32) as usize & bit_mask] {
                bloom[bit / 64] |= 1 << (bit % 64);
            }
        }
        let path = dir.join(format!("run-{seq}.keys"));
        let mut file = File::options().read(true).write(true).create_new(true).open(&path)?;
        file.write_all(&bytes)?;
        // Unlink immediately: the open handle keeps the data readable,
        // and the filesystem reclaims it when the set drops — even if
        // the process panics mid-search.
        let _ = std::fs::remove_file(&path);
        Ok(Run { file, len: keys.len(), width, fences, bloom })
    }

    #[inline]
    fn bloom_positive(&self, key: u128) -> bool {
        let bit_mask = self.bloom.len() * 64 - 1;
        let h = hash(key);
        [h as usize & bit_mask, (h >> 32) as usize & bit_mask]
            .iter()
            .all(|&bit| self.bloom[bit / 64] & (1 << (bit % 64)) != 0)
    }

    /// Exact membership: fence search in memory, then one block read.
    fn contains(&self, key: u128) -> bool {
        if !self.bloom_positive(key) {
            return false;
        }
        // Block whose fence is the greatest fence <= key.
        let b = match self.fences.partition_point(|&f| f <= key) {
            0 => return false, // below the smallest key
            i => i - 1,
        };
        let start = b * RUN_BLOCK;
        let count = RUN_BLOCK.min(self.len - start);
        let mut buf = vec![0u8; count * self.width];
        if self.read_at(&mut buf, (start * self.width) as u64).is_err() {
            // An unreadable run cannot prove absence; treat the key as
            // absent so the search stays complete (it may re-explore).
            return false;
        }
        let decode = |i: usize| -> u128 {
            let mut raw = [0u8; 16];
            raw[..self.width].copy_from_slice(&buf[i * self.width..(i + 1) * self.width]);
            u128::from_le_bytes(raw)
        };
        let (mut lo, mut hi) = (0usize, count);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match decode(mid).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        false
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
    }

    #[cfg(not(unix))]
    fn read_at(&self, _buf: &mut [u8], _offset: u64) -> std::io::Result<()> {
        // Non-unix builds keep runs readable only through the fallback
        // in `Shard::freeze` (runs stay in memory there), so this path
        // is unreachable; returning an error keeps `contains`
        // conservative if it ever is reached.
        Err(std::io::Error::other("positioned reads unsupported"))
    }
}

struct Shard {
    /// Linear-probed slot array; length is a power of two.
    slots: Slots,
    /// Occupied slot count of the live table.
    items: usize,
    /// Immutable sorted spill runs, oldest first.
    runs: Vec<Run>,
    /// Total keys held by `runs`.
    spilled: usize,
}

impl Shard {
    fn with_capacity(expected: usize, wide: bool) -> Self {
        let min_slots = (expected * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(16);
        Shard { slots: Slots::with_len(min_slots, wide), items: 0, runs: Vec::new(), spilled: 0 }
    }

    /// Probes the live table for `key`.
    #[inline]
    fn live_contains(&self, key: u128, h: u64) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let slot = self.slots.get(i);
            if slot == EMPTY {
                return false;
            }
            if slot == key {
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `key`, known absent from both tiers; returns `true` when
    /// the shard spilled its live table to make room.
    fn insert_new(&mut self, key: u128, h: u64, spill: Option<&SpillState>) -> bool {
        let mut froze = false;
        if (self.items + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            // Freeze instead of growing once doubling would overshoot
            // this shard's share of the live-table budget.
            let over_budget = spill.is_some_and(|s| {
                self.slots.len() * 2 * self.slots.key_bytes() > s.per_shard_budget
            });
            if over_budget && self.items > 0 {
                self.freeze(spill.expect("checked above"));
                froze = true;
            } else {
                self.grow();
            }
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        while self.slots.get(i) != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots.set(i, key);
        self.items += 1;
        froze
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let wide = self.slots.key_bytes() == 16;
        let old = std::mem::replace(&mut self.slots, Slots::with_len(new_len, wide));
        let mask = new_len - 1;
        for i in 0..old.len() {
            let key = old.get(i);
            if key == EMPTY {
                continue;
            }
            let mut j = (hash(key) as usize) & mask;
            while self.slots.get(j) != EMPTY {
                j = (j + 1) & mask;
            }
            self.slots.set(j, key);
        }
    }

    /// Moves the live table's contents into a new frozen run and resets
    /// the live table to its minimum size.
    fn freeze(&mut self, spill: &SpillState) {
        let mut keys: Vec<u128> = (0..self.slots.len())
            .map(|i| self.slots.get(i))
            .filter(|&k| k != EMPTY)
            .collect();
        keys.sort_unstable();
        let width = self.slots.key_bytes();
        let seq = spill.seq.fetch_add(1, Ordering::Relaxed);
        match Run::freeze(&spill.dir, seq, &keys, width) {
            Ok(run) => {
                self.spilled += keys.len();
                self.runs.push(run);
                self.slots = Slots::with_len(16, width == 16);
                self.items = 0;
            }
            Err(_) => {
                // Disk unavailable: keep the keys in memory and grow as
                // if no budget were set — degraded but still correct.
                self.grow();
            }
        }
    }

    fn contains(&self, key: u128, h: u64) -> bool {
        self.live_contains(key, h) || self.runs.iter().any(|r| r.contains(key))
    }
}

/// Shared spill configuration: the runs directory plus a process-wide
/// run sequence number.
struct SpillState {
    dir: std::path::PathBuf,
    per_shard_budget: usize,
    seq: AtomicU64,
}

/// A concurrent set of packed `u128` product states.
///
/// Sharded open addressing with optional key-width compression and a
/// disk-spill tier (see the module docs). `insert` takes one shard
/// lock, held only for the probe (plus the occasional freeze). Built
/// for the write-once access pattern of a BFS visited set — there is no
/// lookup-without-insert and no removal.
pub struct VisitedSet {
    shards: Vec<Mutex<Shard>>,
    shard_bits: u32,
    spill: Option<SpillState>,
}

impl VisitedSet {
    /// Creates a set pre-sized for `expected` total keys with the
    /// default configuration: full-width slots, [`SHARD_COUNT`] shards,
    /// no spill tier.
    pub fn with_capacity(expected: usize) -> Self {
        Self::with_config(VisitedConfig { expected, ..VisitedConfig::default() })
    }

    /// Creates a set from an explicit [`VisitedConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is not a power of two, or if `max_key`
    /// collides with the empty-slot sentinel of the selected width.
    pub fn with_config(config: VisitedConfig) -> Self {
        assert!(
            config.shard_count.is_power_of_two(),
            "shard count must be a power of two, got {}",
            config.shard_count
        );
        let wide = config.max_key >= u128::from(EMPTY64);
        assert_ne!(config.max_key, EMPTY, "u128::MAX is reserved as the empty-slot sentinel");
        let spill = config.spill_budget.map(|budget| {
            static SET_SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "pif-visited-{}-{}",
                std::process::id(),
                SET_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            // Creation failures surface later as freeze failures, which
            // degrade to growth; no need to fail construction.
            let _ = std::fs::create_dir_all(&dir);
            SpillState {
                dir,
                per_shard_budget: (budget / config.shard_count).max(16 * 16),
                seq: AtomicU64::new(0),
            }
        });
        // Under a spill budget, pre-sizing past the budget would defeat
        // it: cap the initial tables at the budget and let freezing take
        // over from there.
        let mut per_shard = config.expected / config.shard_count;
        if let Some(s) = &spill {
            let width = if wide { 16 } else { 8 };
            per_shard = per_shard.min(s.per_shard_budget / width * LOAD_NUM / LOAD_DEN);
        }
        VisitedSet {
            shards: (0..config.shard_count)
                .map(|_| Mutex::new(Shard::with_capacity(per_shard, wide)))
                .collect(),
            shard_bits: config.shard_count.trailing_zeros(),
            spill,
        }
    }

    #[inline]
    fn shard_of(&self, h: u64) -> usize {
        // Shard on the top bits, probe on the low bits, so the probe
        // position within a shard is independent of shard selection.
        if self.shard_bits == 0 {
            0
        } else {
            (h >> (64 - self.shard_bits)) as usize
        }
    }

    /// Inserts `key`, returning `true` exactly once per distinct key
    /// across all threads.
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds the configured `max_key` bound (in the
    /// narrow-slot case, where it would collide with the sentinel) or if
    /// a shard lock is poisoned by a panicking worker.
    pub fn insert(&self, key: u128) -> bool {
        assert_ne!(key, EMPTY, "u128::MAX is reserved as the empty-slot sentinel");
        let h = hash(key);
        let mut shard = self.shards[self.shard_of(h)].lock().expect("visited shard poisoned");
        if key >= u128::from(EMPTY64) {
            assert!(
                shard.slots.key_bytes() == 16,
                "key {key:#x} exceeds the configured max_key bound of a narrow-slot set"
            );
        }
        if shard.contains(key, h) {
            return false;
        }
        shard.insert_new(key, h, self.spill.as_ref());
        true
    }

    /// Total number of distinct keys inserted (live + spilled).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().expect("visited shard poisoned");
                s.items + s.spilled
            })
            .sum()
    }

    /// Whether no key has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of keys currently frozen in on-disk runs (zero without a
    /// spill budget).
    pub fn spilled_keys(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("visited shard poisoned").spilled).sum()
    }

    /// Number of frozen runs across all shards.
    pub fn run_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("visited shard poisoned").runs.len()).sum()
    }

    /// Current live-table slot bytes across all shards (the quantity the
    /// spill budget bounds).
    pub fn live_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().expect("visited shard poisoned");
                s.slots.len() * s.slots.key_bytes()
            })
            .sum()
    }
}

impl Drop for VisitedSet {
    fn drop(&mut self) {
        if let Some(s) = &self.spill {
            // Run files are already unlinked; only the directory remains.
            let _ = std::fs::remove_dir(&s.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_novelty_exactly_once() {
        let set = VisitedSet::with_capacity(0);
        assert!(set.insert(42));
        assert!(!set.insert(42));
        assert!(set.insert(43));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn growth_preserves_membership() {
        let set = VisitedSet::with_capacity(0);
        // Far more keys than the initial sizing, forcing many rehashes;
        // adversarially dense keys (sequential ids shifted like the real
        // pack functions).
        for k in 0..100_000u128 {
            assert!(set.insert(k << 23));
        }
        for k in 0..100_000u128 {
            assert!(!set.insert(k << 23));
        }
        assert_eq!(set.len(), 100_000);
    }

    #[test]
    fn narrow_slots_preserve_membership_under_resize_load() {
        // Same adversarial load as above, but through the u64 slot path
        // (max_key fits): half the table bytes, identical verdicts.
        let set = VisitedSet::with_config(VisitedConfig {
            max_key: 100_000u128 << 23,
            ..VisitedConfig::default()
        });
        for k in 0..100_000u128 {
            assert!(set.insert(k << 23));
        }
        for k in 0..100_000u128 {
            assert!(!set.insert(k << 23));
        }
        assert_eq!(set.len(), 100_000);
        let wide = VisitedSet::with_capacity(100_000);
        for k in 0..100_000u128 {
            wide.insert(k << 23);
        }
        assert!(set.live_bytes() < wide.live_bytes());
    }

    #[test]
    fn concurrent_inserts_count_each_key_once() {
        let set = VisitedSet::with_capacity(1 << 12);
        let winners: usize = pif_par::run_workers(8, |_| {
            (0..10_000u128).filter(|&k| set.insert(k * 3)).count()
        })
        .into_iter()
        .sum();
        assert_eq!(winners, 10_000, "each key must be claimed by exactly one worker");
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_key_is_rejected() {
        VisitedSet::with_capacity(0).insert(u128::MAX);
    }

    #[test]
    #[should_panic(expected = "max_key bound")]
    fn key_over_narrow_bound_is_rejected() {
        let set = VisitedSet::with_config(VisitedConfig { max_key: 1 << 40, ..VisitedConfig::default() });
        set.insert(u128::from(u64::MAX));
    }

    #[test]
    fn probe_wraparound_at_the_table_end_is_exact() {
        // Force collisions whose natural slot is the last one of the
        // minimum-sized table, so probing must wrap to slot 0 and keep
        // going; novelty and membership must survive the wraparound and
        // the subsequent growth rehash.
        let mut shard = Shard::with_capacity(0, false);
        let mask = shard.slots.len() - 1;
        let h = mask as u64; // natural slot = last slot of the table
        for key in 0..12u128 {
            assert!(!shard.contains(key, h));
            shard.insert_new(key, h, None);
        }
        for key in 0..12u128 {
            assert!(shard.contains(key, h), "lost key {key} across wraparound/growth");
        }
        assert!(!shard.contains(99, h));
        assert_eq!(shard.items, 12);
    }

    #[test]
    fn spill_freezes_runs_and_keeps_verdicts_exact() {
        // A tiny budget forces every shard to freeze repeatedly; the
        // spilled set must agree with an in-memory reference on both
        // membership (re-inserts return false) and novelty.
        let set = VisitedSet::with_config(VisitedConfig {
            max_key: 1 << 40,
            shard_count: 4,
            spill_budget: Some(4 * 16 * 16), // minimum per-shard budget
            ..VisitedConfig::default()
        });
        let keys: Vec<u128> = (0..5_000u128).map(|k| (k * k) << 7).collect();
        for (i, &k) in keys.iter().enumerate() {
            assert!(set.insert(k), "key {i} must be novel");
        }
        assert!(set.spilled_keys() > 0, "budget was sized to force spilling");
        assert!(set.run_count() > 0);
        for (i, &k) in keys.iter().enumerate() {
            assert!(!set.insert(k), "key {i} must be remembered across spill");
        }
        assert_eq!(set.len(), keys.len());
        // Novel keys interleaved with spilled ranges still insert once.
        assert!(set.insert((5_001u128 * 5_001) << 7 | 1));
        assert_eq!(set.len(), keys.len() + 1);
    }

    proptest::proptest! {
        /// Insert-then-contains across shard counts {1, 64}: any key
        /// sequence (duplicates included) must produce the same novelty
        /// verdicts and final cardinality as a reference `HashSet`,
        /// whether all keys funnel through one shard or spread over 64,
        /// and regardless of slot width.
        #[test]
        fn insert_then_contains_across_shard_counts(
            raw in proptest::collection::vec(0u64..(1 << 48), 1..400),
            narrow in proptest::any::<bool>(),
        ) {
            let keys: Vec<u128> = raw.iter().map(|&k| u128::from(k)).collect();
            let mut reference = std::collections::HashSet::new();
            let sets: Vec<VisitedSet> = [1usize, 64]
                .iter()
                .map(|&shards| VisitedSet::with_config(VisitedConfig {
                    shard_count: shards,
                    max_key: if narrow { 1 << 48 } else { u128::MAX - 1 },
                    ..VisitedConfig::default()
                }))
                .collect();
            for &k in &keys {
                let novel = reference.insert(k);
                for set in &sets {
                    proptest::prop_assert_eq!(set.insert(k), novel);
                }
            }
            for set in &sets {
                proptest::prop_assert_eq!(set.len(), reference.len());
            }
        }
    }

    #[test]
    fn spilled_wide_keys_round_trip() {
        // The u128 run path (width 16) must also freeze and probe
        // exactly: keys straddle the 64-bit boundary.
        let set = VisitedSet::with_config(VisitedConfig {
            shard_count: 1,
            spill_budget: Some(16 * 16),
            ..VisitedConfig::default()
        });
        let keys: Vec<u128> = (0..2_000u128).map(|k| k << 77 | k).collect();
        for &k in &keys {
            assert!(set.insert(k));
        }
        assert!(set.spilled_keys() > 0);
        for &k in &keys {
            assert!(!set.insert(k));
        }
        assert_eq!(set.len(), keys.len());
    }
}
