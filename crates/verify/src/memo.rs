//! Per-configuration memo of enabled-action masks and abnormality.
//!
//! Both product searches repeatedly ask two questions whose answers
//! depend only on the configuration id, not on the search overlay it is
//! paired with: *which actions are enabled at each processor* and *is
//! any processor abnormal*. A configuration id recurs many times during
//! a search — once per overlay variant it is reached with, and once per
//! transition that lands on it — so the answers are computed exactly
//! once, in a parallel pass over the id range, and stored flat:
//!
//! * `masks[cfg * n + i]` — bitmask over [`pif_daemon::ActionId`]
//!   indices of the actions enabled at processor `i` (the protocol has 7
//!   actions, so a `u8` suffices);
//! * one abnormality bit per configuration, packed into `u64` words.
//!
//! Successor states then pay **no** guard re-evaluation at all: the
//! expansion encodes the successor id incrementally and looks both
//! answers up. The memo is skipped (and the engines fall back to direct
//! guard evaluation) when the space is too large for the flat tables —
//! see [`EnabledMemo::BYTE_LIMIT`].

/// Memoized per-configuration guard evaluations. See the module docs.
#[derive(Clone)]
pub(crate) struct EnabledMemo {
    n: usize,
    masks: Vec<u8>,
    abnormal: Vec<u64>,
}

impl EnabledMemo {
    /// Upper bound on the mask table size; spaces needing more fall back
    /// to unmemoized guard evaluation. 1 GiB covers every instance the
    /// exhaustive tier targets (ring(4) is ~287 MB) with ample margin on
    /// the CI hosts.
    pub const BYTE_LIMIT: u128 = 1 << 30;

    /// Allocates zeroed tables for `total` configurations of `n`
    /// processors, or `None` if the mask table would exceed
    /// [`Self::BYTE_LIMIT`].
    pub fn allocate(total: u64, n: usize) -> Option<Self> {
        if u128::from(total) * n as u128 > Self::BYTE_LIMIT {
            return None;
        }
        let total = usize::try_from(total).ok()?;
        Some(EnabledMemo {
            n,
            masks: vec![0u8; total * n],
            abnormal: vec![0u64; total.div_ceil(64)],
        })
    }

    /// Number of configurations per parallel fill chunk. A multiple of
    /// 64 so each chunk owns whole words of the abnormality bitset.
    pub const FILL_CHUNK: usize = 1 << 12;

    /// Splits the tables into disjoint mutable chunks of
    /// [`Self::FILL_CHUNK`] configurations for the parallel fill: each
    /// entry is `(first_cfg, masks_chunk, abnormal_words_chunk)`.
    pub fn fill_chunks(&mut self) -> Vec<(u64, &mut [u8], &mut [u64])> {
        let n = self.n;
        self.masks
            .chunks_mut(Self::FILL_CHUNK * n)
            .zip(self.abnormal.chunks_mut(Self::FILL_CHUNK / 64))
            .enumerate()
            .map(|(ci, (m, a))| ((ci * Self::FILL_CHUNK) as u64, m, a))
            .collect()
    }

    /// Enabled-action masks of every processor in configuration `cfg`.
    #[inline]
    pub fn masks_of(&self, cfg: u64) -> &[u8] {
        &self.masks[cfg as usize * self.n..][..self.n]
    }

    /// Whether any processor is abnormal in configuration `cfg`.
    #[inline]
    pub fn is_abnormal(&self, cfg: u64) -> bool {
        self.abnormal[cfg as usize / 64] >> (cfg % 64) & 1 != 0
    }

    /// Bitmask of processors with at least one enabled action in `cfg`.
    #[inline]
    pub fn pending_mask(&self, cfg: u64) -> u16 {
        let mut m = 0u16;
        for (i, &mask) in self.masks_of(cfg).iter().enumerate() {
            if mask != 0 {
                m |= 1 << i;
            }
        }
        m
    }
}

impl std::fmt::Debug for EnabledMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnabledMemo")
            .field("procs", &self.n)
            .field("configs", &(self.masks.len() / self.n.max(1)))
            .finish()
    }
}
