//! Exhaustive model checking of the snap-stabilizing PIF on tiny networks.
//!
//! The paper's central claim (Definition 1) quantifies over **every**
//! initial configuration and **every** weakly fair distributed daemon.
//! Simulation-based experiments sample that space; this crate *exhausts*
//! it for small instances:
//!
//! * [`StateSpace`] enumerates the complete configuration space — every
//!   assignment of in-domain values to every register of every processor
//!   (`Pif ∈ {B,F,C}`, `Par ∈ Neig_p`, `L ∈ [1, L_max]`,
//!   `Count ∈ [1, N']`, `Fok ∈ 𝔹`).
//! * [`StateSpace::check_universal`] evaluates a predicate over *all*
//!   configurations (used for Property 1 and deadlock-freedom).
//! * [`StateSpace::check_snap_safety`] runs a breadth-first search over
//!   the **product** of the configuration space with the
//!   message-delivery overlay, branching over *every* daemon choice
//!   (every non-empty subset of enabled processors × every enabled action
//!   of each): it verifies that whenever the root's `F-action` closes a
//!   wave the root actually opened, every processor had received the
//!   message (\[PIF1\]) and acknowledged it while holding it (\[PIF2\]).
//!
//! A search that completes with zero violations is a *proof* of
//! snap-stabilization for that instance (up to the faithfulness of the
//! encoding) — and the same search run against the `leaf_guard` ablation
//! *finds* the violation, which doubles as a sensitivity check of the
//! checker itself.
//!
//! # Examples
//!
//! ```
//! use pif_core::PifProtocol;
//! use pif_graph::{generators, ProcId};
//! use pif_verify::StateSpace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::chain(2)?;
//! let protocol = PifProtocol::new(ProcId(0), &g);
//! let space = StateSpace::new(g, protocol);
//! assert_eq!(space.config_count(), 144);
//! let report = space.check_snap_safety(true);
//! assert!(report.verified());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet, VecDeque};

use pif_core::protocol::{B_ACTION, F_ACTION};
use pif_core::{Phase, PifProtocol, PifState};
use pif_daemon::{ActionId, Protocol, View};
use pif_graph::{Graph, ProcId};

/// Error raised when an instance is outside what exhaustive checking can
/// handle, or when a query refers to states outside the register domains.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The network has more processors than the overlay bitmaps support.
    NetworkTooLarge {
        /// Processors in the offending network.
        n: usize,
        /// The checker's hard limit.
        max: usize,
    },
    /// The configuration count exceeds the exhaustive-search budget.
    SpaceTooLarge {
        /// Base-2 logarithm of the configuration-count limit.
        limit_log2: u32,
    },
    /// A queried state lies outside its processor's register domain.
    OutOfDomain {
        /// The processor whose domain is violated.
        proc: ProcId,
        /// The offending state.
        state: PifState,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::NetworkTooLarge { n, max } => {
                write!(f, "model checking is for tiny networks: {n} processors exceeds {max}")
            }
            VerifyError::SpaceTooLarge { limit_log2 } => {
                write!(f, "configuration space exceeds 2^{limit_log2}; too large for exhaustive checking")
            }
            VerifyError::OutOfDomain { proc, state } => {
                write!(f, "state {state} out of domain for processor {proc}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The complete configuration space of one protocol instance on one
/// (tiny) network.
#[derive(Clone, Debug)]
pub struct StateSpace {
    graph: Graph,
    protocol: PifProtocol,
    /// Per-processor register domains.
    domains: Vec<Vec<PifState>>,
    /// Mixed-radix strides for encoding a configuration as a `u64`.
    strides: Vec<u64>,
    /// Reverse lookup: per-processor state → domain index.
    index: Vec<HashMap<PifState, u32>>,
    total: u64,
}

/// The result of an exhaustive Theorem 1 round-bound search
/// ([`StateSpace::check_correction_bound`]).
#[derive(Clone, Debug)]
pub struct CorrectionBoundReport {
    /// The round bound checked (the paper's `3·L_max + 3`).
    pub bound: u32,
    /// Product states explored.
    pub states_explored: u64,
    /// Configurations still abnormal after `bound` completed rounds
    /// (empty = the theorem's bound is verified on this instance).
    pub violations: Vec<Vec<PifState>>,
}

impl CorrectionBoundReport {
    /// Whether the bound held on every path from every configuration.
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A violation found by [`StateSpace::check_snap_safety`].
#[derive(Clone, Debug)]
pub struct SnapViolation {
    /// The configuration in which the root's `F-action` closed the wave.
    pub configuration: Vec<PifState>,
    /// Which processors had not received the message.
    pub not_received: Vec<ProcId>,
    /// Which processors had not acknowledged while holding it.
    pub not_acked: Vec<ProcId>,
}

/// The result of an exhaustive snap-safety search.
#[derive(Clone, Debug)]
pub struct SnapSafetyReport {
    /// Product states explored.
    pub states_explored: u64,
    /// Transitions taken.
    pub transitions: u64,
    /// Violations found (empty = verified).
    pub violations: Vec<SnapViolation>,
    /// Whether acknowledgments (\[PIF2\]) were tracked in addition to
    /// deliveries (\[PIF1\]).
    pub acks_tracked: bool,
}

impl SnapSafetyReport {
    /// Whether the instance was verified snap-safe.
    pub fn verified(&self) -> bool {
        self.violations.is_empty()
    }
}

impl StateSpace {
    /// Builds the state space.
    ///
    /// # Panics
    ///
    /// Panics if the configuration count exceeds `2^40` or the network
    /// has more than 16 processors (the overlay bitmaps are `u16`); this
    /// checker is for `N ≤ 4`-ish instances. [`StateSpace::try_new`]
    /// reports the same conditions as a [`VerifyError`] instead.
    pub fn new(graph: Graph, protocol: PifProtocol) -> Self {
        Self::try_new(graph, protocol).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the state space, reporting an oversized instance as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`VerifyError::NetworkTooLarge`] for more than 16 processors (the
    /// search overlays are `u16` bitmaps), [`VerifyError::SpaceTooLarge`]
    /// when the configuration count would exceed `2^40`.
    pub fn try_new(graph: Graph, protocol: PifProtocol) -> Result<Self, VerifyError> {
        const MAX_PROCS: usize = 16;
        const LIMIT_LOG2: u32 = 40;
        if graph.len() > MAX_PROCS {
            return Err(VerifyError::NetworkTooLarge { n: graph.len(), max: MAX_PROCS });
        }
        let mut domains = Vec::with_capacity(graph.len());
        for p in graph.procs() {
            domains.push(Self::domain_of(&graph, &protocol, p));
        }
        let mut strides = vec![0u64; graph.len()];
        let mut total = 1u64;
        for (i, d) in domains.iter().enumerate() {
            strides[i] = total;
            total = total
                .checked_mul(d.len() as u64)
                .filter(|&t| t < (1 << LIMIT_LOG2))
                .ok_or(VerifyError::SpaceTooLarge { limit_log2: LIMIT_LOG2 })?;
        }
        let index = domains
            .iter()
            .map(|d| d.iter().enumerate().map(|(i, s)| (*s, i as u32)).collect())
            .collect();
        Ok(StateSpace { graph, protocol, domains, strides, index, total })
    }

    /// All in-domain register states of processor `p`.
    fn domain_of(graph: &Graph, protocol: &PifProtocol, p: ProcId) -> Vec<PifState> {
        let mut out = Vec::new();
        let is_root = p == protocol.root();
        let pars: Vec<ProcId> = if is_root {
            // Par_r and L_r are program constants; one canonical value.
            vec![graph.neighbors(p).next().unwrap_or(p)]
        } else {
            graph.neighbors(p).collect()
        };
        let levels: Vec<u16> = if is_root { vec![1] } else { (1..=protocol.l_max()).collect() };
        for phase in Phase::ALL {
            for &par in &pars {
                for &level in &levels {
                    for count in 1..=protocol.n_prime() {
                        for fok in [false, true] {
                            out.push(PifState { phase, par, level, count, fok });
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of distinct configurations.
    pub fn config_count(&self) -> u64 {
        self.total
    }

    /// The network under verification.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol instance under verification.
    pub fn protocol(&self) -> &PifProtocol {
        &self.protocol
    }

    /// Decodes a configuration id into register states.
    pub fn decode(&self, id: u64) -> Vec<PifState> {
        let mut out = Vec::with_capacity(self.domains.len());
        self.decode_into(id, &mut out);
        out
    }

    /// Decodes into a caller-owned buffer — the search loops decode one
    /// configuration per dequeued product state, and reusing the buffer
    /// keeps them allocation-free after warmup.
    fn decode_into(&self, mut id: u64, out: &mut Vec<PifState>) {
        out.clear();
        for d in &self.domains {
            let i = (id % d.len() as u64) as usize;
            id /= d.len() as u64;
            out.push(d[i]);
        }
    }

    /// Encodes register states into a configuration id.
    ///
    /// # Panics
    ///
    /// Panics if any state is outside its processor's domain;
    /// [`StateSpace::try_encode`] reports that as a typed error instead.
    pub fn encode(&self, states: &[PifState]) -> u64 {
        self.try_encode(states).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Encodes register states into a configuration id, reporting
    /// out-of-domain states as a typed error.
    ///
    /// # Errors
    ///
    /// [`VerifyError::OutOfDomain`] naming the first offending processor.
    pub fn try_encode(&self, states: &[PifState]) -> Result<u64, VerifyError> {
        let mut id = 0u64;
        for (i, s) in states.iter().enumerate() {
            let di = *self.index[i].get(s).ok_or(VerifyError::OutOfDomain {
                proc: ProcId::from_index(i),
                state: *s,
            })?;
            id += u64::from(di) * self.strides[i];
        }
        Ok(id)
    }

    /// Enabled actions of every processor in `states`, filled into a
    /// caller-owned buffer whose inner vectors are reused across calls.
    fn enabled_into(&self, states: &[PifState], out: &mut Vec<Vec<ActionId>>) {
        out.resize_with(self.graph.len(), Vec::new);
        for (i, p) in self.graph.procs().enumerate() {
            out[i].clear();
            self.protocol.enabled_actions(View::new(&self.graph, states, p), &mut out[i]);
        }
    }

    /// Evaluates `predicate` over **every** configuration, returning the
    /// first violating configuration (decoded) if any.
    pub fn check_universal<F>(&self, predicate: F) -> Option<Vec<PifState>>
    where
        F: Fn(&PifProtocol, &Graph, &[PifState]) -> bool,
    {
        for id in 0..self.total {
            let states = self.decode(id);
            if !predicate(&self.protocol, &self.graph, &states) {
                return Some(states);
            }
        }
        None
    }

    /// Verifies that **no** configuration is terminal: in every
    /// configuration some action is enabled, so the PIF scheme can never
    /// seize up. Returns the first deadlocked configuration if one
    /// exists.
    pub fn check_no_deadlock(&self) -> Option<Vec<PifState>> {
        self.check_universal(|proto, graph, states| {
            let mut buf = Vec::new();
            graph.procs().any(|p| {
                buf.clear();
                proto.enabled_actions(View::new(graph, states, p), &mut buf);
                !buf.is_empty()
            })
        })
    }


    /// Exhaustively verifies Theorem 1's round bound: from **every**
    /// configuration, under **every** daemon choice, all processors are
    /// normal within `bound` rounds (Dolev-Israeli-Moran accounting,
    /// tracked per path via the pending set of round-owing processors).
    ///
    /// Executions that stall rounds forever (unfair daemons) never
    /// complete rounds and therefore cannot witness a violation — which
    /// matches the theorem's quantification over weakly fair daemons: any
    /// *fair* execution exceeding the bound has a finite prefix that this
    /// search reaches.
    pub fn check_correction_bound(&self, bound: u32) -> CorrectionBoundReport {
        assert!(bound < 128, "round bound must fit the packed encoding");
        let n = self.graph.len();
        let pack = |cfg: u64, pending: u16, rounds: u32| -> u128 {
            (u128::from(cfg) << 23) | (u128::from(pending) << 7) | u128::from(rounds)
        };
        let abnormal = |states: &[PifState]| {
            self.graph
                .procs()
                .any(|p| !self.protocol.normal(View::new(&self.graph, states, p)))
        };
        let enabled_mask = |enabled: &[Vec<ActionId>]| -> u16 {
            enabled
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.is_empty())
                .fold(0u16, |m, (i, _)| m | (1 << i))
        };

        let mut seen: HashSet<u128> = HashSet::new();
        let mut queue: VecDeque<(u64, u16, u32)> = VecDeque::new();
        let mut violations: Vec<Vec<PifState>> = Vec::new();
        let mut states_explored = 0u64;

        // Scratch reused across the whole search: one decode / enabled
        // evaluation / successor per iteration, zero steady-state allocs.
        let mut states: Vec<PifState> = Vec::with_capacity(n);
        let mut next: Vec<PifState> = Vec::with_capacity(n);
        let mut enabled: Vec<Vec<ActionId>> = Vec::new();
        let mut next_enabled_buf: Vec<Vec<ActionId>> = Vec::new();
        let mut procs: Vec<usize> = Vec::with_capacity(n);
        let mut option_counts: Vec<usize> = Vec::with_capacity(n);
        let mut selection: Vec<(usize, ActionId)> = Vec::with_capacity(n);

        for cfg in 0..self.total {
            self.decode_into(cfg, &mut states);
            if !abnormal(&states) {
                continue; // already normal: nothing to verify
            }
            self.enabled_into(&states, &mut enabled);
            let pending = enabled_mask(&enabled);
            if seen.insert(pack(cfg, pending, 0)) {
                queue.push_back((cfg, pending, 0));
            }
        }

        while let Some((cfg, pending, rounds)) = queue.pop_front() {
            states_explored += 1;
            self.decode_into(cfg, &mut states);
            self.enabled_into(&states, &mut enabled);
            procs.clear();
            procs.extend((0..n).filter(|&i| !enabled[i].is_empty()));
            if procs.is_empty() {
                continue; // deadlock (reported by check_no_deadlock)
            }
            option_counts.clear();
            option_counts.extend(procs.iter().map(|&i| enabled[i].len() + 1));
            let combos: usize = option_counts.iter().product();
            for combo in 1..combos {
                let mut c = combo;
                selection.clear();
                for (k, &i) in procs.iter().enumerate() {
                    let choice = c % option_counts[k];
                    c /= option_counts[k];
                    if choice > 0 {
                        selection.push((i, enabled[i][choice - 1]));
                    }
                }
                next.clear();
                next.extend_from_slice(&states);
                for &(i, a) in &selection {
                    next[i] = self.protocol.execute(
                        View::new(&self.graph, &states, ProcId::from_index(i)),
                        a,
                    );
                }
                if !abnormal(&next) {
                    continue; // goal reached on this branch
                }
                self.enabled_into(&next, &mut next_enabled_buf);
                let next_enabled = enabled_mask(&next_enabled_buf);
                // Round accounting: executed and now-disabled processors
                // leave the pending set.
                let mut pending2 = pending;
                for &(i, _) in &selection {
                    pending2 &= !(1 << i);
                }
                pending2 &= next_enabled;
                let mut rounds2 = rounds;
                if pending2 == 0 {
                    rounds2 += 1;
                    if rounds2 >= bound {
                        // `bound` rounds completed with abnormal
                        // processors remaining: Theorem 1 violated here.
                        if violations.len() < 8 {
                            violations.push(next.clone());
                        }
                        continue;
                    }
                    pending2 = next_enabled;
                }
                let cfg2 = self.encode(&next);
                if seen.insert(pack(cfg2, pending2, rounds2)) {
                    queue.push_back((cfg2, pending2, rounds2));
                }
            }
        }

        CorrectionBoundReport { bound, states_explored, violations }
    }

    /// Exhaustive snap-safety search over the product of the
    /// configuration space with the delivery overlay, branching over
    /// every daemon choice. See the crate docs.
    pub fn check_snap_safety(&self, track_acks: bool) -> SnapSafetyReport {
        let n = self.graph.len();
        let root = self.protocol.root();
        let pack = |cfg: u64, has: u16, ack: u16, active: bool| -> u128 {
            (u128::from(cfg) << 33)
                | (u128::from(has) << 17)
                | (u128::from(ack) << 1)
                | u128::from(active)
        };

        let mut seen: HashSet<u128> = HashSet::new();
        let mut queue: VecDeque<(u64, u16, u16, bool)> = VecDeque::new();
        // Every configuration is a legitimate starting point, with an
        // empty overlay (no wave opened yet).
        for cfg in 0..self.total {
            seen.insert(pack(cfg, 0, 0, false));
            queue.push_back((cfg, 0, 0, false));
        }

        let mut transitions = 0u64;
        let mut violations: Vec<SnapViolation> = Vec::new();

        // Scratch reused across the whole search (see
        // `check_correction_bound`).
        let mut states: Vec<PifState> = Vec::with_capacity(n);
        let mut next: Vec<PifState> = Vec::with_capacity(n);
        let mut enabled: Vec<Vec<ActionId>> = Vec::new();
        let mut procs: Vec<usize> = Vec::with_capacity(n);
        let mut option_counts: Vec<usize> = Vec::with_capacity(n);
        let mut selection: Vec<(usize, ActionId)> = Vec::with_capacity(n);

        while let Some((cfg, has, ack, active)) = queue.pop_front() {
            self.decode_into(cfg, &mut states);
            self.enabled_into(&states, &mut enabled);
            procs.clear();
            procs.extend((0..n).filter(|&i| !enabled[i].is_empty()));
            if procs.is_empty() {
                continue; // terminal (reported by check_no_deadlock)
            }
            // Every daemon choice: each enabled processor independently
            // skips or executes one of its enabled actions; all-skip is
            // excluded (combo 0).
            option_counts.clear();
            option_counts.extend(procs.iter().map(|&i| enabled[i].len() + 1));
            let combos: usize = option_counts.iter().product();
            for combo in 1..combos {
                let mut c = combo;
                selection.clear();
                for (k, &i) in procs.iter().enumerate() {
                    let choice = c % option_counts[k];
                    c /= option_counts[k];
                    if choice > 0 {
                        selection.push((i, enabled[i][choice - 1]));
                    }
                }
                transitions += 1;

                // Apply simultaneously against the old configuration.
                next.clear();
                next.extend_from_slice(&states);
                for &(i, a) in &selection {
                    next[i] = self.protocol.execute(
                        View::new(&self.graph, &states, ProcId::from_index(i)),
                        a,
                    );
                }

                // Overlay update (same semantics as pif_core::wave).
                let mut has2 = has;
                let mut ack2 = ack;
                let mut active2 = active;
                if selection.iter().any(|&(i, a)| i == root.index() && a == B_ACTION) {
                    has2 = 1 << root.index();
                    ack2 = 0;
                    active2 = true;
                }
                for &(i, a) in &selection {
                    if i == root.index() {
                        continue;
                    }
                    match a {
                        B_ACTION => {
                            let par = next[i].par.index();
                            if has2 & (1 << par) != 0 {
                                has2 |= 1 << i;
                            } else {
                                has2 &= !(1 << i);
                            }
                            ack2 &= !(1 << i);
                        }
                        F_ACTION
                            if has2 & (1 << i) != 0 => {
                                ack2 |= 1 << i;
                            }
                        _ => {}
                    }
                }
                if active2
                    && selection.iter().any(|&(i, a)| i == root.index() && a == F_ACTION)
                {
                    let all = (1u16 << n) - 1;
                    let all_have = has2 == all;
                    let all_acked = !track_acks || (ack2 | (1 << root.index())) == all;
                    if !(all_have && all_acked) && violations.len() < 8 {
                        violations.push(SnapViolation {
                            configuration: states.clone(),
                            not_received: (0..n)
                                .filter(|&i| has2 & (1 << i) == 0)
                                .map(ProcId::from_index)
                                .collect(),
                            not_acked: (0..n)
                                .filter(|&i| i != root.index() && ack2 & (1 << i) == 0)
                                .map(ProcId::from_index)
                                .collect(),
                        });
                    }
                    active2 = false;
                    has2 = 0;
                    ack2 = 0;
                }

                let cfg2 = self.encode(&next);
                if !track_acks {
                    ack2 = 0;
                }
                if seen.insert(pack(cfg2, has2, ack2, active2)) {
                    queue.push_back((cfg2, has2, ack2, active2));
                }
            }
        }

        SnapSafetyReport {
            states_explored: seen.len() as u64,
            transitions,
            violations,
            acks_tracked: track_acks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_core::Features;
    use pif_graph::generators;

    fn space(n: usize) -> StateSpace {
        let g = generators::chain(n).unwrap();
        let p = PifProtocol::new(ProcId(0), &g);
        StateSpace::new(g, p)
    }

    #[test]
    fn domain_sizes_are_exact() {
        let s = space(3);
        // root: 3 phases × 3 counts × 2 fok = 18;
        // p1: 3 × 2 par × 2 levels × 3 counts × 2 = 72;
        // p2: 3 × 1 par × 2 levels × 3 counts × 2 = 36.
        assert_eq!(s.config_count(), 18 * 72 * 36);
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = space(3);
        for id in [0u64, 1, 17, 999, s.config_count() - 1] {
            let states = s.decode(id);
            assert_eq!(s.encode(&states), id);
        }
    }

    #[test]
    fn oversized_instances_are_typed_errors() {
        let g = generators::ring(20).unwrap();
        let p = PifProtocol::new(ProcId(0), &g);
        let err = StateSpace::try_new(g, p).unwrap_err();
        assert_eq!(err, VerifyError::NetworkTooLarge { n: 20, max: 16 });
        // Within the processor cap but over the configuration budget.
        let g = generators::complete(12).unwrap();
        let p = PifProtocol::new(ProcId(0), &g);
        let err = StateSpace::try_new(g, p).unwrap_err();
        assert!(matches!(err, VerifyError::SpaceTooLarge { .. }), "{err}");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn out_of_domain_encode_is_a_typed_error() {
        let s = space(3);
        // p1's level domain is [1, l_max]; level 0 is physically impossible.
        let mut states = s.decode(0);
        states[1].level = 0;
        let err = s.try_encode(&states).unwrap_err();
        assert!(matches!(err, VerifyError::OutOfDomain { proc: ProcId(1), .. }), "{err}");
    }

    #[test]
    fn no_configuration_deadlocks_chain3() {
        let s = space(3);
        assert_eq!(s.check_no_deadlock(), None, "found a terminal configuration");
    }

    #[test]
    fn property1_universal_chain3() {
        let s = space(3);
        let witness = s.check_universal(|proto, g, states| {
            pif_core::analysis::property1_holds(proto, g, states)
        });
        assert_eq!(witness, None);
    }

    #[test]
    fn snap_safety_exhaustive_chain2() {
        let s = space(2);
        let report = s.check_snap_safety(true);
        assert!(report.verified(), "violations: {:#?}", report.violations);
        assert!(report.states_explored >= s.config_count());
        assert!(report.acks_tracked);
    }

    #[test]
    fn checker_finds_the_leaf_guard_bug() {
        // Sensitivity: the same exhaustive search against the leaf-guard
        // ablation must FIND a snap violation on chain(3).
        let g = generators::chain(3).unwrap();
        let p = PifProtocol::new(ProcId(0), &g)
            .with_features(Features { leaf_guard: false, ..Features::paper() });
        let s = StateSpace::new(g, p);
        let report = s.check_snap_safety(false);
        assert!(!report.verified(), "the ablated protocol must have a reachable violation");
        assert!(!report.violations[0].not_received.is_empty());
    }

    #[test]
    fn theorem1_bound_exhaustive_chain2() {
        let s = space(2);
        // L_max = 1 → bound 6.
        let report = s.check_correction_bound(6);
        assert!(report.verified(), "violations: {:#?}", report.violations);
        assert!(report.states_explored > 0);
    }

    #[test]
    fn theorem1_impossible_bound_is_refuted() {
        // Sensitivity: a bound of 0 rounds must be refuted (corrupted
        // configurations need at least one round to correct).
        let s = space(2);
        let report = s.check_correction_bound(0);
        assert!(!report.verified(), "a zero-round bound cannot hold");
    }

    #[test]
    #[ignore = "full product space of chain(3); run with --ignored in release"]
    fn theorem1_bound_exhaustive_chain3() {
        let s = space(3);
        // L_max = 2 → bound 9.
        let report = s.check_correction_bound(9);
        assert!(report.verified(), "violations: {:#?}", report.violations);
    }

    #[test]
    #[ignore = "full product space of chain(3); run with --ignored in release"]
    fn snap_safety_exhaustive_chain3() {
        let s = space(3);
        let report = s.check_snap_safety(true);
        assert!(report.verified(), "violations: {:#?}", report.violations);
    }
}
