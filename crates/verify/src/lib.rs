//! Exhaustive model checking of the snap-stabilizing PIF on tiny networks.
//!
//! The paper's central claim (Definition 1) quantifies over **every**
//! initial configuration and **every** weakly fair distributed daemon.
//! Simulation-based experiments sample that space; this crate *exhausts*
//! it for small instances:
//!
//! * [`StateSpace`] enumerates the complete configuration space — every
//!   assignment of in-domain values to every register of every processor
//!   (`Pif ∈ {B,F,C}`, `Par ∈ Neig_p`, `L ∈ [1, L_max]`,
//!   `Count ∈ [1, N']`, `Fok ∈ 𝔹`).
//! * [`StateSpace::check_universal`] evaluates a predicate over *all*
//!   configurations (used for Property 1 and deadlock-freedom).
//! * [`StateSpace::check_snap_safety`] runs a breadth-first search over
//!   the **product** of the configuration space with the
//!   message-delivery overlay, branching over *every* daemon choice
//!   (every non-empty subset of enabled processors × every enabled action
//!   of each): it verifies that whenever the root's `F-action` closes a
//!   wave the root actually opened, every processor had received the
//!   message (\[PIF1\]) and acknowledged it while holding it (\[PIF2\]).
//!
//! A search that completes with zero violations is a *proof* of
//! snap-stabilization for that instance (up to the faithfulness of the
//! encoding) — and the same search run against the `leaf_guard` ablation
//! *finds* the violation, which doubles as a sensitivity check of the
//! checker itself.
//!
//! # Execution engines
//!
//! Every check runs under a [`Checker`]: [`Checker::sequential`] is the
//! classic single-threaded FIFO search, [`Checker::with_workers`] the
//! frontier-level parallel engine (scoped worker threads — see the
//! [`frontier`] module and `DESIGN.md` §11); both deduplicate through
//! the sharded [`visited`] table. The engines share the same expansion
//! core and produce **bit-identical reports** — same `states_explored`,
//! same verdicts, same retained violation examples — because the
//! visited-set closure of a breadth-first search is independent of
//! expansion order and violations are canonically sorted. The
//! convenience methods on [`StateSpace`] delegate to [`Checker::auto`].
//!
//! # Reductions
//!
//! [`Checker::with_reduction`] layers up to three state-space reductions
//! over any engine (`DESIGN.md` §16): an interference-guided
//! partial-order reduction (connected daemon selections only — sound
//! because PIF's proven-complete interference relation is
//! neighborhood-local), a symmetry quotient under root-fixing graph
//! automorphisms (canonical orbit representatives before the visited
//! lookup), and the compressed/spillable visited tiers configured
//! through [`Checker::with_spill_budget`]. Reduced runs explore fewer
//! product states but return **bit-identical reports**: a reduced
//! search that finds any violation re-runs the exhaustive reference
//! engine and returns its report verbatim, so verdicts, violation
//! counts and retained examples never depend on the reduction — see
//! [`Reduction`].
//!
//! For instances whose full product space is out of reach (n = 5 and
//! beyond), [`StateSpace::check_snap_wave`] verifies \[PIF1\]/\[PIF2\]
//! over every daemon interleaving reachable from the paper's *normal
//! starting configuration* — the same safety property restricted to the
//! wave region the protocol actually operates in, which stays tractable
//! where the any-configuration product search does not.
//!
//! # Examples
//!
//! ```
//! use pif_core::PifProtocol;
//! use pif_graph::{generators, ProcId};
//! use pif_verify::StateSpace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::chain(2)?;
//! let protocol = PifProtocol::new(ProcId(0), &g);
//! let space = StateSpace::new(g, protocol);
//! assert_eq!(space.config_count(), 144);
//! let report = space.check_snap_safety(true);
//! assert!(report.verified());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frontier;
mod memo;
mod por;
mod symmetry;
pub mod visited;

use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

use memo::EnabledMemo;
use pif_core::protocol::{B_ACTION, B_CORRECTION, F_ACTION, F_CORRECTION};
use pif_core::{Phase, PifProtocol, PifState};
use pif_daemon::{ActionId, Protocol, View};
use pif_graph::{automorphism, Graph, ProcId};
use por::PorCtx;
use symmetry::Quotient;
use visited::{VisitedConfig, VisitedSet};

/// Guard-mask bits of the two correction actions. A processor enables a
/// correction action iff it is abnormal (the root's `B-correction` guard
/// is `¬Normal`; a non-root abnormal processor holds phase `B` or `F` and
/// enables `B-correction` or `F-correction` respectively; a non-root
/// processor in phase `C` is always normal), so `mask & CORRECTION_BITS`
/// decides abnormality without a second guard evaluation.
const CORRECTION_BITS: u8 = (1 << B_CORRECTION.0) | (1 << F_CORRECTION.0);

/// Error raised when an instance is outside what exhaustive checking can
/// handle, or when a query refers to states outside the register domains.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The network has more processors than the overlay bitmaps support.
    NetworkTooLarge {
        /// Processors in the offending network.
        n: usize,
        /// The checker's hard limit.
        max: usize,
    },
    /// The configuration count exceeds the exhaustive-search budget.
    SpaceTooLarge {
        /// Base-2 logarithm of the configuration-count limit.
        limit_log2: u32,
    },
    /// A queried state lies outside its processor's register domain.
    OutOfDomain {
        /// The processor whose domain is violated.
        proc: ProcId,
        /// The offending state.
        state: PifState,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::NetworkTooLarge { n, max } => {
                write!(f, "model checking is for tiny networks: {n} processors exceeds {max}")
            }
            VerifyError::SpaceTooLarge { limit_log2 } => {
                write!(f, "configuration space exceeds 2^{limit_log2}; too large for exhaustive checking")
            }
            VerifyError::OutOfDomain { proc, state } => {
                write!(f, "state {state} out of domain for processor {proc}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Arithmetic description of one processor's register domain, mirroring
/// the nested enumeration order of `StateSpace::domain_of`: phase
/// (outermost) → parent → level → count → fok (innermost). Gives the
/// search hot loops an O(1) state → domain-index function with no hash
/// lookups.
#[derive(Clone, Debug)]
struct DomainShape {
    /// Position of each potential parent in the enumeration, by
    /// processor index; `u8::MAX` marks non-neighbors.
    par_pos: [u8; StateSpace::MAX_PROCS],
    par_count: u32,
    level_count: u32,
    count_count: u32,
}

impl DomainShape {
    #[inline]
    fn index_of(&self, s: &PifState) -> u32 {
        let phase = match s.phase {
            Phase::B => 0u32,
            Phase::F => 1,
            Phase::C => 2,
        };
        let par = u32::from(self.par_pos[s.par.index()]);
        debug_assert_ne!(par, u32::from(u8::MAX), "parent {} not in domain", s.par);
        (((phase * self.par_count + par) * self.level_count + u32::from(s.level) - 1)
            * self.count_count
            + s.count
            - 1)
            * 2
            + u32::from(s.fok)
    }
}

/// The complete configuration space of one protocol instance on one
/// (tiny) network.
#[derive(Clone, Debug)]
pub struct StateSpace {
    graph: Graph,
    protocol: PifProtocol,
    /// Per-processor register domains.
    domains: Vec<Vec<PifState>>,
    /// Mixed-radix strides for encoding a configuration as a `u64`.
    strides: Vec<u64>,
    /// Reverse lookup: per-processor state → domain index. Used by the
    /// fallible [`StateSpace::try_encode`]; the search hot loops use the
    /// arithmetic [`DomainShape`] instead.
    index: Vec<HashMap<PifState, u32>>,
    /// Arithmetic state → domain-index functions, one per processor.
    shapes: Vec<DomainShape>,
    total: u64,
    /// Lazily built, shared per-configuration guard memo (`None` inside
    /// once built if the space exceeds the memo budget).
    memo: OnceLock<Option<EnabledMemo>>,
}

/// The result of an exhaustive Theorem 1 round-bound search
/// ([`StateSpace::check_correction_bound`]).
#[derive(Clone, Debug)]
pub struct CorrectionBoundReport {
    /// The round bound checked (the paper's `3·L_max + 3`).
    pub bound: u32,
    /// Product states explored.
    pub states_explored: u64,
    /// Total number of violating transitions encountered (configurations
    /// still abnormal after `bound` completed rounds). Zero = the
    /// theorem's bound is verified on this instance.
    pub violation_count: u64,
    /// Retained violating configurations: the (at most)
    /// [`Self::MAX_RETAINED_VIOLATIONS`] examples with the smallest
    /// configuration ids, sorted ascending — a canonical, deterministic
    /// sample of [`Self::violation_count`] total violations.
    pub violations: Vec<Vec<PifState>>,
}

impl CorrectionBoundReport {
    /// Maximum number of violating configurations retained as examples;
    /// [`Self::violation_count`] reports the true total.
    pub const MAX_RETAINED_VIOLATIONS: usize = 8;

    /// Whether the bound held on every path from every configuration.
    pub fn verified(&self) -> bool {
        self.violation_count == 0
    }
}

/// A violation found by [`StateSpace::check_snap_safety`].
#[derive(Clone, Debug)]
pub struct SnapViolation {
    /// The configuration in which the root's `F-action` closed the wave.
    pub configuration: Vec<PifState>,
    /// Which processors had not received the message.
    pub not_received: Vec<ProcId>,
    /// Which processors had not acknowledged while holding it.
    pub not_acked: Vec<ProcId>,
}

/// The result of an exhaustive snap-safety search.
#[derive(Clone, Debug)]
pub struct SnapSafetyReport {
    /// Product states explored.
    pub states_explored: u64,
    /// Transitions taken.
    pub transitions: u64,
    /// Total number of wave closures that violated \[PIF1\]/\[PIF2\].
    /// Zero = verified.
    pub violation_count: u64,
    /// Retained violations: the (at most)
    /// [`Self::MAX_RETAINED_VIOLATIONS`] examples with the smallest
    /// (configuration, overlay) keys, sorted ascending — a canonical,
    /// deterministic sample of [`Self::violation_count`] total.
    pub violations: Vec<SnapViolation>,
    /// Whether acknowledgments (\[PIF2\]) were tracked in addition to
    /// deliveries (\[PIF1\]).
    pub acks_tracked: bool,
}

impl SnapSafetyReport {
    /// Maximum number of violations retained as examples;
    /// [`Self::violation_count`] reports the true total.
    pub const MAX_RETAINED_VIOLATIONS: usize = 8;

    /// Whether the instance was verified snap-safe.
    pub fn verified(&self) -> bool {
        self.violation_count == 0
    }
}

impl StateSpace {
    /// Hard processor-count limit (the search overlays are `u16`
    /// bitmaps).
    const MAX_PROCS: usize = 16;

    /// Builds the state space.
    ///
    /// # Panics
    ///
    /// Panics if the configuration count exceeds `2^50` or the network
    /// has more than 16 processors (the overlay bitmaps are `u16`).
    /// [`StateSpace::try_new`] reports the same conditions as a
    /// [`VerifyError`] instead.
    pub fn new(graph: Graph, protocol: PifProtocol) -> Self {
        Self::try_new(graph, protocol).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the state space, reporting an oversized instance as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`VerifyError::NetworkTooLarge`] for more than 16 processors (the
    /// search overlays are `u16` bitmaps), [`VerifyError::SpaceTooLarge`]
    /// when the configuration count would exceed `2^50` — a bound the
    /// *product* searches cannot exhaust, but the reachable-region wave
    /// search ([`StateSpace::check_snap_wave`]) and the universal scans
    /// do not need to; the packed search keys still fit `u128` with
    /// room to spare (`50 + 33` bits).
    pub fn try_new(graph: Graph, protocol: PifProtocol) -> Result<Self, VerifyError> {
        const LIMIT_LOG2: u32 = 50;
        if graph.len() > Self::MAX_PROCS {
            return Err(VerifyError::NetworkTooLarge { n: graph.len(), max: Self::MAX_PROCS });
        }
        let mut domains = Vec::with_capacity(graph.len());
        let mut shapes = Vec::with_capacity(graph.len());
        for p in graph.procs() {
            let (domain, shape) = Self::domain_of(&graph, &protocol, p);
            domains.push(domain);
            shapes.push(shape);
        }
        let mut strides = vec![0u64; graph.len()];
        let mut total = 1u64;
        for (i, d) in domains.iter().enumerate() {
            strides[i] = total;
            total = total
                .checked_mul(d.len() as u64)
                .filter(|&t| t < (1 << LIMIT_LOG2))
                .ok_or(VerifyError::SpaceTooLarge { limit_log2: LIMIT_LOG2 })?;
        }
        let index = domains
            .iter()
            .map(|d| d.iter().enumerate().map(|(i, s)| (*s, i as u32)).collect())
            .collect();
        Ok(StateSpace {
            graph,
            protocol,
            domains,
            strides,
            index,
            shapes,
            total,
            memo: OnceLock::new(),
        })
    }

    /// All in-domain register states of processor `p`, plus the
    /// arithmetic shape of that enumeration.
    fn domain_of(graph: &Graph, protocol: &PifProtocol, p: ProcId) -> (Vec<PifState>, DomainShape) {
        let mut out = Vec::new();
        let is_root = p == protocol.root();
        let pars: Vec<ProcId> = if is_root {
            // Par_r and L_r are program constants; one canonical value.
            vec![graph.neighbors(p).next().unwrap_or(p)]
        } else {
            graph.neighbors(p).collect()
        };
        let levels: Vec<u16> = if is_root { vec![1] } else { (1..=protocol.l_max()).collect() };
        for phase in Phase::ALL {
            for &par in &pars {
                for &level in &levels {
                    for count in 1..=protocol.n_prime() {
                        for fok in [false, true] {
                            out.push(PifState { phase, par, level, count, fok });
                        }
                    }
                }
            }
        }
        let mut par_pos = [u8::MAX; Self::MAX_PROCS];
        for (k, par) in pars.iter().enumerate() {
            par_pos[par.index()] = k as u8;
        }
        let shape = DomainShape {
            par_pos,
            par_count: pars.len() as u32,
            level_count: levels.len() as u32,
            count_count: protocol.n_prime(),
        };
        (out, shape)
    }

    /// Number of distinct configurations.
    pub fn config_count(&self) -> u64 {
        self.total
    }

    /// The network under verification.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol instance under verification.
    pub fn protocol(&self) -> &PifProtocol {
        &self.protocol
    }

    /// All in-domain register states of processor `p`, in enumeration
    /// order. `pif-analyze` iterates these to build its small-domain view
    /// enumeration, so the analyzer and the exhaustive checker agree on
    /// what "the domain" is by construction.
    pub fn proc_domain(&self, p: ProcId) -> &[PifState] {
        &self.domains[p.index()]
    }

    /// Decodes a configuration id into register states.
    pub fn decode(&self, id: u64) -> Vec<PifState> {
        let mut out = Vec::with_capacity(self.domains.len());
        self.decode_into(id, &mut out);
        out
    }

    /// Decodes into a caller-owned buffer — the search loops decode one
    /// configuration per dequeued product state, and reusing the buffer
    /// keeps them allocation-free after warmup.
    fn decode_into(&self, mut id: u64, out: &mut Vec<PifState>) {
        out.clear();
        for d in &self.domains {
            let i = (id % d.len() as u64) as usize;
            id /= d.len() as u64;
            out.push(d[i]);
        }
    }

    /// Decodes into caller-owned state *and* domain-index buffers; the
    /// per-processor indices feed the incremental successor encoding in
    /// the search hot loops.
    fn decode_indices_into(&self, mut id: u64, out: &mut Vec<PifState>, idxs: &mut Vec<u32>) {
        out.clear();
        idxs.clear();
        for d in &self.domains {
            let i = (id % d.len() as u64) as usize;
            id /= d.len() as u64;
            out.push(d[i]);
            idxs.push(i as u32);
        }
    }

    /// Encodes register states into a configuration id.
    ///
    /// # Panics
    ///
    /// Panics if any state is outside its processor's domain;
    /// [`StateSpace::try_encode`] reports that as a typed error instead.
    pub fn encode(&self, states: &[PifState]) -> u64 {
        self.try_encode(states).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Encodes register states into a configuration id, reporting
    /// out-of-domain states as a typed error.
    ///
    /// # Errors
    ///
    /// [`VerifyError::OutOfDomain`] naming the first offending processor.
    pub fn try_encode(&self, states: &[PifState]) -> Result<u64, VerifyError> {
        let mut id = 0u64;
        for (i, s) in states.iter().enumerate() {
            let di = *self.index[i].get(s).ok_or(VerifyError::OutOfDomain {
                proc: ProcId::from_index(i),
                state: *s,
            })?;
            id += u64::from(di) * self.strides[i];
        }
        Ok(id)
    }

    /// The shared guard memo, built on first use by `workers` threads
    /// (`None` when the space exceeds the memo budget).
    fn memo(&self, workers: usize) -> Option<&EnabledMemo> {
        self.memo
            .get_or_init(|| {
                let n = self.graph.len();
                let mut memo = EnabledMemo::allocate(self.total, n)?;
                let chunks = memo.fill_chunks();
                // The packed SoA kernel computes all seven guard bits of a
                // processor in one neighbor scan; correction actions (bits
                // 5 and 6) are enabled exactly on abnormal processors, so
                // the abnormality plane falls out of the masks for free.
                let kernel = pif_soa::GuardKernel::new(&self.protocol, &self.graph);
                pif_par::par_map_workers(chunks, workers, |(base, masks, abnormal)| {
                    let mut states: Vec<PifState> = Vec::with_capacity(n);
                    let mut packed = pif_soa::SoaConfig::new(n);
                    let configs = masks.len() / n;
                    for j in 0..configs {
                        let cfg = base + j as u64;
                        self.decode_into(cfg, &mut states);
                        packed.load(&states);
                        let mut any_abnormal = false;
                        for i in 0..n {
                            let mask = kernel.mask(&packed, i);
                            masks[j * n + i] = mask;
                            any_abnormal |= mask & CORRECTION_BITS != 0;
                        }
                        if any_abnormal {
                            abnormal[j / 64] |= 1 << (j % 64);
                        }
                    }
                });
                Some(memo)
            })
            .as_ref()
    }

    /// Evaluates `predicate` over **every** configuration, returning the
    /// first violating configuration (decoded) if any. Delegates to
    /// [`Checker::auto`].
    pub fn check_universal<F>(&self, predicate: F) -> Option<Vec<PifState>>
    where
        F: Fn(&PifProtocol, &Graph, &[PifState]) -> bool + Sync,
    {
        Checker::auto().check_universal(self, predicate)
    }

    /// Verifies that **no** configuration is terminal: in every
    /// configuration some action is enabled, so the PIF scheme can never
    /// seize up. Returns the first deadlocked configuration if one
    /// exists. Delegates to [`Checker::auto`].
    pub fn check_no_deadlock(&self) -> Option<Vec<PifState>> {
        Checker::auto().check_no_deadlock(self)
    }

    /// Exhaustively verifies Theorem 1's round bound. Delegates to
    /// [`Checker::auto`]; see [`Checker::check_correction_bound`].
    pub fn check_correction_bound(&self, bound: u32) -> CorrectionBoundReport {
        Checker::auto().check_correction_bound(self, bound)
    }

    /// Exhaustive snap-safety search over the product of the
    /// configuration space with the delivery overlay. Delegates to
    /// [`Checker::auto`]; see [`Checker::check_snap_safety`].
    pub fn check_snap_safety(&self, track_acks: bool) -> SnapSafetyReport {
        Checker::auto().check_snap_safety(self, track_acks)
    }

    /// Snap-safety search restricted to the wave region reachable from
    /// the normal starting configuration. Delegates to
    /// [`Checker::auto`]; see [`Checker::check_snap_wave`].
    pub fn check_snap_wave(&self, track_acks: bool) -> SnapSafetyReport {
        Checker::auto().check_snap_wave(self, track_acks)
    }
}

/// Which state-space reductions a [`Checker`] applies (`DESIGN.md` §16).
///
/// Every variant is *verdict- and report-exact*: reductions only change
/// how many product states the search visits (`states_explored`,
/// `transitions`), never what it reports. Verification outcomes are
/// preserved by construction — the partial-order reduction keeps every
/// single-processor move and only drops composite daemon selections
/// whose decomposition it retains, and the symmetry quotient identifies
/// states with provably identical futures. Violation *reports* are
/// preserved by a two-phase contract: a reduced search that finds any
/// violation discards its partial sample, re-runs the exhaustive
/// reference engine, and returns that report verbatim — so violation
/// counts and retained minimal examples are bit-identical to
/// [`Reduction::None`] on every instance, verified or not.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// Exhaustive reference: every daemon selection, no quotient.
    None,
    /// Interference-guided partial-order reduction: only daemon
    /// selections whose selected processors induce a connected subgraph
    /// (non-adjacent processors never interfere — the premise pinned to
    /// `pif-analyze`'s interference matrix by `reduction_soundness.rs`).
    Por,
    /// Symmetry quotient: canonicalize every product state under the
    /// network's root-fixing automorphism group before the visited
    /// lookup. The identity reduction on asymmetric instances.
    Symmetry,
    /// Both reductions composed.
    Full,
}

impl Reduction {
    /// All variants, reference first — the differential harness iterates
    /// these.
    pub const ALL: [Reduction; 4] = [Reduction::None, Reduction::Por, Reduction::Symmetry, Reduction::Full];

    fn por(self) -> bool {
        matches!(self, Reduction::Por | Reduction::Full)
    }

    fn symmetry(self) -> bool {
        matches!(self, Reduction::Symmetry | Reduction::Full)
    }
}

impl std::fmt::Display for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Reduction::None => "none",
            Reduction::Por => "por",
            Reduction::Symmetry => "symmetry",
            Reduction::Full => "full",
        })
    }
}

/// One representative PIF root per orbit of the vertex set under the
/// group generated by `symmetries`, with the orbit size as the measured
/// sweep-reduction factor.
///
/// This is the *cross-instance* complement of the root-fixing symmetry
/// quotient ([`Reduction::Symmetry`]): a fixed-point-free automorphism
/// (every non-identity torus translation, for example) can never enter
/// a root-fixing quotient, but it still carries the instance rooted at
/// `r` onto the instance rooted at `σ(r)` — PIF is anonymous except for
/// the root, so the two instances are relabelings of each other with
/// identical behaviour (same verdicts, same round counts, same explored
/// spaces). A sweep over all roots of a `w × h` torus therefore only
/// needs **one** representative instance instead of `w·h`: pass
/// `pif_graph::automorphism::torus_translations(w, h)` as the group.
/// `tests/torus_symmetry.rs` machine-checks both halves of that claim —
/// the 9× factor on torus(3×3) and the step-for-step behavioural
/// equality of translated roots.
///
/// Generators that are not automorphisms of `graph` are ignored (a
/// smaller group is always sound — it only yields more representatives
/// than strictly necessary, never a wrong one).
pub fn representative_roots(
    graph: &Graph,
    symmetries: &[automorphism::Permutation],
) -> Vec<(ProcId, usize)> {
    let sound: Vec<automorphism::Permutation> = symmetries
        .iter()
        .filter(|s| automorphism::is_automorphism(graph, s))
        .cloned()
        .collect();
    automorphism::orbit_representatives(graph.len(), &sound)
}

/// The interference-radius premise the partial-order reduction runs
/// under, recomputed from the protocol's *own declared specs* rather
/// than assumed: the maximum link distance across which any declared
/// action pair interferes, per the machine-derived
/// [`pif_daemon::InterferenceGraph`] (the same derivation `pif-analyze`
/// certifies against hand declarations and differential probing, AN010).
///
/// Protocols without action specs or without a declared register-name
/// universe get the conservative fallback of `1` — the structural bound
/// of the spec language itself (own-scope and neighbor-scope reads
/// only). The internal `PorCtx` clamps `0` to `1` for the same reason,
/// so the reduction never keys soundness on a premise the language
/// cannot even express a violation of.
pub fn por_premise_radius<P: Protocol>(protocol: &P) -> usize {
    let registers = protocol.register_names();
    if protocol.has_action_specs() && !registers.is_empty() {
        pif_daemon::InterferenceGraph::from_protocol(protocol, registers).interference_radius()
    } else {
        1
    }
}

/// Which execution engine a [`Checker`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Single-threaded FIFO search over a `std` `HashSet` — the
    /// reference engine the parallel one is differentially tested
    /// against.
    Sequential,
    /// Frontier-level parallel search over a sharded visited table with
    /// this many workers.
    Parallel(usize),
}

/// An execution engine for the exhaustive checks.
///
/// Both engines share the same expansion core, guard memo and violation
/// canonicalization, and produce bit-identical reports; they differ in
/// how the search itself is driven (see `DESIGN.md` §11):
///
/// * [`Checker::sequential`] — classic FIFO breadth-first loop, one
///   thread, monolithic `HashSet` visited set;
/// * [`Checker::with_workers`] / [`Checker::parallel`] — level-
///   synchronous frontier BFS: workers claim frontier blocks through an
///   atomic index and deduplicate through the sharded
///   [`visited::VisitedSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checker {
    mode: Mode,
    reduction: Reduction,
    /// Live-table byte budget for the visited set's spill tier.
    spill_budget: Option<usize>,
}

impl Checker {
    /// The single-threaded reference engine.
    pub fn sequential() -> Self {
        Checker { mode: Mode::Sequential, reduction: Reduction::None, spill_budget: None }
    }

    /// The parallel engine with one worker per available core
    /// (respecting the `PIF_WORKERS` override).
    pub fn parallel() -> Self {
        Self::with_workers(pif_par::available_workers())
    }

    /// The parallel engine with an explicit worker count (clamped to at
    /// least 1). `with_workers(1)` exercises the full parallel machinery
    /// on a single thread, which is useful for measuring its overhead.
    pub fn with_workers(workers: usize) -> Self {
        Checker {
            mode: Mode::Parallel(workers.max(1)),
            reduction: Reduction::None,
            spill_budget: None,
        }
    }

    /// The default engine: parallel when more than one core is
    /// available (as reported by `pif_par::available_workers`, which
    /// honors the `PIF_WORKERS` override), sequential otherwise.
    pub fn auto() -> Self {
        match pif_par::available_workers() {
            0 | 1 => Self::sequential(),
            w => Self::with_workers(w),
        }
    }

    /// The same engine with a [`Reduction`] layered over it.
    pub fn with_reduction(self, reduction: Reduction) -> Self {
        Checker { reduction, ..self }
    }

    /// The same engine with a visited-table spill budget: live in-memory
    /// tables are bounded to roughly `bytes` and overflow freezes into
    /// sorted on-disk runs (see [`visited`]). Verdicts and reports are
    /// unaffected; peak RSS is.
    pub fn with_spill_budget(self, bytes: usize) -> Self {
        Checker { spill_budget: Some(bytes), ..self }
    }

    /// The reduction this checker applies.
    pub fn reduction(&self) -> Reduction {
        self.reduction
    }

    /// Number of worker threads this checker runs with.
    pub fn workers(&self) -> usize {
        match self.mode {
            Mode::Sequential => 1,
            Mode::Parallel(w) => w,
        }
    }

    /// Builds the shared search context for `space` under this checker's
    /// reduction settings. `memoized` is false for the wave search,
    /// whose reachable region is far smaller than the full configuration
    /// space the memo would be sized for.
    fn ctx<'a>(&self, space: &'a StateSpace, memoized: bool) -> SearchCtx<'a> {
        SearchCtx {
            space,
            memo: if memoized { space.memo(self.workers()) } else { None },
            por: self
                .reduction
                .por()
                .then(|| PorCtx::with_radius(&space.graph, por_premise_radius(&space.protocol))),
            sym: if self.reduction.symmetry() { Quotient::build(space) } else { None },
            spill_budget: self.spill_budget,
        }
    }

    /// Evaluates `predicate` over **every** configuration of `space`, in
    /// parallel over disjoint id ranges, returning the violating
    /// configuration with the smallest id (decoded) if any — the same
    /// configuration a sequential scan would report first.
    pub fn check_universal<F>(&self, space: &StateSpace, predicate: F) -> Option<Vec<PifState>>
    where
        F: Fn(&PifProtocol, &Graph, &[PifState]) -> bool + Sync,
    {
        let n = space.graph.len();
        frontier::find_min_violation(
            self.workers(),
            space.total,
            || Vec::with_capacity(n),
            |states, id| {
                space.decode_into(id, states);
                !predicate(&space.protocol, &space.graph, states)
            },
        )
        .map(|id| space.decode(id))
    }

    /// Verifies that **no** configuration of `space` is terminal,
    /// scanning id ranges in parallel; returns the deadlocked
    /// configuration with the smallest id if one exists.
    pub fn check_no_deadlock(&self, space: &StateSpace) -> Option<Vec<PifState>> {
        let n = space.graph.len();
        frontier::find_min_violation(
            self.workers(),
            space.total,
            // Per-worker scratch: decoded states plus one reused
            // enabled-actions buffer (hoisted out of the per-
            // configuration closure).
            || (Vec::with_capacity(n), Vec::<ActionId>::new()),
            |(states, acts), id| {
                space.decode_into(id, states);
                !space.graph.procs().any(|p| {
                    acts.clear();
                    space.protocol.enabled_actions(View::new(&space.graph, states, p), acts);
                    !acts.is_empty()
                })
            },
        )
        .map(|id| space.decode(id))
    }

    /// Exhaustively verifies Theorem 1's round bound: from **every**
    /// configuration, under **every** daemon choice, all processors are
    /// normal within `bound` rounds (Dolev-Israeli-Moran accounting,
    /// tracked per path via the pending set of round-owing processors).
    ///
    /// Executions that stall rounds forever (unfair daemons) never
    /// complete rounds and therefore cannot witness a violation — which
    /// matches the theorem's quantification over weakly fair daemons: any
    /// *fair* execution exceeding the bound has a finite prefix that this
    /// search reaches.
    ///
    /// # Panics
    ///
    /// Panics if `bound >= 128` (the packed product encoding reserves 7
    /// bits for the round counter).
    pub fn check_correction_bound(&self, space: &StateSpace, bound: u32) -> CorrectionBoundReport {
        assert!(bound < 128, "round bound must fit the packed encoding");
        let ctx = self.ctx(space, true);
        let (seen_count, scratches) = match self.mode {
            Mode::Sequential => ctx.correction_sequential(bound),
            Mode::Parallel(w) => ctx.correction_parallel(bound, w),
        };
        let violation_count: u64 = scratches.iter().map(|s| s.violation_count).sum();
        if violation_count != 0 && self.reduction != Reduction::None {
            // Two-phase contract (see `Reduction`): the reduced pass
            // settled the verdict; the reference pass reconstructs the
            // canonical violation report.
            return self.with_reduction(Reduction::None).check_correction_bound(space, bound);
        }
        let violations = merge_retained(
            scratches.into_iter().flat_map(|s| s.corr_violations),
            CorrectionBoundReport::MAX_RETAINED_VIOLATIONS,
        );
        CorrectionBoundReport { bound, states_explored: seen_count, violation_count, violations }
    }

    /// Exhaustive snap-safety search over the product of the
    /// configuration space with the delivery overlay, branching over
    /// every daemon choice. See the crate docs.
    pub fn check_snap_safety(&self, space: &StateSpace, track_acks: bool) -> SnapSafetyReport {
        let ctx = self.ctx(space, true);
        let (seen_count, scratches) = match self.mode {
            Mode::Sequential => ctx.snap_sequential(track_acks),
            Mode::Parallel(w) => ctx.snap_parallel(track_acks, w),
        };
        self.snap_report(space, track_acks, seen_count, scratches, false)
    }

    /// Snap-safety search over the *wave region*: the product states
    /// reachable from the paper's normal starting configuration (every
    /// processor cleared to phase `C`) under every daemon interleaving.
    /// Same \[PIF1\]/\[PIF2\] inspection as [`Self::check_snap_safety`],
    /// restricted to the reachable region — which stays tractable on
    /// instances (n ≥ 5) whose any-configuration product space does
    /// not. See the crate docs.
    pub fn check_snap_wave(&self, space: &StateSpace, track_acks: bool) -> SnapSafetyReport {
        let ctx = self.ctx(space, false);
        let (seen_count, scratches) = ctx.snap_wave(track_acks, self.workers());
        self.snap_report(space, track_acks, seen_count, scratches, true)
    }

    /// Assembles a snap report from per-worker scratches, re-running the
    /// reference engine first when a reduced pass found violations.
    fn snap_report(
        &self,
        space: &StateSpace,
        track_acks: bool,
        seen_count: u64,
        scratches: Vec<Scratch>,
        wave: bool,
    ) -> SnapSafetyReport {
        let violation_count: u64 = scratches.iter().map(|s| s.violation_count).sum();
        if violation_count != 0 && self.reduction != Reduction::None {
            let reference = self.with_reduction(Reduction::None);
            return if wave {
                reference.check_snap_wave(space, track_acks)
            } else {
                reference.check_snap_safety(space, track_acks)
            };
        }
        let transitions = scratches.iter().map(|s| s.transitions).sum();
        let violations = merge_retained(
            scratches.into_iter().flat_map(|s| s.snap_violations),
            SnapSafetyReport::MAX_RETAINED_VIOLATIONS,
        );
        SnapSafetyReport {
            states_explored: seen_count,
            transitions,
            violation_count,
            violations,
            acks_tracked: track_acks,
        }
    }
}

/// Merges per-worker retained-violation buffers (each already sorted by
/// key and capped) into the canonical global sample: the `cap` smallest
/// keys, ascending. Per-worker retention of the `cap` locally smallest
/// keys suffices to reconstruct the globally smallest `cap` exactly.
fn merge_retained<K: Ord + Copy, V>(buffers: impl Iterator<Item = (K, V)>, cap: usize) -> Vec<V> {
    let mut all: Vec<(K, V)> = buffers.collect();
    all.sort_by_key(|(k, _)| *k);
    all.truncate(cap);
    all.into_iter().map(|(_, v)| v).collect()
}

/// Inserts `(key, make())` into a buffer kept sorted by key and capped
/// at `cap` entries, retaining the smallest keys. `make` is only called
/// when the entry is actually admitted, so rejected violations cost no
/// clone.
fn retain_smallest<K: Ord + Copy, V>(
    buf: &mut Vec<(K, V)>,
    cap: usize,
    key: K,
    make: impl FnOnce() -> V,
) {
    let pos = buf.partition_point(|(k, _)| *k <= key);
    if buf.len() < cap {
        buf.insert(pos, (key, make()));
    } else if pos < cap {
        buf.insert(pos, (key, make()));
        buf.truncate(cap);
    }
}

/// Product-state item of the correction-bound search:
/// `(configuration, pending round-owing processors, completed rounds)`.
type CorrItem = (u64, u16, u32);
/// Product-state item of the snap-safety search:
/// `(configuration, delivered bitmap, acked bitmap, wave-open flag)`.
type SnapItem = (u64, u16, u16, bool);

/// Overlay width of a packed correction key (pending mask + rounds).
const CORR_OVERLAY_BITS: u32 = 23;
/// Overlay width of a packed snap key (has + ack bitmaps + active flag).
const SNAP_OVERLAY_BITS: u32 = 33;

#[inline]
fn pack_corr(cfg: u64, pending: u16, rounds: u32) -> u128 {
    (u128::from(cfg) << CORR_OVERLAY_BITS) | (u128::from(pending) << 7) | u128::from(rounds)
}

#[inline]
fn pack_snap(cfg: u64, has: u16, ack: u16, active: bool) -> u128 {
    (u128::from(cfg) << SNAP_OVERLAY_BITS)
        | (u128::from(has) << 17)
        | (u128::from(ack) << 1)
        | u128::from(active)
}

/// Returns the position of the `k`-th (0-based) set bit of `mask`.
#[inline]
fn nth_set_bit(mut mask: u8, k: usize) -> usize {
    for _ in 0..k {
        mask &= mask - 1;
    }
    mask.trailing_zeros() as usize
}

/// Per-worker scratch: every buffer the expansion core needs, reused
/// across all expansions so the steady-state search is allocation-free.
struct Scratch {
    states: Vec<PifState>,
    idxs: Vec<u32>,
    /// Successor domain indices, maintained only under the symmetry
    /// quotient (the canonicalizer maps indices, not states).
    idxs2: Vec<u32>,
    next: Vec<PifState>,
    masks: Vec<u8>,
    procs: Vec<usize>,
    counts: Vec<usize>,
    selection: Vec<(usize, ActionId)>,
    acts: Vec<ActionId>,
    transitions: u64,
    violation_count: u64,
    corr_violations: Vec<(u64, Vec<PifState>)>,
    snap_violations: Vec<(u128, SnapViolation)>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            states: Vec::with_capacity(n),
            idxs: Vec::with_capacity(n),
            idxs2: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            masks: Vec::with_capacity(n),
            procs: Vec::with_capacity(n),
            counts: Vec::with_capacity(n),
            selection: Vec::with_capacity(n),
            acts: Vec::new(),
            transitions: 0,
            violation_count: 0,
            corr_violations: Vec::new(),
            snap_violations: Vec::new(),
        }
    }
}

/// Shared, read-only context of one search: the space, the optional
/// guard memo, and the active reductions.
struct SearchCtx<'a> {
    space: &'a StateSpace,
    memo: Option<&'a EnabledMemo>,
    /// Partial-order reduction: skip disconnected daemon selections.
    por: Option<PorCtx>,
    /// Symmetry quotient: canonicalize keys before the visited lookup.
    sym: Option<Quotient>,
    /// Spill budget handed to the visited tables.
    spill_budget: Option<usize>,
}

impl SearchCtx<'_> {
    /// Visited-set configuration for this search: pre-sizing capped so
    /// huge spaces don't pre-allocate, key width derived from the
    /// largest packable key (`overlay_bits` above the configuration id).
    fn visited_config(&self, overlay_bits: u32, expected: u64) -> VisitedConfig {
        VisitedConfig {
            expected: usize::try_from(expected.min(1 << 24)).unwrap_or(usize::MAX),
            max_key: (u128::from(self.space.total) << overlay_bits) - 1,
            spill_budget: self.spill_budget,
            ..VisitedConfig::default()
        }
    }
}

impl SearchCtx<'_> {
    /// Fills `masks` with the per-processor enabled-action bitmasks of
    /// configuration `cfg` (whose decoded states are `states`).
    fn fill_masks(&self, cfg: u64, states: &[PifState], masks: &mut Vec<u8>, acts: &mut Vec<ActionId>) {
        masks.clear();
        if let Some(m) = self.memo {
            masks.extend_from_slice(m.masks_of(cfg));
            return;
        }
        for p in self.space.graph.procs() {
            acts.clear();
            self.space.protocol.enabled_actions(View::new(&self.space.graph, states, p), acts);
            masks.push(acts.iter().fold(0u8, |m, a| m | 1 << a.index()));
        }
    }

    /// Whether any processor is abnormal in configuration `cfg` (whose
    /// decoded states are `states`).
    fn is_abnormal(&self, cfg: u64, states: &[PifState]) -> bool {
        if let Some(m) = self.memo {
            return m.is_abnormal(cfg);
        }
        self.space
            .graph
            .procs()
            .any(|p| !self.space.protocol.normal(View::new(&self.space.graph, states, p)))
    }

    /// Bitmask of processors with an enabled action in configuration
    /// `cfg` (whose decoded states are `states`).
    fn pending_mask(&self, cfg: u64, states: &[PifState], acts: &mut Vec<ActionId>) -> u16 {
        if let Some(m) = self.memo {
            return m.pending_mask(cfg);
        }
        let mut mask = 0u16;
        for (i, p) in self.space.graph.procs().enumerate() {
            acts.clear();
            self.space.protocol.enabled_actions(View::new(&self.space.graph, states, p), acts);
            if !acts.is_empty() {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Expands one product state of the correction-bound search, calling
    /// `emit(packed_key, successor)` for every successor that stays in
    /// the search (the caller deduplicates and enqueues). Violations and
    /// counters accumulate in `sc`.
    fn expand_correction(
        &self,
        sc: &mut Scratch,
        item: CorrItem,
        bound: u32,
        mut emit: impl FnMut(u128, CorrItem),
    ) {
        let (cfg, pending, rounds) = item;
        let space = self.space;
        let n = space.graph.len();
        space.decode_indices_into(cfg, &mut sc.states, &mut sc.idxs);
        let Scratch {
            states,
            idxs,
            idxs2,
            next,
            masks,
            procs,
            counts,
            selection,
            acts,
            violation_count,
            corr_violations,
            ..
        } = sc;
        self.fill_masks(cfg, states, masks, acts);
        procs.clear();
        procs.extend((0..n).filter(|&i| masks[i] != 0));
        if procs.is_empty() {
            return; // deadlock (reported by check_no_deadlock)
        }
        counts.clear();
        counts.extend(procs.iter().map(|&i| masks[i].count_ones() as usize + 1));
        let combos: usize = counts.iter().product();
        for combo in 1..combos {
            let mut c = combo;
            selection.clear();
            let mut sel_mask = 0u16;
            for (k, &i) in procs.iter().enumerate() {
                let choice = c % counts[k];
                c /= counts[k];
                if choice > 0 {
                    selection.push((i, ActionId(nth_set_bit(masks[i], choice - 1))));
                    sel_mask |= 1 << i;
                }
            }
            // Partial-order reduction: a disconnected selection
            // decomposes into retained connected-component steps with
            // the same endpoint (see `por`).
            if let Some(por) = &self.por {
                if selection.len() > 1 && !por.connected(sel_mask) {
                    continue;
                }
            }
            // Apply simultaneously against the old configuration,
            // encoding the successor incrementally from the changed
            // processors' domain indices.
            next.clear();
            next.extend_from_slice(states);
            if self.sym.is_some() {
                idxs2.clone_from(idxs);
            }
            let mut cfg2 = cfg as i64;
            for &(i, a) in selection.iter() {
                next[i] = space.protocol.execute(
                    View::new(&space.graph, states, ProcId::from_index(i)),
                    a,
                );
                let ni = space.shapes[i].index_of(&next[i]);
                if self.sym.is_some() {
                    idxs2[i] = ni;
                }
                cfg2 += (i64::from(ni) - i64::from(idxs[i])) * space.strides[i] as i64;
            }
            let cfg2 = cfg2 as u64;
            debug_assert_eq!(cfg2, space.encode(next), "incremental encode diverged");
            if !self.is_abnormal(cfg2, next) {
                continue; // goal reached on this branch
            }
            let next_enabled = self.pending_mask(cfg2, next, acts);
            // Round accounting: executed and now-disabled processors
            // leave the pending set.
            let mut pending2 = pending;
            for &(i, _) in selection.iter() {
                pending2 &= !(1 << i);
            }
            pending2 &= next_enabled;
            let mut rounds2 = rounds;
            if pending2 == 0 {
                rounds2 += 1;
                if rounds2 >= bound {
                    // `bound` rounds completed with abnormal processors
                    // remaining: Theorem 1 violated here.
                    *violation_count += 1;
                    let example = &*next;
                    retain_smallest(
                        corr_violations,
                        CorrectionBoundReport::MAX_RETAINED_VIOLATIONS,
                        cfg2,
                        || example.clone(),
                    );
                    continue;
                }
                pending2 = next_enabled;
            }
            let item2 = (cfg2, pending2, rounds2);
            let (key, item2) = match &self.sym {
                Some(sym) => sym.canon_corr(idxs2, item2),
                None => (pack_corr(cfg2, pending2, rounds2), item2),
            };
            emit(key, item2);
        }
    }

    /// Generates the correction-bound seed for configuration `cfg`, if
    /// any: every *abnormal* configuration starts a search path with
    /// zero completed rounds.
    fn correction_seed(&self, sc: &mut Scratch, cfg: u64) -> Option<(u128, CorrItem)> {
        let pending = if let Some(m) = self.memo {
            if !m.is_abnormal(cfg) {
                return None;
            }
            m.pending_mask(cfg)
        } else {
            self.space.decode_into(cfg, &mut sc.states);
            let Scratch { states, acts, .. } = sc;
            if !self.is_abnormal(cfg, states) {
                return None;
            }
            self.pending_mask(cfg, states, acts)
        };
        let item = (cfg, pending, 0);
        let Some(sym) = &self.sym else {
            return Some((pack_corr(cfg, pending, 0), item));
        };
        self.space.decode_indices_into(cfg, &mut sc.states, &mut sc.idxs);
        Some(sym.canon_corr(&sc.idxs, item))
    }

    /// Generates the snap-safety seed for configuration `cfg`: an empty
    /// overlay (no wave opened yet), canonicalized under symmetry.
    fn snap_seed(&self, sc: &mut Scratch, cfg: u64) -> (u128, SnapItem) {
        let item = (cfg, 0, 0, false);
        match &self.sym {
            Some(sym) => {
                self.space.decode_indices_into(cfg, &mut sc.states, &mut sc.idxs);
                sym.canon_snap(&sc.idxs, item)
            }
            None => (pack_snap(cfg, 0, 0, false), item),
        }
    }

    fn correction_sequential(&self, bound: u32) -> (u64, Vec<Scratch>) {
        let n = self.space.graph.len();
        let mut sc = Scratch::new(n);
        let seen = VisitedSet::with_config(self.visited_config(CORR_OVERLAY_BITS, self.space.total));
        let mut queue: VecDeque<CorrItem> = VecDeque::new();
        for cfg in 0..self.space.total {
            if let Some((key, item)) = self.correction_seed(&mut sc, cfg) {
                if seen.insert(key) {
                    queue.push_back(item);
                }
            }
        }
        while let Some(item) = queue.pop_front() {
            self.expand_correction(&mut sc, item, bound, |key, succ| {
                if seen.insert(key) {
                    queue.push_back(succ);
                }
            });
        }
        (seen.len() as u64, vec![sc])
    }

    fn correction_parallel(&self, bound: u32, workers: usize) -> (u64, Vec<Scratch>) {
        let n = self.space.graph.len();
        let mut scratches: Vec<Scratch> = (0..workers).map(|_| Scratch::new(n)).collect();
        let seen = VisitedSet::with_config(self.visited_config(CORR_OVERLAY_BITS, self.space.total));
        let seeds: Vec<CorrItem> = frontier::seed_scan(self.space.total, &mut scratches, |sc, cfg, out| {
            if let Some((key, item)) = self.correction_seed(sc, cfg) {
                if seen.insert(key) {
                    out.push(item);
                }
            }
        });
        frontier::search(seeds, &mut scratches, |sc, item, out| {
            self.expand_correction(sc, *item, bound, |key, succ| {
                if seen.insert(key) {
                    out.push(succ);
                }
            });
        });
        (seen.len() as u64, scratches)
    }

    /// Expands one product state of the snap-safety search, calling
    /// `emit(packed_key, successor)` for every successor. Violations and
    /// counters accumulate in `sc`.
    fn expand_snap(
        &self,
        sc: &mut Scratch,
        item: SnapItem,
        track_acks: bool,
        mut emit: impl FnMut(u128, SnapItem),
    ) {
        let (cfg, has, ack, active) = item;
        let space = self.space;
        let n = space.graph.len();
        let root = space.protocol.root();
        space.decode_indices_into(cfg, &mut sc.states, &mut sc.idxs);
        let Scratch {
            states,
            idxs,
            idxs2,
            next,
            masks,
            procs,
            counts,
            selection,
            acts,
            transitions,
            violation_count,
            snap_violations,
            ..
        } = sc;
        self.fill_masks(cfg, states, masks, acts);
        procs.clear();
        procs.extend((0..n).filter(|&i| masks[i] != 0));
        if procs.is_empty() {
            return; // terminal (reported by check_no_deadlock)
        }
        // Every daemon choice: each enabled processor independently
        // skips or executes one of its enabled actions; all-skip is
        // excluded (combo 0).
        counts.clear();
        counts.extend(procs.iter().map(|&i| masks[i].count_ones() as usize + 1));
        let combos: usize = counts.iter().product();
        for combo in 1..combos {
            let mut c = combo;
            selection.clear();
            let mut sel_mask = 0u16;
            for (k, &i) in procs.iter().enumerate() {
                let choice = c % counts[k];
                c /= counts[k];
                if choice > 0 {
                    selection.push((i, ActionId(nth_set_bit(masks[i], choice - 1))));
                    sel_mask |= 1 << i;
                }
            }
            // Partial-order reduction: skip disconnected composite
            // selections (see `por`); only retained combos count as
            // explored transitions.
            if let Some(por) = &self.por {
                if selection.len() > 1 && !por.connected(sel_mask) {
                    continue;
                }
            }
            *transitions += 1;

            // Apply simultaneously against the old configuration.
            next.clear();
            next.extend_from_slice(states);
            if self.sym.is_some() {
                idxs2.clone_from(idxs);
            }
            let mut cfg2 = cfg as i64;
            for &(i, a) in selection.iter() {
                next[i] = space.protocol.execute(
                    View::new(&space.graph, states, ProcId::from_index(i)),
                    a,
                );
                let ni = space.shapes[i].index_of(&next[i]);
                if self.sym.is_some() {
                    idxs2[i] = ni;
                }
                cfg2 += (i64::from(ni) - i64::from(idxs[i])) * space.strides[i] as i64;
            }
            let cfg2 = cfg2 as u64;
            debug_assert_eq!(cfg2, space.encode(next), "incremental encode diverged");

            // Overlay update (same semantics as pif_core::wave).
            let mut has2 = has;
            let mut ack2 = ack;
            let mut active2 = active;
            if selection.iter().any(|&(i, a)| i == root.index() && a == B_ACTION) {
                has2 = 1 << root.index();
                ack2 = 0;
                active2 = true;
            }
            for &(i, a) in selection.iter() {
                if i == root.index() {
                    continue;
                }
                match a {
                    B_ACTION => {
                        let par = next[i].par.index();
                        if has2 & (1 << par) != 0 {
                            has2 |= 1 << i;
                        } else {
                            has2 &= !(1 << i);
                        }
                        ack2 &= !(1 << i);
                    }
                    F_ACTION if has2 & (1 << i) != 0 => {
                        ack2 |= 1 << i;
                    }
                    _ => {}
                }
            }
            if active2 && selection.iter().any(|&(i, a)| i == root.index() && a == F_ACTION) {
                let all = (1u16 << n) - 1;
                let all_have = has2 == all;
                let all_acked = !track_acks || (ack2 | (1 << root.index())) == all;
                if !(all_have && all_acked) {
                    *violation_count += 1;
                    let (states, has2, ack2) = (&*states, has2, ack2);
                    retain_smallest(
                        snap_violations,
                        SnapSafetyReport::MAX_RETAINED_VIOLATIONS,
                        pack_snap(cfg, has2, ack2, true),
                        || SnapViolation {
                            configuration: states.clone(),
                            not_received: (0..n)
                                .filter(|&i| has2 & (1 << i) == 0)
                                .map(ProcId::from_index)
                                .collect(),
                            not_acked: (0..n)
                                .filter(|&i| i != root.index() && ack2 & (1 << i) == 0)
                                .map(ProcId::from_index)
                                .collect(),
                        },
                    );
                }
                active2 = false;
                has2 = 0;
                ack2 = 0;
            }

            if !track_acks {
                ack2 = 0;
            }
            let item2 = (cfg2, has2, ack2, active2);
            let (key, item2) = match &self.sym {
                Some(sym) => sym.canon_snap(idxs2, item2),
                None => (pack_snap(cfg2, has2, ack2, active2), item2),
            };
            emit(key, item2);
        }
    }

    fn snap_sequential(&self, track_acks: bool) -> (u64, Vec<Scratch>) {
        let n = self.space.graph.len();
        let mut sc = Scratch::new(n);
        let seen = VisitedSet::with_config(
            self.visited_config(SNAP_OVERLAY_BITS, self.space.total.saturating_mul(2)),
        );
        let mut queue: VecDeque<SnapItem> = VecDeque::new();
        // Every configuration is a legitimate starting point, with an
        // empty overlay (no wave opened yet).
        for cfg in 0..self.space.total {
            let (key, item) = self.snap_seed(&mut sc, cfg);
            if seen.insert(key) {
                queue.push_back(item);
            }
        }
        while let Some(item) = queue.pop_front() {
            self.expand_snap(&mut sc, item, track_acks, |key, succ| {
                if seen.insert(key) {
                    queue.push_back(succ);
                }
            });
        }
        (seen.len() as u64, vec![sc])
    }

    fn snap_parallel(&self, track_acks: bool, workers: usize) -> (u64, Vec<Scratch>) {
        let n = self.space.graph.len();
        let mut scratches: Vec<Scratch> = (0..workers).map(|_| Scratch::new(n)).collect();
        let seen = VisitedSet::with_config(
            self.visited_config(SNAP_OVERLAY_BITS, self.space.total.saturating_mul(2)),
        );
        let seeds: Vec<SnapItem> = frontier::seed_scan(self.space.total, &mut scratches, |sc, cfg, out| {
            let (key, item) = self.snap_seed(sc, cfg);
            if seen.insert(key) {
                out.push(item);
            }
        });
        frontier::search(seeds, &mut scratches, |sc, item, out| {
            self.expand_snap(sc, *item, track_acks, |key, succ| {
                if seen.insert(key) {
                    out.push(succ);
                }
            });
        });
        (seen.len() as u64, scratches)
    }

    /// Reachable-wave search: the snap transition system restricted to
    /// what is reachable from the single clean starting configuration
    /// (`pif_core::initial::normal_starting`), instead of seeding every
    /// configuration. The reachable slice is minuscule compared to the
    /// product space, which is what lets n = 5 instances complete.
    fn snap_wave(&self, track_acks: bool, workers: usize) -> (u64, Vec<Scratch>) {
        let n = self.space.graph.len();
        let workers = workers.max(1);
        let mut scratches: Vec<Scratch> = (0..workers).map(|_| Scratch::new(n)).collect();
        // The reachable slice is tiny relative to `total`; start small
        // and let the table grow (or spill) as needed.
        let seen = VisitedSet::with_config(self.visited_config(SNAP_OVERLAY_BITS, 1 << 16));
        let start = pif_core::initial::normal_starting(&self.space.graph);
        let cfg0 = self.space.encode(&start);
        let (key, item) = self.snap_seed(&mut scratches[0], cfg0);
        seen.insert(key);
        frontier::search(vec![item], &mut scratches, |sc, item, out| {
            self.expand_snap(sc, *item, track_acks, |key, succ| {
                if seen.insert(key) {
                    out.push(succ);
                }
            });
        });
        (seen.len() as u64, scratches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_core::Features;
    use pif_graph::generators;

    fn space(n: usize) -> StateSpace {
        let g = generators::chain(n).unwrap();
        let p = PifProtocol::new(ProcId(0), &g);
        StateSpace::new(g, p)
    }

    #[test]
    fn domain_sizes_are_exact() {
        let s = space(3);
        // root: 3 phases × 3 counts × 2 fok = 18;
        // p1: 3 × 2 par × 2 levels × 3 counts × 2 = 72;
        // p2: 3 × 1 par × 2 levels × 3 counts × 2 = 36.
        assert_eq!(s.config_count(), 18 * 72 * 36);
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = space(3);
        for id in [0u64, 1, 17, 999, s.config_count() - 1] {
            let states = s.decode(id);
            assert_eq!(s.encode(&states), id);
        }
    }

    #[test]
    fn domain_shapes_match_the_enumeration() {
        // The arithmetic state → index function used by the search hot
        // loops must agree with the enumerated domain on every state of
        // every processor, including a non-tree instance.
        for s in [space(3), {
            let g = generators::complete(3).unwrap();
            let p = PifProtocol::new(ProcId(0), &g);
            StateSpace::new(g, p)
        }] {
            for (p, domain) in s.domains.iter().enumerate() {
                for (i, st) in domain.iter().enumerate() {
                    assert_eq!(s.shapes[p].index_of(st), i as u32, "proc {p} state {st:?}");
                }
            }
        }
    }

    #[test]
    fn oversized_instances_are_typed_errors() {
        let g = generators::ring(20).unwrap();
        let p = PifProtocol::new(ProcId(0), &g);
        let err = StateSpace::try_new(g, p).unwrap_err();
        assert_eq!(err, VerifyError::NetworkTooLarge { n: 20, max: 16 });
        // Within the processor cap but over the configuration budget.
        let g = generators::complete(12).unwrap();
        let p = PifProtocol::new(ProcId(0), &g);
        let err = StateSpace::try_new(g, p).unwrap_err();
        assert!(matches!(err, VerifyError::SpaceTooLarge { .. }), "{err}");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn out_of_domain_encode_is_a_typed_error() {
        let s = space(3);
        // p1's level domain is [1, l_max]; level 0 is physically impossible.
        let mut states = s.decode(0);
        states[1].level = 0;
        let err = s.try_encode(&states).unwrap_err();
        assert!(matches!(err, VerifyError::OutOfDomain { proc: ProcId(1), .. }), "{err}");
    }

    #[test]
    fn no_configuration_deadlocks_chain3() {
        let s = space(3);
        assert_eq!(s.check_no_deadlock(), None, "found a terminal configuration");
    }

    #[test]
    fn property1_universal_chain3() {
        let s = space(3);
        let witness = s.check_universal(|proto, g, states| {
            pif_core::analysis::property1_holds(proto, g, states)
        });
        assert_eq!(witness, None);
    }

    #[test]
    fn universal_scan_returns_the_smallest_witness() {
        // A predicate failing on known ids must report the smallest one,
        // for every engine.
        let s = space(3);
        let bad = s.decode(12345);
        for checker in [Checker::sequential(), Checker::with_workers(4)] {
            let witness = checker.check_universal(&s, |_, _, states| {
                s.encode(states) < 12345 || s.encode(states) > 20000
            });
            assert_eq!(witness.as_deref(), Some(&bad[..]), "{checker:?}");
        }
    }

    #[test]
    fn snap_safety_exhaustive_chain2() {
        let s = space(2);
        let report = s.check_snap_safety(true);
        assert!(report.verified(), "violations: {:#?}", report.violations);
        assert!(report.states_explored >= s.config_count());
        assert!(report.acks_tracked);
    }

    #[test]
    fn checker_finds_the_leaf_guard_bug() {
        // Sensitivity: the same exhaustive search against the leaf-guard
        // ablation must FIND a snap violation on chain(3).
        let g = generators::chain(3).unwrap();
        let p = PifProtocol::new(ProcId(0), &g)
            .with_features(Features { leaf_guard: false, ..Features::paper() });
        let s = StateSpace::new(g, p);
        let report = s.check_snap_safety(false);
        assert!(!report.verified(), "the ablated protocol must have a reachable violation");
        assert!(!report.violations[0].not_received.is_empty());
        assert!(report.violation_count >= report.violations.len() as u64);
    }

    #[test]
    fn theorem1_bound_exhaustive_chain2() {
        let s = space(2);
        // L_max = 1 → bound 6.
        let report = s.check_correction_bound(6);
        assert!(report.verified(), "violations: {:#?}", report.violations);
        assert!(report.states_explored > 0);
    }

    #[test]
    fn theorem1_impossible_bound_is_refuted() {
        // Sensitivity: a bound of 0 rounds must be refuted (corrupted
        // configurations need at least one round to correct).
        let s = space(2);
        let report = s.check_correction_bound(0);
        assert!(!report.verified(), "a zero-round bound cannot hold");
    }

    #[test]
    fn violation_truncation_reports_the_true_count() {
        // bound 0 violates on (nearly) every branch: the retained sample
        // must stay capped while the true count keeps counting, and the
        // sample must be canonically sorted by configuration id.
        let s = space(2);
        for checker in [Checker::sequential(), Checker::with_workers(3)] {
            let report = checker.check_correction_bound(&s, 0);
            assert!(
                report.violation_count > CorrectionBoundReport::MAX_RETAINED_VIOLATIONS as u64,
                "expected a flood of violations, got {}",
                report.violation_count
            );
            assert_eq!(report.violations.len(), CorrectionBoundReport::MAX_RETAINED_VIOLATIONS);
            let keys: Vec<u64> = report.violations.iter().map(|v| s.encode(v)).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "retained examples must be sorted by configuration id");
        }
    }

    #[test]
    #[ignore = "full product space of chain(3); run with --ignored in release"]
    fn theorem1_bound_exhaustive_chain3() {
        let s = space(3);
        // L_max = 2 → bound 9.
        let report = s.check_correction_bound(9);
        assert!(report.verified(), "violations: {:#?}", report.violations);
    }

    #[test]
    #[ignore = "full product space of chain(3); run with --ignored in release"]
    fn snap_safety_exhaustive_chain3() {
        let s = space(3);
        let report = s.check_snap_safety(true);
        assert!(report.verified(), "violations: {:#?}", report.violations);
    }

    #[test]
    fn reductions_preserve_verdicts_chain2() {
        let s = space(2);
        for red in Reduction::ALL {
            let c = Checker::sequential().with_reduction(red);
            assert!(c.check_correction_bound(&s, 6).verified(), "{red}");
            assert!(c.check_snap_safety(&s, true).verified(), "{red}");
        }
    }

    #[test]
    fn symmetry_quotient_shrinks_the_middle_root_chain() {
        // chain(3) rooted at the middle has the reflection symmetry; the
        // quotient must explore strictly fewer product states while
        // reaching the same verdict.
        let g = generators::chain(3).unwrap();
        let p = PifProtocol::new(ProcId(1), &g);
        let s = StateSpace::new(g, p);
        let full = Checker::sequential().check_snap_safety(&s, false);
        let sym = Checker::sequential()
            .with_reduction(Reduction::Symmetry)
            .check_snap_safety(&s, false);
        assert!(full.verified() && sym.verified());
        assert!(
            sym.states_explored < full.states_explored,
            "quotient must shrink the space: {} vs {}",
            sym.states_explored,
            full.states_explored
        );
    }

    #[test]
    fn por_prunes_transitions_without_changing_the_verdict() {
        // chain(3): the {0, 2} daemon selections are disconnected, so the
        // POR engine must take strictly fewer transitions.
        let s = space(3);
        let full = Checker::sequential().check_snap_wave(&s, true);
        let por = Checker::sequential()
            .with_reduction(Reduction::Por)
            .check_snap_wave(&s, true);
        assert!(full.verified() && por.verified());
        assert!(
            por.transitions < full.transitions,
            "POR must prune composite selections: {} vs {}",
            por.transitions,
            full.transitions
        );
    }

    #[test]
    fn wave_check_is_a_tiny_slice_of_the_product() {
        let s = space(4);
        let report = s.check_snap_wave(true);
        assert!(report.verified(), "violations: {:#?}", report.violations);
        assert!(report.acks_tracked);
        assert!(
            report.states_explored < s.config_count() / 1000,
            "the reachable wave slice must be minuscule: {} of {}",
            report.states_explored,
            s.config_count()
        );
    }

    #[test]
    fn wave_check_finds_the_fok_wave_bug() {
        // Sensitivity: ablating the Fok wave lets feedback outrun the
        // broadcast *from the clean start* — the wave slice must catch
        // it. (The leaf-guard bug, by contrast, needs a corrupted start
        // and is out of the wave check's scope by design; the full
        // product search covers it.)
        let g = generators::chain(3).unwrap();
        let p = PifProtocol::new(ProcId(0), &g)
            .with_features(Features { fok_wave: false, ..Features::paper() });
        let s = StateSpace::new(g, p);
        let report = s.check_snap_wave(true);
        assert!(!report.verified(), "the ablated protocol must violate on the wave slice");
    }

    #[test]
    fn spill_budget_preserves_wave_reports() {
        // A spill budget small enough to force frozen runs must not
        // change a single reported number.
        let s = space(3);
        let plain = Checker::sequential().check_snap_wave(&s, true);
        let spilled = Checker::sequential().with_spill_budget(1 << 14).check_snap_wave(&s, true);
        assert_eq!(plain.states_explored, spilled.states_explored);
        assert_eq!(plain.transitions, spilled.transitions);
        assert_eq!(plain.violation_count, spilled.violation_count);
    }
}
