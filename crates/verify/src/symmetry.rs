//! Symmetry quotient under root-fixing graph automorphisms
//! (`DESIGN.md` §16).
//!
//! PIF is anonymous except for the distinguished root: relabelling a
//! configuration by any automorphism `σ` of the network that fixes the
//! root yields a configuration with identical behaviour — guards read
//! only the local neighborhood structure that `σ` preserves, and the
//! search overlays (delivery/ack bitmaps, pending round-owing sets)
//! relabel along. Two product states in the same orbit therefore have
//! identical futures, and the search only needs one representative per
//! orbit: every emitted key is canonicalized to the *minimum packed key
//! over the orbit* before the visited lookup, which shrinks the
//! explored space by up to the group order on symmetric instances
//! (ring reflections, grid flips) and leaves asymmetric instances
//! (chains rooted at an end) bit-for-bit untouched — the group is
//! trivial there and [`Quotient::build`] returns `None`.
//!
//! One register needs care: the paper treats the root's `Par` as the
//! constant `⊥`, and the state space gives the root a single canonical
//! parent value. Every guard that dereferences a parent pointer
//! excludes the root explicitly (`pif-core`'s `sum_set`, `pre_potential`,
//! `leaf`, `bleaf` all skip `q == root`; the root's own predicates never
//! read `Par_r`), so the canonicalization keeps the root's `Par` at its
//! canonical value instead of mapping it through `σ` — which keeps the
//! image inside the root's single-parent domain. The commutation tests
//! below machine-check exactly this: guard masks and executed
//! successors commute with every group element on sampled
//! configurations.
//!
//! The group itself comes from `pif_graph::automorphism::stabilizer`;
//! per element, a per-processor table maps a domain index straight to
//! its contribution `strides[σ(p)] · index_of(σ·state)`, so
//! canonicalizing a successor costs `|G| − 1` vector sums of `n` table
//! lookups — no decoding, no re-encoding.

use pif_core::PifState;
use pif_graph::automorphism;

use crate::{pack_corr, pack_snap, CorrItem, SnapItem, StateSpace};

/// One non-identity group element, compiled against a [`StateSpace`].
struct Perm {
    /// `map[i]` = σ(i).
    map: [u8; 16],
    /// `contrib[i][d]` = `strides[σ(i)] · index_of(σ · domains[i][d])`:
    /// the mapped configuration id is the sum over processors.
    contrib: Vec<Vec<u64>>,
}

impl Perm {
    /// Relabels an overlay bitmap along σ.
    #[inline]
    fn map_bits(&self, bits: u16) -> u16 {
        let mut out = 0u16;
        let mut m = bits;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            out |= 1 << self.map[i];
        }
        out
    }

    /// The image configuration id, from the source's domain indices.
    #[inline]
    fn map_cfg(&self, idxs: &[u32]) -> u64 {
        idxs.iter().enumerate().map(|(i, &d)| self.contrib[i][d as usize]).sum()
    }
}

/// The compiled symmetry group of one instance: every non-identity
/// automorphism fixing the root, ready for O(|G|·n) canonicalization.
pub(crate) struct Quotient {
    perms: Vec<Perm>,
}

impl Quotient {
    /// Compiles the quotient for `space`, or `None` when the instance
    /// has no non-trivial root-fixing symmetry (the search then runs
    /// exactly as without the reduction).
    pub(crate) fn build(space: &StateSpace) -> Option<Quotient> {
        let root = space.protocol().root();
        let group = automorphism::stabilizer(space.graph(), root);
        let n = space.graph().len();
        let identity: Vec<usize> = (0..n).collect();
        let perms: Vec<Perm> = group
            .iter()
            .filter(|sigma| sigma.iter().enumerate().any(|(i, q)| q.index() != i))
            .map(|sigma| {
                let mut map = [0u8; 16];
                for (i, q) in sigma.iter().enumerate() {
                    map[i] = q.index() as u8;
                }
                let contrib = identity
                    .iter()
                    .map(|&i| {
                        let ti = sigma[i].index();
                        space
                            .proc_domain(pif_graph::ProcId::from_index(i))
                            .iter()
                            .map(|s| {
                                let mapped = if i == root.index() {
                                    // Par_r is the constant ⊥: keep the
                                    // canonical in-domain value.
                                    *s
                                } else {
                                    PifState { par: sigma[s.par.index()], ..*s }
                                };
                                space.strides[ti] * u64::from(space.shapes[ti].index_of(&mapped))
                            })
                            .collect()
                    })
                    .collect();
                Perm { map, contrib }
            })
            .collect();
        if perms.is_empty() {
            None
        } else {
            Some(Quotient { perms })
        }
    }

    /// Number of group elements, identity included.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn order(&self) -> usize {
        self.perms.len() + 1
    }

    /// Canonicalizes a correction-search product state: the orbit
    /// element with the minimum packed key, given the source state's
    /// domain indices.
    #[inline]
    pub(crate) fn canon_corr(&self, idxs: &[u32], item: CorrItem) -> (u128, CorrItem) {
        let (cfg, pending, rounds) = item;
        let mut best_key = pack_corr(cfg, pending, rounds);
        let mut best = item;
        for perm in &self.perms {
            let c = perm.map_cfg(idxs);
            let p = perm.map_bits(pending);
            let key = pack_corr(c, p, rounds);
            if key < best_key {
                best_key = key;
                best = (c, p, rounds);
            }
        }
        (best_key, best)
    }

    /// Canonicalizes a snap-search product state (configuration plus
    /// delivery overlay), given the source state's domain indices.
    #[inline]
    pub(crate) fn canon_snap(&self, idxs: &[u32], item: SnapItem) -> (u128, SnapItem) {
        let (cfg, has, ack, active) = item;
        let mut best_key = pack_snap(cfg, has, ack, active);
        let mut best = item;
        for perm in &self.perms {
            let c = perm.map_cfg(idxs);
            let h = perm.map_bits(has);
            let a = perm.map_bits(ack);
            let key = pack_snap(c, h, a, active);
            if key < best_key {
                best_key = key;
                best = (c, h, a, active);
            }
        }
        (best_key, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_core::PifProtocol;
    use pif_daemon::{ActionId, Protocol, View};
    use pif_graph::{generators, Graph, ProcId};

    fn space_of(g: Graph, root: ProcId) -> StateSpace {
        let p = PifProtocol::new(root, &g);
        StateSpace::new(g, p)
    }

    /// Symmetric instances used across the tests: (space, group order).
    fn symmetric_instances() -> Vec<(StateSpace, usize)> {
        vec![
            (space_of(generators::chain(3).unwrap(), ProcId(1)), 2),
            (space_of(generators::ring(4).unwrap(), ProcId(0)), 2),
            (space_of(generators::grid(3, 2).unwrap(), ProcId(1)), 2),
            (space_of(generators::complete(3).unwrap(), ProcId(0)), 2),
        ]
    }

    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn asymmetric_instances_have_no_quotient() {
        // chain(4) rooted at an end is rigid: the reduction must be the
        // identity (Quotient::build declines), which is what keeps the
        // Symmetry engine bit-identical to None there.
        let s = space_of(generators::chain(4).unwrap(), ProcId(0));
        assert!(Quotient::build(&s).is_none());
        // chain(3) rooted at an end is likewise rigid (only the middle
        // is fixed by the reflection).
        let s = space_of(generators::chain(3).unwrap(), ProcId(0));
        assert!(Quotient::build(&s).is_none());
    }

    #[test]
    fn quotient_orders_match_the_stabilizers() {
        for (s, order) in symmetric_instances() {
            let q = Quotient::build(&s).expect("instance is symmetric");
            assert_eq!(q.order(), order, "{}", s.graph().name());
        }
    }

    /// The soundness premise, machine-checked: guard masks and executed
    /// successors commute with every group element on sampled
    /// configurations — `mask_i(cfg) == mask_σ(i)(σ·cfg)` and
    /// `σ(execute(cfg, i, a)) == execute(σ·cfg, σ(i), a)`.
    #[test]
    fn enabled_and_execute_commute_with_the_group() {
        for (s, _) in symmetric_instances() {
            let q = Quotient::build(&s).expect("instance is symmetric");
            let n = s.graph().len();
            let root = s.protocol().root();
            let mut rng = 0xC0FFEEu64;
            for _ in 0..300 {
                let cfg = splitmix(&mut rng) % s.config_count();
                let states = s.decode(cfg);
                let idxs: Vec<u32> = (0..n)
                    .map(|i| s.shapes[i].index_of(&states[i]))
                    .collect();
                for perm in &q.perms {
                    let mapped_cfg = perm.map_cfg(&idxs);
                    let mapped = s.decode(mapped_cfg);
                    for i in 0..n {
                        let ti = usize::from(perm.map[i]);
                        let mut acts_a: Vec<ActionId> = Vec::new();
                        let mut acts_b: Vec<ActionId> = Vec::new();
                        s.protocol().enabled_actions(
                            View::new(s.graph(), &states, ProcId::from_index(i)),
                            &mut acts_a,
                        );
                        s.protocol().enabled_actions(
                            View::new(s.graph(), &mapped, ProcId::from_index(ti)),
                            &mut acts_b,
                        );
                        assert_eq!(acts_a, acts_b, "masks diverge at proc {i} of {}", s.graph().name());
                        for &a in &acts_a {
                            let succ = s.protocol().execute(
                                View::new(s.graph(), &states, ProcId::from_index(i)),
                                a,
                            );
                            let succ_mapped = s.protocol().execute(
                                View::new(s.graph(), &mapped, ProcId::from_index(ti)),
                                a,
                            );
                            let expected = if i == root.index() {
                                succ
                            } else {
                                PifState { par: ProcId(u32::from(perm.map[succ.par.index()])), ..succ }
                            };
                            assert_eq!(
                                succ_mapped, expected,
                                "execute diverges at proc {i} action {a:?} of {}",
                                s.graph().name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn canonicalization_is_idempotent_and_orbit_invariant() {
        for (s, _) in symmetric_instances() {
            let q = Quotient::build(&s).expect("instance is symmetric");
            let n = s.graph().len();
            let mut rng = 0xDEAD_BEEFu64;
            for _ in 0..500 {
                let cfg = splitmix(&mut rng) % s.config_count();
                let overlay = splitmix(&mut rng);
                let pending = (overlay as u16) & ((1 << n) - 1);
                let rounds = (overlay >> 16) as u32 % 8;
                let states = s.decode(cfg);
                let idxs: Vec<u32> =
                    (0..n).map(|i| s.shapes[i].index_of(&states[i])).collect();
                let (key, item) = q.canon_corr(&idxs, (cfg, pending, rounds));
                // Idempotent: canonicalizing the representative is a
                // fixed point.
                let rep_states = s.decode(item.0);
                let rep_idxs: Vec<u32> =
                    (0..n).map(|i| s.shapes[i].index_of(&rep_states[i])).collect();
                assert_eq!(q.canon_corr(&rep_idxs, item), (key, item));
                // Orbit-invariant: every image canonicalizes to the
                // same representative.
                for perm in &q.perms {
                    let img = (perm.map_cfg(&idxs), perm.map_bits(pending), rounds);
                    let img_states = s.decode(img.0);
                    let img_idxs: Vec<u32> =
                        (0..n).map(|i| s.shapes[i].index_of(&img_states[i])).collect();
                    assert_eq!(q.canon_corr(&img_idxs, img), (key, item));
                }
            }
        }
    }

    #[test]
    fn snap_canonicalization_tracks_all_three_overlay_fields() {
        let s = space_of(generators::ring(4).unwrap(), ProcId(0));
        let q = Quotient::build(&s).expect("ring is symmetric");
        let n = s.graph().len();
        let mut rng = 7u64;
        for _ in 0..500 {
            let cfg = splitmix(&mut rng) % s.config_count();
            let bits = splitmix(&mut rng);
            let has = (bits as u16) & ((1 << n) - 1);
            let ack = ((bits >> 16) as u16) & ((1 << n) - 1);
            let active = bits >> 32 & 1 == 1;
            let states = s.decode(cfg);
            let idxs: Vec<u32> = (0..n).map(|i| s.shapes[i].index_of(&states[i])).collect();
            let (key, item) = q.canon_snap(&idxs, (cfg, has, ack, active));
            assert!(key <= pack_snap(cfg, has, ack, active));
            assert_eq!(item.3, active, "the wave flag is σ-invariant");
            for perm in &q.perms {
                let img =
                    (perm.map_cfg(&idxs), perm.map_bits(has), perm.map_bits(ack), active);
                let img_states = s.decode(img.0);
                let img_idxs: Vec<u32> =
                    (0..n).map(|i| s.shapes[i].index_of(&img_states[i])).collect();
                assert_eq!(q.canon_snap(&img_idxs, img), (key, item));
            }
        }
    }
}
