//! Interference-guided partial-order reduction (`DESIGN.md` §16).
//!
//! The product searches branch over *every* daemon choice: each
//! non-empty subset of enabled processors, times an enabled action per
//! selected processor. Most of that branching is redundant. The
//! `pif-analyze` InterferenceGraph — the proven-complete 7×7 action
//! interference relation for PIF — contains only *own-register* and
//! *across-one-link* edges: every guard and every effect of a processor
//! reads at most its distance-1 neighborhood, so moves of processors at
//! graph distance ≥ 2 neither disable, enable, nor change the effect of
//! one another. (The workspace test `reduction_soundness.rs` pins this
//! premise to the analyzer's actual interference matrix.)
//!
//! A composite daemon selection whose selected-processor set is
//! *disconnected* in the network graph therefore decomposes: executing
//! its connected components one component-step at a time (root's
//! component last, when one contains the root) passes through
//! intermediate configurations the search also reaches, and ends in the
//! same configuration with the same overlay — the interleaving is
//! observationally equivalent to a sequence of retained transitions. So
//! the reduction keeps exactly the selections whose selected set is
//! connected and drops the rest:
//!
//! * **No action is lost** — every singleton selection is connected and
//!   always retained, so each enabled action of each processor is
//!   explored at every state. This discharges the usual ample-set
//!   condition C1 (and the cycle proviso C3: no state defers an enabled
//!   action forever, because no state defers any enabled action at
//!   all).
//! * **Snap-safety signatures are preserved exactly** — the delivery
//!   overlay (`has`/`ack` bitmaps) of a composite move only reads
//!   parent-side bits, and a processor's parent is always inside its
//!   own component, so the decomposition reproduces the overlay
//!   bit-for-bit, including the wave-closure inspection at the root.
//! * **Round-bound verdicts are preserved** — a decomposed path's
//!   pending set is always a subset of the composite path's at aligned
//!   configurations, so it completes rounds no faster; any Theorem 1
//!   violation reachable through a composite selection is reachable
//!   through connected ones (see §16 for the monotonicity argument).
//!
//! The check itself is branch-free bit algebra on precomputed adjacency
//! masks — a handful of cycles per daemon combo.

use pif_graph::Graph;

/// Precomputed adjacency bitmasks for the connected-selection test.
pub(crate) struct PorCtx {
    /// `adj[i]` = processors within the interference radius of `i`
    /// (self bit excluded).
    adj: [u16; 16],
}

impl PorCtx {
    /// Builds the context for a declared interference radius: two
    /// processors count as adjacent (their joint selection is *not*
    /// decomposable) when their graph distance is ≤ `max(radius, 1)`.
    ///
    /// The radius comes from the machine-derived interference graph
    /// (`por_premise_radius`); a radius of 0 — own-register interference
    /// only — is clamped to 1 rather than exploited, so the reduction
    /// never keys soundness on a premise stronger than the spec
    /// language itself can express.
    pub(crate) fn with_radius(graph: &Graph, radius: usize) -> Self {
        let radius = radius.max(1);
        let mut adj = [0u16; 16];
        for p in graph.procs() {
            // Bounded BFS from `p`: everything within `radius` links.
            let mut dist = [usize::MAX; 16];
            dist[p.index()] = 0;
            let mut queue = vec![p];
            let mut head = 0;
            while head < queue.len() {
                let q = queue[head];
                head += 1;
                if dist[q.index()] == radius {
                    continue;
                }
                for w in graph.neighbors(q) {
                    if dist[w.index()] == usize::MAX {
                        dist[w.index()] = dist[q.index()] + 1;
                        queue.push(w);
                        adj[p.index()] |= 1 << w.index();
                    }
                }
            }
        }
        PorCtx { adj }
    }

    /// Whether the selected-processor set `sel` induces a connected
    /// subgraph of the network (singletons trivially do). Bitset flood
    /// fill from the lowest selected processor.
    #[inline]
    pub(crate) fn connected(&self, sel: u16) -> bool {
        debug_assert_ne!(sel, 0, "daemon selections are non-empty");
        let mut reach = sel & sel.wrapping_neg(); // lowest set bit
        loop {
            let mut frontier = reach;
            let mut next = reach;
            while frontier != 0 {
                let i = frontier.trailing_zeros() as usize;
                frontier &= frontier - 1;
                next |= self.adj[i] & sel;
            }
            if next == reach {
                return reach == sel;
            }
            reach = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_graph::generators;

    #[test]
    fn chain_connectivity_matches_interval_structure() {
        // On a chain, a selection is connected iff it is a contiguous
        // interval of processors.
        let ctx = PorCtx::with_radius(&generators::chain(5).unwrap(), 1);
        for sel in 1u16..(1 << 5) {
            let lo = sel.trailing_zeros();
            let hi = 15 - sel.leading_zeros();
            let interval = sel.count_ones() == hi - lo + 1;
            assert_eq!(ctx.connected(sel), interval, "sel {sel:#07b}");
        }
    }

    #[test]
    fn singletons_and_full_sets_are_always_connected() {
        for g in [
            generators::chain(4).unwrap(),
            generators::ring(5).unwrap(),
            generators::grid(3, 2).unwrap(),
        ] {
            let ctx = PorCtx::with_radius(&g, 1);
            for i in 0..g.len() {
                assert!(ctx.connected(1 << i));
            }
            // The graph itself is connected by construction.
            assert!(ctx.connected((1 << g.len()) - 1));
        }
    }

    #[test]
    fn radius_two_closes_over_one_gap() {
        // With a declared radius of 2, {0, 2} on a chain is an
        // interfering (non-decomposable) selection; {0, 3} still is not.
        let g = generators::chain(5).unwrap();
        let r1 = PorCtx::with_radius(&g, 1);
        let r2 = PorCtx::with_radius(&g, 2);
        assert!(!r1.connected(0b00101));
        assert!(r2.connected(0b00101));
        assert!(!r2.connected(0b01001));
        // Radius 0 is clamped to 1: identical adjacency.
        let r0 = PorCtx::with_radius(&g, 0);
        for sel in 1u16..(1 << 5) {
            assert_eq!(r0.connected(sel), r1.connected(sel), "sel {sel:#07b}");
        }
    }

    #[test]
    fn ring_antipodal_pairs_are_disconnected() {
        let ctx = PorCtx::with_radius(&generators::ring(6).unwrap(), 1);
        assert!(!ctx.connected((1 << 0) | (1 << 3)));
        assert!(ctx.connected((1 << 0) | (1 << 1)));
        // Two arcs joined through vertex 0 wrap around the ring.
        assert!(ctx.connected((1 << 5) | (1 << 0) | (1 << 1)));
        assert!(!ctx.connected((1 << 5) | (1 << 1)));
    }
}
