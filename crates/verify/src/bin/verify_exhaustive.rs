//! E11 — exhaustive verification of snap-stabilization on tiny networks:
//! every configuration × every daemon choice, machine-checked.
//!
//! ```sh
//! cargo run --release -p pif-verify --bin verify_exhaustive
//! ```
//!
//! By default the fast instance set runs (everything up to the triangle
//! as a full product search, chain(4) scans only). `--tier2` adds the
//! large exhaustive instances gated in CI: chain(4) + ring(4)
//! correction-bound and chain(4) snap-safety product searches.
//! `--workers N` overrides the engine (N = 0 selects the sequential
//! reference engine), `--reduction none|por|symmetry|full` selects the
//! state-space reduction.
//!
//! Two further modes for the tier-2 gate:
//!
//! * `--differential-reductions` — verdict-equality smoke: every
//!   reduction against the exhaustive reference on every tier-1
//!   instance (product searches and the reachable-wave check) plus the
//!   leaf-guard mutant; prints the states-explored ratios and exits
//!   non-zero on any divergence.
//! * `--spill-demo [--rss-ceiling-mb N]` — runs the chain(4)
//!   correction-bound product search with a deliberately small spill
//!   budget for the visited table and reports the process RSS
//!   high-water mark (`VmHWM`), asserting it stays under the ceiling.

use pif_core::{Features, PifProtocol};
use pif_graph::{generators, Graph, ProcId};
use pif_verify::{Checker, Reduction, StateSpace};

struct Opts {
    checker: Checker,
    tier2: bool,
}

fn verify(name: &str, graph: Graph, root: ProcId, product: bool, scans: bool, opts: &Opts) {
    let t0 = std::time::Instant::now();
    let protocol = PifProtocol::new(root, &graph);
    let space = StateSpace::new(graph, protocol);
    let checker = opts.checker;
    print!("{name:<28} root {root}  configs {:>9}  ", space.config_count());
    if scans {
        if let Some(cfg) = checker.check_no_deadlock(&space) {
            println!("DEADLOCK FOUND: {cfg:?}");
            return;
        }
        let p1 = checker.check_universal(&space, pif_core::analysis::property1_holds);
        assert!(p1.is_none(), "Property 1 violated: {p1:?}");
    }
    if product {
        // Theorem 1's round bound, exhaustively.
        let bound = 3 * u32::from(space.protocol().l_max()) + 3;
        let t1 = checker.check_correction_bound(&space, bound);
        assert!(t1.verified(), "Theorem 1 violated: {:#?}", t1.violations);
        print!("T1<= {bound} rounds OK ({} states)  ", t1.states_explored);
    }
    if !product {
        println!(
            "no deadlock, Property 1 universal  (product search skipped)  ({:.1}s)",
            t0.elapsed().as_secs_f64()
        );
        return;
    }
    let report = checker.check_snap_safety(&space, true);
    println!(
        "states {:>10}  transitions {:>11}  {}  ({:.1}s)",
        report.states_explored,
        report.transitions,
        if report.verified() { "VERIFIED" } else { "VIOLATED" },
        t0.elapsed().as_secs_f64(),
    );
    assert!(report.verified(), "violations: {:#?}", report.violations);
}

/// Tier-2 large instances: one size class above the default set. Only
/// the product searches run here (the universal scans already cover
/// chain(4) in the default set; scans over ring(4)'s 7·10^7
/// configurations are cheap and included for completeness).
fn verify_tier2(opts: &Opts) {
    println!("\ntier-2 exhaustive coverage (one size class up):");

    // chain(4): Theorem 1 bound and full snap-safety product search.
    {
        let g = generators::chain(4).unwrap();
        let protocol = PifProtocol::new(ProcId(0), &g);
        let space = StateSpace::new(g, protocol);
        let bound = 3 * u32::from(space.protocol().l_max()) + 3;
        let t0 = std::time::Instant::now();
        let t1 = opts.checker.check_correction_bound(&space, bound);
        assert!(t1.verified(), "Theorem 1 violated on chain(4): {:#?}", t1.violations);
        println!(
            "chain(4) T1 <= {bound} rounds    states {:>11}  VERIFIED  ({:.1}s)",
            t1.states_explored,
            t0.elapsed().as_secs_f64()
        );
        let t0 = std::time::Instant::now();
        let snap = opts.checker.check_snap_safety(&space, true);
        assert!(snap.verified(), "snap safety violated on chain(4): {:#?}", snap.violations);
        println!(
            "chain(4) snap safety        states {:>11}  transitions {:>12}  VERIFIED  ({:.1}s)",
            snap.states_explored,
            snap.transitions,
            t0.elapsed().as_secs_f64()
        );
    }

    // ring(4): first tier-2 cyclic instance — exercises the
    // arbitrary-network (non-tree) B/F-correction paths under the
    // Theorem 1 bound.
    {
        let g = generators::ring(4).unwrap();
        let protocol = PifProtocol::new(ProcId(0), &g);
        let space = StateSpace::new(g, protocol);
        let bound = 3 * u32::from(space.protocol().l_max()) + 3;
        let t0 = std::time::Instant::now();
        let t1 = opts.checker.check_correction_bound(&space, bound);
        assert!(t1.verified(), "Theorem 1 violated on ring(4): {:#?}", t1.violations);
        println!(
            "ring(4)  T1 <= {bound} rounds   states {:>11}  VERIFIED  ({:.1}s)",
            t1.states_explored,
            t0.elapsed().as_secs_f64()
        );
    }
}

/// Tier-1 instance set shared by the default run and the differential
/// smoke.
fn tier1_instances() -> Vec<(&'static str, Graph, ProcId)> {
    vec![
        ("chain(2)", generators::chain(2).unwrap(), ProcId(0)),
        ("chain(3), root end", generators::chain(3).unwrap(), ProcId(0)),
        ("chain(3), root middle", generators::chain(3).unwrap(), ProcId(1)),
        ("triangle = complete(3)", generators::complete(3).unwrap(), ProcId(0)),
    ]
}

/// Verdict-equality smoke across all reductions: panics (non-zero exit)
/// on any divergence from the exhaustive reference.
fn differential_reductions(opts: &Opts) {
    println!("reduction differential: verdicts must match the exhaustive reference\n");
    for (name, g, root) in tier1_instances() {
        let protocol = PifProtocol::new(root, &g);
        let space = StateSpace::new(g, protocol);
        let bound = 3 * u32::from(space.protocol().l_max()) + 3;
        let reference = opts.checker.with_reduction(Reduction::None);
        let ref_corr = reference.check_correction_bound(&space, bound);
        let ref_snap = reference.check_snap_safety(&space, true);
        let ref_wave = reference.check_snap_wave(&space, true);
        for red in Reduction::ALL {
            let c = opts.checker.with_reduction(red);
            let corr = c.check_correction_bound(&space, bound);
            let snap = c.check_snap_safety(&space, true);
            let wave = c.check_snap_wave(&space, true);
            assert_eq!(
                (ref_corr.violation_count, &ref_corr.violations),
                (corr.violation_count, &corr.violations),
                "{name}/{red}: correction verdict diverged"
            );
            assert_eq!(
                (ref_snap.violation_count, format!("{:?}", ref_snap.violations)),
                (snap.violation_count, format!("{:?}", snap.violations)),
                "{name}/{red}: snap verdict diverged"
            );
            assert_eq!(
                ref_wave.violation_count, wave.violation_count,
                "{name}/{red}: wave verdict diverged"
            );
            let red = red.to_string();
            println!(
                "{name:<24} {red:<9} corr {:>8} (x{:.2})  snap {:>8} (x{:.2})  wave {:>6} (x{:.2})",
                corr.states_explored,
                ref_corr.states_explored as f64 / corr.states_explored as f64,
                snap.states_explored,
                ref_snap.states_explored as f64 / snap.states_explored as f64,
                wave.states_explored,
                ref_wave.states_explored as f64 / wave.states_explored as f64,
            );
        }
    }
    // The mutant: every reduction must still flag the leaf-guard
    // ablation, with the exact reference report (two-phase fallback).
    let g = generators::chain(3).unwrap();
    let ablated = PifProtocol::new(ProcId(0), &g)
        .with_features(Features { leaf_guard: false, ..Features::paper() });
    let space = StateSpace::new(g, ablated);
    let reference = opts.checker.with_reduction(Reduction::None).check_snap_safety(&space, false);
    assert!(!reference.verified(), "the ablation must violate");
    for red in Reduction::ALL {
        let r = opts.checker.with_reduction(red).check_snap_safety(&space, false);
        assert!(!r.verified(), "{red}: reduction hid the leaf-guard bug");
        assert_eq!(reference.violation_count, r.violation_count, "{red}: mutant count diverged");
        assert_eq!(
            format!("{:?}", reference.violations),
            format!("{:?}", r.violations),
            "{red}: mutant examples diverged"
        );
    }
    println!(
        "\nmutant: leaf-guard ablation flagged by every reduction ({} violations)",
        reference.violation_count
    );
    println!("\nreduction differential OK");
}

/// `VmHWM` (peak resident set) of this process, in MiB.
fn vm_hwm_mb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kb| kb / 1024)
}

/// The spill-tier demonstration: chain(4) correction-bound product
/// search with a small visited-table budget, asserting the RSS
/// high-water mark stays under the ceiling.
fn spill_demo(opts: &Opts, ceiling_mb: Option<u64>) {
    /// Per-set visited budget: small enough to force frozen runs on
    /// chain(4)'s ~10^8-state search, large enough to keep probe traffic
    /// reasonable.
    const SPILL_BUDGET: usize = 512 << 20;
    let g = generators::chain(4).unwrap();
    let protocol = PifProtocol::new(ProcId(0), &g);
    let space = StateSpace::new(g, protocol);
    let bound = 3 * u32::from(space.protocol().l_max()) + 3;
    let checker = opts.checker.with_spill_budget(SPILL_BUDGET);
    let t0 = std::time::Instant::now();
    let r = checker.check_correction_bound(&space, bound);
    assert!(r.verified(), "Theorem 1 violated on chain(4): {:#?}", r.violations);
    let hwm = vm_hwm_mb();
    println!(
        "chain(4) T1 <= {bound} rounds under a {} MiB visited budget: states {}  VmHWM {hwm} MiB  ({:.1}s)",
        SPILL_BUDGET >> 20,
        r.states_explored,
        t0.elapsed().as_secs_f64()
    );
    if let Some(ceiling) = ceiling_mb {
        assert!(
            hwm <= ceiling,
            "RSS high-water mark {hwm} MiB exceeds the {ceiling} MiB ceiling"
        );
        println!("RSS ceiling OK ({hwm} <= {ceiling} MiB)");
    }
}

fn main() {
    let mut opts = Opts { checker: Checker::auto(), tier2: false };
    let mut differential = false;
    let mut spill = false;
    let mut rss_ceiling_mb: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tier2" => opts.tier2 = true,
            "--differential-reductions" => differential = true,
            "--spill-demo" => spill = true,
            "--rss-ceiling-mb" => {
                rss_ceiling_mb = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--rss-ceiling-mb requires a number"),
                );
            }
            "--workers" => {
                let w: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers requires a number");
                opts.checker = if w == 0 {
                    Checker::sequential().with_reduction(opts.checker.reduction())
                } else {
                    Checker::with_workers(w).with_reduction(opts.checker.reduction())
                };
            }
            "--reduction" => {
                let red = match args.next().as_deref() {
                    Some("none") => Reduction::None,
                    Some("por") => Reduction::Por,
                    Some("symmetry") => Reduction::Symmetry,
                    Some("full") => Reduction::Full,
                    other => panic!("--reduction requires none|por|symmetry|full, got {other:?}"),
                };
                opts.checker = opts.checker.with_reduction(red);
            }
            other => panic!(
                "unknown argument {other}; expected --tier2, --workers N, --reduction R, --differential-reductions, or --spill-demo [--rss-ceiling-mb N]"
            ),
        }
    }
    if differential {
        differential_reductions(&opts);
        return;
    }
    if spill {
        spill_demo(&opts, rss_ceiling_mb);
        return;
    }
    println!(
        "exhaustive snap-stabilization verification (every configuration, every daemon choice; {} engine, {} worker(s))\n",
        if opts.checker == Checker::sequential() { "sequential" } else { "parallel" },
        opts.checker.workers(),
    );
    for (name, g, root) in tier1_instances() {
        verify(name, g, root, true, true, &opts);
    }
    verify("chain(4), root end", generators::chain(4).unwrap(), ProcId(0), false, true, &opts);

    // Sensitivity: the checker must FIND the bug in the leaf-guard
    // ablation.
    let g = generators::chain(3).unwrap();
    let ablated = PifProtocol::new(ProcId(0), &g)
        .with_features(Features { leaf_guard: false, ..Features::paper() });
    let space = StateSpace::new(g, ablated);
    let report = opts.checker.check_snap_safety(&space, false);
    assert!(!report.verified(), "checker failed to find the known ablation bug");
    println!(
        "\nsensitivity check: leaf-guard ablation on chain(3) -> {} violation(s) found ({} retained), e.g. processors {:?} never received",
        report.violation_count,
        report.violations.len(),
        report.violations[0].not_received
    );

    if opts.tier2 {
        verify_tier2(&opts);
    }
    println!("\nall instances verified");
}
