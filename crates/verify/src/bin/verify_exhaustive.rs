//! E11 — exhaustive verification of snap-stabilization on tiny networks:
//! every configuration × every daemon choice, machine-checked.
//!
//! ```sh
//! cargo run --release -p pif-verify --bin verify_exhaustive
//! ```

use pif_core::{Features, PifProtocol};
use pif_graph::{generators, Graph, ProcId};
use pif_verify::StateSpace;

fn verify(name: &str, graph: Graph, root: ProcId, product: bool) {
    let t0 = std::time::Instant::now();
    let protocol = PifProtocol::new(root, &graph);
    let space = StateSpace::new(graph, protocol);
    print!("{name:<28} root {root}  configs {:>9}  ", space.config_count());
    if let Some(cfg) = space.check_no_deadlock() {
        println!("DEADLOCK FOUND: {cfg:?}");
        return;
    }
    let p1 = space.check_universal(pif_core::analysis::property1_holds);
    assert!(p1.is_none(), "Property 1 violated: {p1:?}");
    if product {
        // Theorem 1's round bound, exhaustively.
        let bound = 3 * u32::from(space.protocol().l_max()) + 3;
        let t1 = space.check_correction_bound(bound);
        assert!(t1.verified(), "Theorem 1 violated: {:#?}", t1.violations);
        print!("T1<= {bound} rounds OK  ");
    }
    if !product {
        println!(
            "no deadlock, Property 1 universal  (product search skipped)  ({:.1}s)",
            t0.elapsed().as_secs_f64()
        );
        return;
    }
    let report = space.check_snap_safety(true);
    println!(
        "states {:>10}  transitions {:>11}  {}  ({:.1}s)",
        report.states_explored,
        report.transitions,
        if report.verified() { "VERIFIED" } else { "VIOLATED" },
        t0.elapsed().as_secs_f64(),
    );
    assert!(report.verified(), "violations: {:#?}", report.violations);
}

fn main() {
    println!("exhaustive snap-stabilization verification (every configuration, every daemon choice)\n");
    verify("chain(2)", generators::chain(2).unwrap(), ProcId(0), true);
    verify("chain(3), root end", generators::chain(3).unwrap(), ProcId(0), true);
    verify("chain(3), root middle", generators::chain(3).unwrap(), ProcId(1), true);
    verify("triangle = complete(3)", generators::complete(3).unwrap(), ProcId(0), true);
    verify("chain(4), root end", generators::chain(4).unwrap(), ProcId(0), false);

    // Sensitivity: the checker must FIND the bug in the leaf-guard
    // ablation.
    let g = generators::chain(3).unwrap();
    let ablated = PifProtocol::new(ProcId(0), &g)
        .with_features(Features { leaf_guard: false, ..Features::paper() });
    let space = StateSpace::new(g, ablated);
    let report = space.check_snap_safety(false);
    assert!(!report.verified(), "checker failed to find the known ablation bug");
    println!(
        "\nsensitivity check: leaf-guard ablation on chain(3) -> {} violation(s) found, e.g. processors {:?} never received",
        report.violations.len(),
        report.violations[0].not_received
    );
    println!("\nall instances verified");
}
