//! E11 — exhaustive verification of snap-stabilization on tiny networks:
//! every configuration × every daemon choice, machine-checked.
//!
//! ```sh
//! cargo run --release -p pif-verify --bin verify_exhaustive
//! ```
//!
//! By default the fast instance set runs (everything up to the triangle
//! as a full product search, chain(4) scans only). `--tier2` adds the
//! large exhaustive instances gated in CI: chain(4) + ring(4)
//! correction-bound and chain(4) snap-safety product searches.
//! `--workers N` overrides the engine (N = 0 selects the sequential
//! reference engine).

use pif_core::{Features, PifProtocol};
use pif_graph::{generators, Graph, ProcId};
use pif_verify::{Checker, StateSpace};

struct Opts {
    checker: Checker,
    tier2: bool,
}

fn verify(name: &str, graph: Graph, root: ProcId, product: bool, scans: bool, opts: &Opts) {
    let t0 = std::time::Instant::now();
    let protocol = PifProtocol::new(root, &graph);
    let space = StateSpace::new(graph, protocol);
    let checker = opts.checker;
    print!("{name:<28} root {root}  configs {:>9}  ", space.config_count());
    if scans {
        if let Some(cfg) = checker.check_no_deadlock(&space) {
            println!("DEADLOCK FOUND: {cfg:?}");
            return;
        }
        let p1 = checker.check_universal(&space, pif_core::analysis::property1_holds);
        assert!(p1.is_none(), "Property 1 violated: {p1:?}");
    }
    if product {
        // Theorem 1's round bound, exhaustively.
        let bound = 3 * u32::from(space.protocol().l_max()) + 3;
        let t1 = checker.check_correction_bound(&space, bound);
        assert!(t1.verified(), "Theorem 1 violated: {:#?}", t1.violations);
        print!("T1<= {bound} rounds OK ({} states)  ", t1.states_explored);
    }
    if !product {
        println!(
            "no deadlock, Property 1 universal  (product search skipped)  ({:.1}s)",
            t0.elapsed().as_secs_f64()
        );
        return;
    }
    let report = checker.check_snap_safety(&space, true);
    println!(
        "states {:>10}  transitions {:>11}  {}  ({:.1}s)",
        report.states_explored,
        report.transitions,
        if report.verified() { "VERIFIED" } else { "VIOLATED" },
        t0.elapsed().as_secs_f64(),
    );
    assert!(report.verified(), "violations: {:#?}", report.violations);
}

/// Tier-2 large instances: one size class above the default set. Only
/// the product searches run here (the universal scans already cover
/// chain(4) in the default set; scans over ring(4)'s 7·10^7
/// configurations are cheap and included for completeness).
fn verify_tier2(opts: &Opts) {
    println!("\ntier-2 exhaustive coverage (one size class up):");

    // chain(4): Theorem 1 bound and full snap-safety product search.
    {
        let g = generators::chain(4).unwrap();
        let protocol = PifProtocol::new(ProcId(0), &g);
        let space = StateSpace::new(g, protocol);
        let bound = 3 * u32::from(space.protocol().l_max()) + 3;
        let t0 = std::time::Instant::now();
        let t1 = opts.checker.check_correction_bound(&space, bound);
        assert!(t1.verified(), "Theorem 1 violated on chain(4): {:#?}", t1.violations);
        println!(
            "chain(4) T1 <= {bound} rounds    states {:>11}  VERIFIED  ({:.1}s)",
            t1.states_explored,
            t0.elapsed().as_secs_f64()
        );
        let t0 = std::time::Instant::now();
        let snap = opts.checker.check_snap_safety(&space, true);
        assert!(snap.verified(), "snap safety violated on chain(4): {:#?}", snap.violations);
        println!(
            "chain(4) snap safety        states {:>11}  transitions {:>12}  VERIFIED  ({:.1}s)",
            snap.states_explored,
            snap.transitions,
            t0.elapsed().as_secs_f64()
        );
    }

    // ring(4): first tier-2 cyclic instance — exercises the
    // arbitrary-network (non-tree) B/F-correction paths under the
    // Theorem 1 bound.
    {
        let g = generators::ring(4).unwrap();
        let protocol = PifProtocol::new(ProcId(0), &g);
        let space = StateSpace::new(g, protocol);
        let bound = 3 * u32::from(space.protocol().l_max()) + 3;
        let t0 = std::time::Instant::now();
        let t1 = opts.checker.check_correction_bound(&space, bound);
        assert!(t1.verified(), "Theorem 1 violated on ring(4): {:#?}", t1.violations);
        println!(
            "ring(4)  T1 <= {bound} rounds   states {:>11}  VERIFIED  ({:.1}s)",
            t1.states_explored,
            t0.elapsed().as_secs_f64()
        );
    }
}

fn main() {
    let mut opts = Opts { checker: Checker::auto(), tier2: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tier2" => opts.tier2 = true,
            "--workers" => {
                let w: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers requires a number");
                opts.checker = if w == 0 { Checker::sequential() } else { Checker::with_workers(w) };
            }
            other => panic!("unknown argument {other}; expected --tier2 or --workers N"),
        }
    }
    println!(
        "exhaustive snap-stabilization verification (every configuration, every daemon choice; {} engine, {} worker(s))\n",
        if opts.checker == Checker::sequential() { "sequential" } else { "parallel" },
        opts.checker.workers(),
    );
    verify("chain(2)", generators::chain(2).unwrap(), ProcId(0), true, true, &opts);
    verify("chain(3), root end", generators::chain(3).unwrap(), ProcId(0), true, true, &opts);
    verify("chain(3), root middle", generators::chain(3).unwrap(), ProcId(1), true, true, &opts);
    verify("triangle = complete(3)", generators::complete(3).unwrap(), ProcId(0), true, true, &opts);
    verify("chain(4), root end", generators::chain(4).unwrap(), ProcId(0), false, true, &opts);

    // Sensitivity: the checker must FIND the bug in the leaf-guard
    // ablation.
    let g = generators::chain(3).unwrap();
    let ablated = PifProtocol::new(ProcId(0), &g)
        .with_features(Features { leaf_guard: false, ..Features::paper() });
    let space = StateSpace::new(g, ablated);
    let report = opts.checker.check_snap_safety(&space, false);
    assert!(!report.verified(), "checker failed to find the known ablation bug");
    println!(
        "\nsensitivity check: leaf-guard ablation on chain(3) -> {} violation(s) found ({} retained), e.g. processors {:?} never received",
        report.violation_count,
        report.violations.len(),
        report.violations[0].not_received
    );

    if opts.tier2 {
        verify_tier2(&opts);
    }
    println!("\nall instances verified");
}
