//! Tightness probe for Theorem 1: binary-search (downward scan) the
//! minimal round bound that exhaustively verifies on each tiny instance,
//! against the paper's `3·L_max + 3`.
//!
//! ```sh
//! cargo run --release -p pif-verify --bin verify_tightness
//! ```
use pif_core::PifProtocol;
use pif_graph::{generators, ProcId};
use pif_verify::StateSpace;
fn main() {
    for (name, g, root) in [
        ("chain(2)", generators::chain(2).unwrap(), ProcId(0)),
        ("chain(3)", generators::chain(3).unwrap(), ProcId(0)),
        ("triangle", generators::complete(3).unwrap(), ProcId(0)),
    ] {
        let proto = PifProtocol::new(root, &g);
        let paper = 3 * u32::from(proto.l_max()) + 3;
        let space = StateSpace::new(g, proto);
        let mut minimal = paper;
        for b in (1..=paper).rev() {
            if space.check_correction_bound(b).verified() {
                minimal = b;
            } else {
                break;
            }
        }
        println!("{name}: paper bound {paper}, minimal verified bound {minimal}");
    }
}
