//! Concurrency model tests for the sharded visited-set protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, which also rebuilds
//! `VisitedSet` itself on the loom-instrumented mutex (via
//! `pif_par::sync`), so these tests model-check the shipped shard
//! protocol, not a replica. The property under test is the one the
//! parallel searches' determinism proof leans on (`DESIGN.md` §11):
//! `VisitedSet::insert` returns `true` exactly once per distinct key,
//! across all threads and interleavings.

#![cfg(loom)]

use pif_par::sync::atomic::{AtomicUsize, Ordering};
use pif_par::sync::Arc;
use pif_verify::visited::VisitedSet;

#[test]
fn each_key_wins_exactly_once_across_racing_threads() {
    loom::model(|| {
        let set = Arc::new(VisitedSet::with_capacity(0));
        // Both threads insert the same key set, so every insert races.
        let keys: Vec<u128> = (0..6u128).map(|k| k << 23).collect();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (set, keys) = (Arc::clone(&set), keys.clone());
                loom::thread::spawn(move || {
                    keys.iter().filter(|&&k| set.insert(k)).count()
                })
            })
            .collect();
        let wins: usize =
            handles.into_iter().map(|h| h.join().expect("model thread panicked")).sum();
        assert_eq!(wins, 6, "each key must be claimed by exactly one thread");
        assert_eq!(set.len(), 6);
    });
}

#[test]
fn shard_growth_is_safe_under_contention() {
    loom::model(|| {
        let set = Arc::new(VisitedSet::with_capacity(0));
        let dups = Arc::new(AtomicUsize::new(0));
        // Dense keys force rehashes inside the shard lock while the other
        // thread hammers the same shards.
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let (set, dups) = (Arc::clone(&set), Arc::clone(&dups));
                loom::thread::spawn(move || {
                    for k in 0..24u128 {
                        if !set.insert(k * 7 + 1) && t == 0 {
                            dups.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked");
        }
        assert_eq!(set.len(), 24, "growth must not lose or duplicate keys");
    });
}
