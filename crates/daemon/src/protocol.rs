use std::fmt;

use pif_graph::{Graph, ProcId};
use serde::{Deserialize, Serialize};

/// Index of an action in a protocol's guarded-action list.
///
/// Actions are identified by their position in [`Protocol::action_names`];
/// the paper's `B-action`, `F-action`, … become `ActionId(0)`, `ActionId(1)`,
/// ….
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ActionId(pub usize);

impl ActionId {
    /// The action's position in the protocol's action list.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Phase of the paper's PIF wave that an action belongs to.
///
/// The PIF cycle is built from a broadcast wave (`B`), the normality
/// feedback wave (`Fok`), the feedback wave proper (`F`), and the cleaning
/// wave (`C`); the snap-stabilization proof additionally distinguishes the
/// correction actions that erase abnormal trees. Protocols map their
/// [`ActionId`]s onto these phases via [`Protocol::classify`] so that
/// observers (e.g. `MetricsObserver`) can attribute cost to the phase a
/// theorem actually bounds. Protocols outside the PIF family leave the
/// default implementation, which classifies everything as
/// [`PhaseTag::Other`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PhaseTag {
    /// Broadcast-wave actions (the paper's `B-action`, plus auxiliary
    /// broadcast bookkeeping such as the questioning counter).
    Broadcast,
    /// The normality-question wave (`Fok-action`).
    Fok,
    /// Feedback-wave actions (`F-action`).
    Feedback,
    /// Cleaning-wave actions (`C-action`).
    Cleaning,
    /// Correction actions erasing abnormal trees (`B-correction`,
    /// `F-correction`).
    Correction,
    /// Anything the protocol does not attribute to a PIF phase.
    Other,
}

impl PhaseTag {
    /// All tags, in [`PhaseTag::index`] order.
    pub const ALL: [PhaseTag; 6] = [
        PhaseTag::Broadcast,
        PhaseTag::Fok,
        PhaseTag::Feedback,
        PhaseTag::Cleaning,
        PhaseTag::Correction,
        PhaseTag::Other,
    ];

    /// Number of distinct tags (the size of per-phase counter arrays).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this tag, suitable for array-backed counters.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase name (`"broadcast"`, `"fok"`, …), stable across
    /// releases — used in trace files and bench reports.
    pub const fn name(self) -> &'static str {
        match self {
            PhaseTag::Broadcast => "broadcast",
            PhaseTag::Fok => "fok",
            PhaseTag::Feedback => "feedback",
            PhaseTag::Cleaning => "cleaning",
            PhaseTag::Correction => "correction",
            PhaseTag::Other => "other",
        }
    }
}

impl fmt::Display for PhaseTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A guarded-action protocol in the locally shared memory model.
///
/// A protocol is evaluated per processor: given a read-only [`View`] of the
/// processor's own state and its neighbors' states, [`enabled_actions`]
/// reports which guards hold, and [`execute`] computes the processor's next
/// state for one chosen action. Guard evaluation and execution against the
/// same configuration form one atomic step, exactly as in the paper's model.
///
/// Implementations must be *pure*: the same view must always produce the
/// same enabled set and the same successor state. The simulator relies on
/// this to evaluate all selected processors against the old configuration.
///
/// [`enabled_actions`]: Protocol::enabled_actions
/// [`execute`]: Protocol::execute
pub trait Protocol {
    /// Per-processor register state.
    type State: Clone + PartialEq + fmt::Debug;

    /// Names of the protocol's actions, indexed by [`ActionId`].
    fn action_names(&self) -> &'static [&'static str];

    /// Appends the identifiers of every action whose guard holds for the
    /// viewed processor. The order does not matter to the simulator; daemons
    /// may use it as a tie-breaking hint.
    fn enabled_actions(&self, view: View<'_, Self::State>, out: &mut Vec<ActionId>);

    /// Computes the viewed processor's next state under `action`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action`'s guard does not hold in
    /// `view`; the simulator only calls this for actions it was told are
    /// enabled.
    fn execute(&self, view: View<'_, Self::State>, action: ActionId) -> Self::State;

    /// Human-readable name of an action (falls back to the raw id).
    fn action_name(&self, action: ActionId) -> &'static str {
        self.action_names().get(action.index()).copied().unwrap_or("?")
    }

    /// Maps an action onto the PIF phase it implements, for phase-resolved
    /// observability. The default classifies every action as
    /// [`PhaseTag::Other`]; PIF-family protocols override this. Must be
    /// pure and total — observers precompute a per-action lookup table from
    /// it, so it is never called on the step path.
    fn classify(&self, action: ActionId) -> PhaseTag {
        let _ = action;
        PhaseTag::Other
    }
}

/// A processor's read-only window onto a configuration: its own state, its
/// neighbors' states, and the topology. This is the entire set of registers
/// the locally-shared-memory model lets a processor read.
#[derive(Clone, Copy)]
pub struct View<'a, S> {
    pid: ProcId,
    graph: &'a Graph,
    states: &'a [S],
}

impl<'a, S> View<'a, S> {
    /// Builds a view of processor `pid` over `states`.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the graph size or `pid` is out
    /// of range.
    pub fn new(graph: &'a Graph, states: &'a [S], pid: ProcId) -> Self {
        assert_eq!(graph.len(), states.len(), "state vector must match graph size");
        assert!(pid.index() < graph.len(), "processor out of range");
        View { pid, graph, states }
    }

    /// The viewed processor's identifier.
    #[inline]
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The network topology.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The viewed processor's own state.
    #[inline]
    pub fn me(&self) -> &'a S {
        &self.states[self.pid.index()]
    }

    /// The state of a specific processor.
    ///
    /// The model only permits reading neighbors (and oneself); callers in
    /// protocol code should restrict themselves accordingly. Analysis and
    /// checker code (which is outside the model) may read any processor.
    #[inline]
    pub fn state(&self, q: ProcId) -> &'a S {
        &self.states[q.index()]
    }

    /// The viewed processor's neighbor identifiers, in the local order
    /// `≻_p` (ascending [`ProcId`]).
    #[inline]
    pub fn neighbors(&self) -> pif_graph::Neighbors<'a> {
        self.graph.neighbors(self.pid)
    }

    /// The neighbors together with their states, in local order.
    ///
    /// Takes `self` by value (`View` is `Copy`) so the iterator borrows
    /// only the underlying configuration, not the view handle.
    pub fn neighbor_states(self) -> impl Iterator<Item = (ProcId, &'a S)> {
        let states = self.states;
        self.graph.neighbors(self.pid).map(move |q| (q, &states[q.index()]))
    }

    /// Degree of the viewed processor.
    #[inline]
    pub fn degree(&self) -> usize {
        self.graph.degree(self.pid)
    }

    /// Number of processors in the network (the paper's `N`, an input to
    /// the root's program).
    #[inline]
    pub fn network_size(&self) -> usize {
        self.graph.len()
    }
}

impl<S: fmt::Debug> fmt::Debug for View<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("View").field("pid", &self.pid).field("state", self.me()).finish()
    }
}

/// The per-step enabled-set snapshot handed to a [`crate::Daemon`].
///
/// Exposes which processors are enabled, which of their actions are enabled,
/// and (for state-aware adversarial daemons) the full configuration.
pub struct EnabledSet<'a, S> {
    graph: &'a Graph,
    states: &'a [S],
    /// `actions[p]` lists the enabled actions of processor `p` (possibly empty).
    actions: &'a [Vec<ActionId>],
    /// Processors with at least one enabled action, ascending.
    procs: &'a [ProcId],
    /// Zero-based index of the step about to be executed.
    step: u64,
}

impl<'a, S> EnabledSet<'a, S> {
    pub(crate) fn new(
        graph: &'a Graph,
        states: &'a [S],
        actions: &'a [Vec<ActionId>],
        procs: &'a [ProcId],
        step: u64,
    ) -> Self {
        EnabledSet { graph, states, actions, procs, step }
    }

    /// Processors with at least one enabled action, in ascending id order.
    #[inline]
    pub fn enabled_procs(&self) -> &'a [ProcId] {
        self.procs
    }

    /// The enabled actions of processor `p` (empty if `p` is disabled).
    #[inline]
    pub fn actions_of(&self, p: ProcId) -> &'a [ActionId] {
        &self.actions[p.index()]
    }

    /// Whether any processor is enabled.
    #[inline]
    pub fn is_terminal(&self) -> bool {
        self.procs.is_empty()
    }

    /// The configuration the step will be evaluated against.
    #[inline]
    pub fn states(&self) -> &'a [S] {
        self.states
    }

    /// The network topology.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Zero-based index of the computation step about to execute.
    #[inline]
    pub fn step(&self) -> u64 {
        self.step
    }
}

impl<S> fmt::Debug for EnabledSet<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnabledSet")
            .field("step", &self.step)
            .field("enabled", &self.procs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_graph::generators;

    #[test]
    fn view_exposes_local_window() {
        let g = generators::chain(3).unwrap();
        let states = vec![10, 20, 30];
        let v = View::new(&g, &states, ProcId(1));
        assert_eq!(*v.me(), 20);
        assert_eq!(v.degree(), 2);
        assert_eq!(v.network_size(), 3);
        let ns: Vec<_> = v.neighbor_states().collect();
        assert_eq!(ns, vec![(ProcId(0), &10), (ProcId(2), &30)]);
    }

    #[test]
    #[should_panic(expected = "state vector must match")]
    fn view_rejects_mismatched_states() {
        let g = generators::chain(3).unwrap();
        let states = vec![1, 2];
        let _ = View::new(&g, &states, ProcId(0));
    }

    #[test]
    fn action_id_display() {
        assert_eq!(ActionId(4).to_string(), "a4");
        assert_eq!(ActionId(4).index(), 4);
    }

    #[test]
    fn phase_tag_indexing_is_dense_and_stable() {
        for (i, tag) in PhaseTag::ALL.iter().enumerate() {
            assert_eq!(tag.index(), i);
        }
        assert_eq!(PhaseTag::COUNT, 6);
        assert_eq!(PhaseTag::Broadcast.to_string(), "broadcast");
        assert_eq!(PhaseTag::Correction.name(), "correction");
    }
}
