use std::cell::Cell;
use std::fmt;

use pif_graph::{Graph, ProcId};
use serde::{Deserialize, Serialize};

/// Index of an action in a protocol's guarded-action list.
///
/// Actions are identified by their position in [`Protocol::action_names`];
/// the paper's `B-action`, `F-action`, … become `ActionId(0)`, `ActionId(1)`,
/// ….
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ActionId(pub usize);

impl ActionId {
    /// The action's position in the protocol's action list.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Phase of the paper's PIF wave that an action belongs to.
///
/// The PIF cycle is built from a broadcast wave (`B`), the normality
/// feedback wave (`Fok`), the feedback wave proper (`F`), and the cleaning
/// wave (`C`); the snap-stabilization proof additionally distinguishes the
/// correction actions that erase abnormal trees. Protocols map their
/// [`ActionId`]s onto these phases via [`Protocol::classify`] so that
/// observers (e.g. `MetricsObserver`) can attribute cost to the phase a
/// theorem actually bounds. Protocols outside the PIF family leave the
/// default implementation, which classifies everything as
/// [`PhaseTag::Other`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PhaseTag {
    /// Broadcast-wave actions (the paper's `B-action`, plus auxiliary
    /// broadcast bookkeeping such as the questioning counter).
    Broadcast,
    /// The normality-question wave (`Fok-action`).
    Fok,
    /// Feedback-wave actions (`F-action`).
    Feedback,
    /// Cleaning-wave actions (`C-action`).
    Cleaning,
    /// Correction actions erasing abnormal trees (`B-correction`,
    /// `F-correction`).
    Correction,
    /// Anything the protocol does not attribute to a PIF phase.
    Other,
}

impl PhaseTag {
    /// All tags, in [`PhaseTag::index`] order.
    pub const ALL: [PhaseTag; 6] = [
        PhaseTag::Broadcast,
        PhaseTag::Fok,
        PhaseTag::Feedback,
        PhaseTag::Cleaning,
        PhaseTag::Correction,
        PhaseTag::Other,
    ];

    /// Number of distinct tags (the size of per-phase counter arrays).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this tag, suitable for array-backed counters.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase name (`"broadcast"`, `"fok"`, …), stable across
    /// releases — used in trace files and bench reports.
    pub const fn name(self) -> &'static str {
        match self {
            PhaseTag::Broadcast => "broadcast",
            PhaseTag::Fok => "fok",
            PhaseTag::Feedback => "feedback",
            PhaseTag::Cleaning => "cleaning",
            PhaseTag::Correction => "correction",
            PhaseTag::Other => "other",
        }
    }
}

impl fmt::Display for PhaseTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whose copy of a register an action accesses, in the locally shared
/// memory model: a processor may read its own registers and its
/// neighbors', and write **only its own**. [`ActionSpec`] declarations
/// range over these two scopes; a declared [`Scope::Neighbor`] *write*
/// is a model violation (`pif-analyze` diagnostic `AN001`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Scope {
    /// The acting processor's own register.
    Own,
    /// A register of some neighbor of the acting processor.
    Neighbor,
}

impl Scope {
    /// Short lowercase name (`"own"` / `"neighbor"`), stable for reports.
    pub const fn name(self) -> &'static str {
        match self {
            Scope::Own => "own",
            Scope::Neighbor => "neighbor",
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One register access (a scope plus a register name) in an
/// [`ActionSpec`] read- or write-set. Register names are
/// protocol-defined (e.g. `"phase"`, `"par"`, `"count"`); the wildcard
/// [`ActionSpec::WILDCARD`] matches every register of the scope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegAccess {
    /// Whose register.
    pub scope: Scope,
    /// Which register (or [`ActionSpec::WILDCARD`]).
    pub reg: &'static str,
}

impl RegAccess {
    /// An access to the acting processor's own register `reg`.
    pub const fn own(reg: &'static str) -> Self {
        RegAccess { scope: Scope::Own, reg }
    }

    /// An access to a neighbor's register `reg`.
    pub const fn neighbor(reg: &'static str) -> Self {
        RegAccess { scope: Scope::Neighbor, reg }
    }

    /// Whether this declaration covers an access to `(scope, reg)`.
    pub fn covers(&self, scope: Scope, reg: &str) -> bool {
        self.scope == scope && (self.reg == ActionSpec::WILDCARD || self.reg == reg)
    }
}

impl fmt::Display for RegAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.scope, self.reg)
    }
}

/// Which processor class an action's guard can hold for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Applicability {
    /// Root and non-root processors alike.
    Both,
    /// Only the root's program (Algorithm 1) contains the action.
    RootOnly,
    /// Only non-root programs (Algorithm 2) contain the action.
    NonRootOnly,
}

impl Applicability {
    /// Whether the action may be enabled at a processor of this class.
    pub const fn covers(self, is_root: bool) -> bool {
        match self {
            Applicability::Both => true,
            Applicability::RootOnly => is_root,
            Applicability::NonRootOnly => !is_root,
        }
    }

    /// Short stable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            Applicability::Both => "both",
            Applicability::RootOnly => "root-only",
            Applicability::NonRootOnly => "non-root-only",
        }
    }
}

/// Static metadata one action declares about itself: the structural
/// facts the paper's correctness argument rests on, made checkable.
///
/// * `reads` — every register (own and neighbors') the action's guard
///   *or* statement may depend on. The contract is **declared ⊇
///   observed**: `pif-analyze` cross-checks the declaration against an
///   instrumented view and against differential probing over the
///   register domains, so an under-declaration is caught, while
///   over-declaration merely loses precision.
/// * `writes` — every register the statement may assign. The locally
///   shared memory model restricts writes to [`Scope::Own`]; declaring a
///   neighbor write is rejected statically.
/// * `priority` — the action's guard-priority class. Two actions in the
///   same class must never be simultaneously enabled at one processor
///   (their guards are disjoint by construction); simultaneously enabled
///   actions of *different* classes are resolved by the class order
///   (smaller = higher priority). This is what "at most one action class
///   fires per processor" means statically.
/// * `phase` — the PIF phase the action implements; must agree with
///   [`Protocol::classify`]. Actions tagged [`PhaseTag::Correction`]
///   must be disabled in every view satisfying
///   [`Protocol::locally_normal`] (correction quiescence).
/// * `applicability` — whether the action belongs to the root's program,
///   the non-root program, or both.
#[derive(Clone, Copy, Debug)]
pub struct ActionSpec {
    /// The PIF phase this action implements.
    pub phase: PhaseTag,
    /// Guard-priority class (smaller = higher priority). Guards within
    /// one class must be pairwise disjoint.
    pub priority: u8,
    /// Which processor class the action applies to.
    pub applicability: Applicability,
    /// Declared read-set (own + neighbor registers), guard and statement
    /// combined. Must over-approximate the observed reads.
    pub reads: &'static [RegAccess],
    /// Declared write-set. Must be [`Scope::Own`] only.
    pub writes: &'static [RegAccess],
}

impl ActionSpec {
    /// Register name matching every register of its scope.
    pub const WILDCARD: &'static str = "*";

    /// The maximally conservative read declaration: everything in the
    /// local view (own registers plus all neighbors').
    pub const LOCAL_READS: &'static [RegAccess] =
        &[RegAccess::own(Self::WILDCARD), RegAccess::neighbor(Self::WILDCARD)];

    /// The maximally conservative *legal* write declaration: all own
    /// registers (the model forbids more).
    pub const OWN_WRITES: &'static [RegAccess] = &[RegAccess::own(Self::WILDCARD)];

    /// Whether the declared read-set covers a read of `(scope, reg)`.
    pub fn reads_reg(&self, scope: Scope, reg: &str) -> bool {
        self.reads.iter().any(|a| a.covers(scope, reg))
    }

    /// Whether the declared write-set covers a write of `(scope, reg)`.
    pub fn writes_reg(&self, scope: Scope, reg: &str) -> bool {
        self.writes.iter().any(|a| a.covers(scope, reg))
    }
}

/// Records which processors' registers a [`View`] actually read, for the
/// analyzer's spy-view cross-check (declared read-set ⊇ observed reads).
///
/// The probe works at *processor* granularity — a set bit means "some
/// register of that processor was read". Register-granular dependencies
/// are recovered separately by differential probing over the register
/// domains; the probe's role is to catch reads of processors outside the
/// local window (own + neighbors), which no declaration can legalize.
///
/// Uses a `u64` bitmask, so spied views are limited to networks of at
/// most 64 processors — far above anything the small-domain enumeration
/// visits.
#[derive(Debug, Default)]
pub struct ReadProbe {
    mask: Cell<u64>,
}

impl ReadProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        ReadProbe::default()
    }

    /// Clears all recorded reads (reuse between evaluations).
    #[inline]
    pub fn clear(&self) {
        self.mask.set(0);
    }

    /// Marks processor `q` as read.
    #[inline]
    pub fn mark(&self, q: ProcId) {
        debug_assert!(q.index() < 64, "ReadProbe supports at most 64 processors");
        self.mask.set(self.mask.get() | 1u64 << q.index());
    }

    /// Whether any register of processor `q` was read.
    #[inline]
    pub fn was_read(&self, q: ProcId) -> bool {
        self.mask.get() & (1u64 << q.index()) != 0
    }

    /// The raw bitmask of processors read (bit `i` ⇔ processor `i`).
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask.get()
    }
}

/// A guarded-action protocol in the locally shared memory model.
///
/// A protocol is evaluated per processor: given a read-only [`View`] of the
/// processor's own state and its neighbors' states, [`enabled_actions`]
/// reports which guards hold, and [`execute`] computes the processor's next
/// state for one chosen action. Guard evaluation and execution against the
/// same configuration form one atomic step, exactly as in the paper's model.
///
/// Implementations must be *pure*: the same view must always produce the
/// same enabled set and the same successor state. The simulator relies on
/// this to evaluate all selected processors against the old configuration.
///
/// [`enabled_actions`]: Protocol::enabled_actions
/// [`execute`]: Protocol::execute
pub trait Protocol {
    /// Per-processor register state.
    type State: Clone + PartialEq + fmt::Debug;

    /// Names of the protocol's actions, indexed by [`ActionId`].
    fn action_names(&self) -> &'static [&'static str];

    /// Appends the identifiers of every action whose guard holds for the
    /// viewed processor. The order does not matter to the simulator; daemons
    /// may use it as a tie-breaking hint.
    fn enabled_actions(&self, view: View<'_, Self::State>, out: &mut Vec<ActionId>);

    /// Computes the viewed processor's next state under `action`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action`'s guard does not hold in
    /// `view`; the simulator only calls this for actions it was told are
    /// enabled.
    fn execute(&self, view: View<'_, Self::State>, action: ActionId) -> Self::State;

    /// Human-readable name of an action (falls back to the raw id).
    fn action_name(&self, action: ActionId) -> &'static str {
        self.action_names().get(action.index()).copied().unwrap_or("?")
    }

    /// Maps an action onto the PIF phase it implements, for phase-resolved
    /// observability. The default classifies every action as
    /// [`PhaseTag::Other`]; PIF-family protocols override this. Must be
    /// pure and total — observers precompute a per-action lookup table from
    /// it, so it is never called on the step path.
    fn classify(&self, action: ActionId) -> PhaseTag {
        let _ = action;
        PhaseTag::Other
    }

    /// Static metadata for one action: declared read/write sets, priority
    /// class, phase, and root/non-root applicability. See [`ActionSpec`]
    /// for the contract the analyzer enforces.
    ///
    /// The default is the maximally conservative declaration (reads the
    /// whole local view, writes all own registers, every action in its own
    /// priority class, phase from [`Protocol::classify`]) — always sound,
    /// but too coarse for the interference analysis to say anything
    /// useful. Protocols opting into static analysis override this *and*
    /// [`Protocol::has_action_specs`].
    fn action_spec(&self, action: ActionId) -> ActionSpec {
        ActionSpec {
            phase: self.classify(action),
            priority: action.index().min(u8::MAX as usize) as u8,
            applicability: Applicability::Both,
            reads: ActionSpec::LOCAL_READS,
            writes: ActionSpec::OWN_WRITES,
        }
    }

    /// Whether [`Protocol::action_spec`] returns real per-action
    /// declarations rather than the conservative default. The analyzer
    /// refuses to certify a protocol that has not opted in.
    fn has_action_specs(&self) -> bool {
        false
    }

    /// Names of the per-processor registers the action specs refer to,
    /// in a stable order. Protocols opting into static analysis override
    /// this alongside [`Protocol::action_spec`]; consumers treat the
    /// default (empty) as "spec surface unavailable" — e.g. `pif-verify`
    /// falls back to the conservative radius-1 interference premise
    /// instead of deriving one from an empty
    /// [`InterferenceGraph`](crate::InterferenceGraph).
    fn register_names(&self) -> &'static [&'static str] {
        &[]
    }

    /// Whether the viewed processor is *locally normal*: no correction
    /// action should be enabled for it. The analyzer checks correction
    /// quiescence against this predicate — every view satisfying it must
    /// have all [`PhaseTag::Correction`] actions disabled. The default
    /// (`true` everywhere) is only appropriate for protocols without
    /// correction actions.
    fn locally_normal(&self, view: View<'_, Self::State>) -> bool {
        let _ = view;
        true
    }
}

/// A processor's read-only window onto a configuration: its own state, its
/// neighbors' states, and the topology. This is the entire set of registers
/// the locally-shared-memory model lets a processor read.
pub struct View<'a, S> {
    pid: ProcId,
    graph: &'a Graph,
    states: &'a [S],
    /// When set, every state access is recorded (analyzer spy views only;
    /// `None` on the simulator/checker hot paths).
    probe: Option<&'a ReadProbe>,
}

// Manual impls: a view only holds references, so it is copyable even when
// `S` itself is not (the derive would demand `S: Copy`).
impl<S> Clone for View<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S> Copy for View<'_, S> {}

impl<'a, S> View<'a, S> {
    /// Builds a view of processor `pid` over `states`.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the graph size or `pid` is out
    /// of range.
    pub fn new(graph: &'a Graph, states: &'a [S], pid: ProcId) -> Self {
        assert_eq!(graph.len(), states.len(), "state vector must match graph size");
        assert!(pid.index() < graph.len(), "processor out of range");
        View { pid, graph, states, probe: None }
    }

    /// Builds a view whose state accesses are recorded in `probe`, for the
    /// analyzer's observed-read cross-check. Protocol code cannot tell a
    /// spied view from a plain one.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`View::new`], and additionally
    /// if the network exceeds the probe's 64-processor capacity.
    pub fn spied(graph: &'a Graph, states: &'a [S], pid: ProcId, probe: &'a ReadProbe) -> Self {
        assert!(graph.len() <= 64, "spied views support at most 64 processors");
        let mut v = View::new(graph, states, pid);
        v.probe = Some(probe);
        v
    }

    /// The viewed processor's identifier.
    #[inline]
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The network topology.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The viewed processor's own state.
    #[inline]
    pub fn me(&self) -> &'a S {
        if let Some(probe) = self.probe {
            probe.mark(self.pid);
        }
        &self.states[self.pid.index()]
    }

    /// The state of a specific processor.
    ///
    /// The model only permits reading neighbors (and oneself); callers in
    /// protocol code should restrict themselves accordingly. Analysis and
    /// checker code (which is outside the model) may read any processor.
    #[inline]
    pub fn state(&self, q: ProcId) -> &'a S {
        if let Some(probe) = self.probe {
            probe.mark(q);
        }
        &self.states[q.index()]
    }

    /// The viewed processor's neighbor identifiers, in the local order
    /// `≻_p` (ascending [`ProcId`]).
    #[inline]
    pub fn neighbors(&self) -> pif_graph::Neighbors<'a> {
        self.graph.neighbors(self.pid)
    }

    /// The neighbors together with their states, in local order.
    ///
    /// Takes `self` by value (`View` is `Copy`) so the iterator borrows
    /// only the underlying configuration, not the view handle.
    pub fn neighbor_states(self) -> impl Iterator<Item = (ProcId, &'a S)> {
        let states = self.states;
        let probe = self.probe;
        self.graph.neighbors(self.pid).map(move |q| {
            if let Some(probe) = probe {
                probe.mark(q);
            }
            (q, &states[q.index()])
        })
    }

    /// Degree of the viewed processor.
    #[inline]
    pub fn degree(&self) -> usize {
        self.graph.degree(self.pid)
    }

    /// Number of processors in the network (the paper's `N`, an input to
    /// the root's program).
    #[inline]
    pub fn network_size(&self) -> usize {
        self.graph.len()
    }
}

impl<S: fmt::Debug> fmt::Debug for View<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("View").field("pid", &self.pid).field("state", self.me()).finish()
    }
}

/// The per-step enabled-set snapshot handed to a [`crate::Daemon`].
///
/// Exposes which processors are enabled, which of their actions are enabled,
/// and (for state-aware adversarial daemons) the full configuration.
pub struct EnabledSet<'a, S> {
    graph: &'a Graph,
    states: &'a [S],
    /// `actions[p]` lists the enabled actions of processor `p` (possibly empty).
    actions: &'a [Vec<ActionId>],
    /// Processors with at least one enabled action, ascending.
    procs: &'a [ProcId],
    /// Zero-based index of the step about to be executed.
    step: u64,
}

impl<'a, S> EnabledSet<'a, S> {
    /// Builds a snapshot from externally maintained bookkeeping.
    ///
    /// [`crate::Simulator`] constructs these internally; alternative step
    /// engines (e.g. a packed structure-of-arrays backend) that keep their
    /// own enabled-set bookkeeping use this constructor to hand the same
    /// daemon-facing view to an unmodified [`crate::Daemon`].
    /// `actions` must have one (possibly empty) entry per processor, and
    /// `procs` must list exactly the processors with a non-empty entry, in
    /// ascending id order.
    pub fn new(
        graph: &'a Graph,
        states: &'a [S],
        actions: &'a [Vec<ActionId>],
        procs: &'a [ProcId],
        step: u64,
    ) -> Self {
        EnabledSet { graph, states, actions, procs, step }
    }

    /// Processors with at least one enabled action, in ascending id order.
    #[inline]
    pub fn enabled_procs(&self) -> &'a [ProcId] {
        self.procs
    }

    /// The enabled actions of processor `p` (empty if `p` is disabled).
    #[inline]
    pub fn actions_of(&self, p: ProcId) -> &'a [ActionId] {
        &self.actions[p.index()]
    }

    /// Whether any processor is enabled.
    #[inline]
    pub fn is_terminal(&self) -> bool {
        self.procs.is_empty()
    }

    /// The configuration the step will be evaluated against.
    #[inline]
    pub fn states(&self) -> &'a [S] {
        self.states
    }

    /// The network topology.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Zero-based index of the computation step about to execute.
    #[inline]
    pub fn step(&self) -> u64 {
        self.step
    }
}

impl<S> fmt::Debug for EnabledSet<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnabledSet")
            .field("step", &self.step)
            .field("enabled", &self.procs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_graph::generators;

    #[test]
    fn view_exposes_local_window() {
        let g = generators::chain(3).unwrap();
        let states = vec![10, 20, 30];
        let v = View::new(&g, &states, ProcId(1));
        assert_eq!(*v.me(), 20);
        assert_eq!(v.degree(), 2);
        assert_eq!(v.network_size(), 3);
        let ns: Vec<_> = v.neighbor_states().collect();
        assert_eq!(ns, vec![(ProcId(0), &10), (ProcId(2), &30)]);
    }

    #[test]
    #[should_panic(expected = "state vector must match")]
    fn view_rejects_mismatched_states() {
        let g = generators::chain(3).unwrap();
        let states = vec![1, 2];
        let _ = View::new(&g, &states, ProcId(0));
    }

    #[test]
    fn action_id_display() {
        assert_eq!(ActionId(4).to_string(), "a4");
        assert_eq!(ActionId(4).index(), 4);
    }

    #[test]
    fn phase_tag_indexing_is_dense_and_stable() {
        for (i, tag) in PhaseTag::ALL.iter().enumerate() {
            assert_eq!(tag.index(), i);
        }
        assert_eq!(PhaseTag::COUNT, 6);
        assert_eq!(PhaseTag::Broadcast.to_string(), "broadcast");
        assert_eq!(PhaseTag::Correction.name(), "correction");
    }

    #[test]
    fn reg_access_wildcard_covers_any_register() {
        const WRITES: &[RegAccess] = &[RegAccess::own("phase")];
        let spec = ActionSpec {
            phase: PhaseTag::Broadcast,
            priority: 1,
            applicability: Applicability::Both,
            reads: ActionSpec::LOCAL_READS,
            writes: WRITES,
        };
        assert!(spec.reads_reg(Scope::Own, "phase"));
        assert!(spec.reads_reg(Scope::Neighbor, "anything"));
        assert!(spec.writes_reg(Scope::Own, "phase"));
        assert!(!spec.writes_reg(Scope::Own, "count"));
        assert!(!spec.writes_reg(Scope::Neighbor, "phase"));
        assert_eq!(RegAccess::neighbor("par").to_string(), "neighbor.par");
    }

    #[test]
    fn applicability_covers_processor_classes() {
        assert!(Applicability::Both.covers(true) && Applicability::Both.covers(false));
        assert!(Applicability::RootOnly.covers(true) && !Applicability::RootOnly.covers(false));
        assert!(!Applicability::NonRootOnly.covers(true));
        assert!(Applicability::NonRootOnly.covers(false));
    }

    #[test]
    fn spied_view_records_reads() {
        let g = generators::chain(3).unwrap();
        let states = vec![10, 20, 30];
        let probe = ReadProbe::new();
        let v = View::spied(&g, &states, ProcId(1), &probe);
        assert_eq!(probe.mask(), 0);
        let _ = v.me();
        assert!(probe.was_read(ProcId(1)) && !probe.was_read(ProcId(0)));
        let _: Vec<_> = v.neighbor_states().collect();
        assert!(probe.was_read(ProcId(0)) && probe.was_read(ProcId(2)));
        probe.clear();
        assert_eq!(probe.mask(), 0);
        let _ = v.state(ProcId(2));
        assert_eq!(probe.mask(), 1 << 2);
    }

    #[test]
    fn plain_view_has_no_probe_overhead_path() {
        let g = generators::chain(2).unwrap();
        let states = vec![1, 2];
        let v = View::new(&g, &states, ProcId(0));
        // No probe: accessors work and nothing is recorded anywhere.
        assert_eq!(*v.me(), 1);
        assert_eq!(*v.state(ProcId(1)), 2);
    }
}
