//! Execution model substrate for the snap-stabilizing PIF reproduction.
//!
//! The paper (Section 2) works in the *locally shared memory* model:
//!
//! * every processor owns a set of registers; it may read its own registers
//!   and those of its neighbors, and write only its own;
//! * a protocol is a finite set of guarded actions
//!   `⟨label⟩ :: ⟨guard⟩ → ⟨statement⟩`; evaluating a guard and executing the
//!   corresponding statement is one atomic step;
//! * at each computation step a **distributed daemon** chooses a non-empty
//!   subset of the enabled processors; all chosen processors execute one
//!   enabled action simultaneously, with every guard evaluated against the
//!   *old* configuration;
//! * the daemon is **weakly fair**: a continuously enabled processor is
//!   eventually chosen;
//! * time is measured in **rounds** (Dolev, Israeli, Moran): the first round
//!   of a computation is its minimal prefix in which every processor that was
//!   continuously enabled from the first configuration executes an action —
//!   a protocol action or the *disable action* (becoming disabled because a
//!   neighbor moved).
//!
//! This crate implements exactly that model:
//!
//! * [`Protocol`] — a guarded-action program, evaluated over a [`View`] of a
//!   processor's own and neighboring states;
//! * [`Simulator`] — drives a protocol over a [`pif_graph::Graph`] under a
//!   chosen [`Daemon`], with [`rounds::RoundCounter`] accounting;
//! * [`daemons`] — synchronous, central, randomized-distributed and
//!   adversarial (but weakly fair) daemon strategies;
//! * [`trace`] — step-by-step execution recording for debugging and for the
//!   invariant monitors in `pif-core`.
//!
//! # Examples
//!
//! A one-register "maximum propagation" protocol, simulated to fixpoint:
//!
//! ```
//! use pif_daemon::{ActionId, Daemon, NoOpObserver, Protocol, RunLimits, Simulator,
//!     StopPolicy, View};
//! use pif_daemon::daemons::Synchronous;
//! use pif_graph::generators;
//!
//! struct MaxProto;
//!
//! impl Protocol for MaxProto {
//!     type State = u32;
//!     fn action_names(&self) -> &'static [&'static str] {
//!         &["adopt-max"]
//!     }
//!     fn enabled_actions(&self, view: View<'_, u32>, out: &mut Vec<ActionId>) {
//!         let best = view.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0);
//!         if best > *view.me() {
//!             out.push(ActionId(0));
//!         }
//!     }
//!     fn execute(&self, view: View<'_, u32>, _a: ActionId) -> u32 {
//!         view.neighbor_states().map(|(_, &s)| s).max().unwrap()
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::chain(5)?;
//! let init = vec![3, 0, 9, 0, 1];
//! let mut sim = Simulator::new(g, MaxProto, init);
//! let stats = sim.run(
//!     &mut Synchronous::first_action(),
//!     &mut NoOpObserver,
//!     StopPolicy::Fixpoint(RunLimits::default()),
//! )?;
//! assert!(sim.states().iter().all(|&s| s == 9));
//! assert!(stats.rounds <= 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
pub mod daemons;
mod error;
pub mod fairness;
pub mod interference;
pub mod json;
pub mod metrics;
mod protocol;
pub mod rounds;
mod sim;
pub mod trace;
pub mod trace_io;

pub use error::SimError;
pub use interference::{InterferenceEdge, InterferenceGraph};
pub use metrics::{LatencyHistogram, MetricsObserver, PhaseReport};
pub use protocol::{
    ActionId, ActionSpec, Applicability, EnabledSet, PhaseTag, Protocol, ReadProbe, RegAccess,
    Scope, View,
};
pub use sim::{
    Fanout, NoOpObserver, Observer, RunLimits, RunStats, SimBuilder, Simulator, StepDelta,
    StepReport, StopPolicy,
};
pub use trace_io::{RecordedTrace, TraceError, TraceRecorder, TraceState};

/// A daemon: the adversary/scheduler choosing, at every computation step, a
/// non-empty subset of the enabled processors (and for each chosen processor,
/// which of its enabled actions to execute).
///
/// Implementations must uphold the model's contract:
///
/// * the selection is a subset of the processors reported enabled;
/// * every selected processor is paired with one of *its* enabled actions;
/// * the selection is non-empty whenever any processor is enabled;
/// * **weak fairness** — a processor that remains enabled forever must
///   eventually be selected. All daemons in [`daemons`] satisfy this (the
///   adversarial ones via an explicit fairness bound).
///
/// The simulator validates the first three properties defensively and
/// reports violations as [`SimError::InvalidSelection`].
pub trait Daemon<S> {
    /// Chooses the processors (and actions) to execute this step, appending
    /// `(processor, action)` pairs to `out`. `out` is empty on entry.
    fn select(&mut self, enabled: &EnabledSet<'_, S>, out: &mut Vec<(pif_graph::ProcId, ActionId)>);

    /// Short human-readable strategy name (used in experiment reports).
    fn name(&self) -> &'static str {
        "daemon"
    }
}
