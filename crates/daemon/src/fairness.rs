//! Post-hoc weak-fairness auditing.
//!
//! The paper's daemon is *weakly fair*: a continuously enabled processor
//! is eventually chosen. Every daemon shipped in [`crate::daemons`]
//! guarantees this by construction, but custom daemons (and the
//! adversarial ones, whose fairness relies on an explicit bound) deserve
//! independent checking. [`FairnessAuditor`] observes an execution and
//! records, for every processor, the longest streak of consecutive steps
//! in which it was continuously enabled without being selected — an
//! execution is weakly fair in practice iff those streaks stay bounded.

use pif_graph::{Graph, ProcId};

use crate::{Observer, Protocol, StepDelta, View};

/// Observer measuring continuous-enabled starvation streaks.
///
/// # Examples
///
/// ```
/// use pif_daemon::fairness::FairnessAuditor;
/// use pif_daemon::daemons::CentralSequential;
/// use pif_daemon::{ActionId, Protocol, RunLimits, Simulator, StopPolicy, View};
/// use pif_graph::generators;
///
/// struct Dec;
/// impl Protocol for Dec {
///     type State = u8;
///     fn action_names(&self) -> &'static [&'static str] { &["dec"] }
///     fn enabled_actions(&self, v: View<'_, u8>, out: &mut Vec<ActionId>) {
///         if *v.me() > 0 { out.push(ActionId(0)); }
///     }
///     fn execute(&self, v: View<'_, u8>, _: ActionId) -> u8 { *v.me() - 1 }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::ring(4)?;
/// let mut sim = Simulator::new(g, Dec, vec![3; 4]);
/// let mut audit = FairnessAuditor::new(Dec);
/// sim.run(
///     &mut CentralSequential::new(), &mut audit,
///     StopPolicy::Fixpoint(RunLimits::default()))?;
/// // Round-robin over 4 processors: nobody waits more than 4 steps.
/// assert!(audit.max_streak() <= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FairnessAuditor<P: Protocol> {
    protocol: P,
    /// Current continuous-enabled-without-execution streak per processor.
    streak: Vec<u64>,
    /// Longest streak ever observed per processor.
    max_streak: Vec<u64>,
    steps: u64,
}

impl<P: Protocol> FairnessAuditor<P> {
    /// Creates an auditor evaluating enabledness with `protocol`.
    pub fn new(protocol: P) -> Self {
        FairnessAuditor { protocol, streak: Vec::new(), max_streak: Vec::new(), steps: 0 }
    }

    /// The longest starvation streak observed for any processor.
    pub fn max_streak(&self) -> u64 {
        self.max_streak.iter().copied().max().unwrap_or(0)
    }

    /// The longest starvation streak observed for processor `p`.
    pub fn streak_of(&self, p: ProcId) -> u64 {
        self.max_streak.get(p.index()).copied().unwrap_or(0)
    }

    /// Steps audited.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether every streak stayed within `bound` — the execution was
    /// `bound`-fair.
    pub fn is_fair_within(&self, bound: u64) -> bool {
        self.max_streak() <= bound
    }
}

impl<P: Protocol> Observer<P> for FairnessAuditor<P> {
    // Starvation is judged against the configuration the daemon chose
    // from, so the auditor needs the complete pre-step configuration and
    // accepts the per-step copy that entails.
    fn needs_full_before(&self) -> bool {
        true
    }

    fn step(&mut self, graph: &Graph, delta: &StepDelta<'_, P>, _after: &[P::State]) {
        let before = delta.before().expect("auditor requested the full before-configuration");
        let executed = delta.executed();
        let n = graph.len();
        if self.streak.len() != n {
            self.streak = vec![0; n];
            self.max_streak = vec![0; n];
        }
        self.steps += 1;
        // A processor accrues starvation if it was enabled in the
        // configuration the daemon chose from (`before`) and was not
        // selected.
        let mut buf = Vec::new();
        for p in graph.procs() {
            buf.clear();
            self.protocol.enabled_actions(View::new(graph, before, p), &mut buf);
            let was_enabled = !buf.is_empty();
            let was_selected = executed.iter().any(|&(q, _)| q == p);
            if was_selected || !was_enabled {
                self.streak[p.index()] = 0;
            } else {
                self.streak[p.index()] += 1;
                self.max_streak[p.index()] =
                    self.max_streak[p.index()].max(self.streak[p.index()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::{AdversarialLifo, CentralSequential, Synchronous};
    use crate::{ActionId, RunLimits, Simulator};
    use pif_graph::generators;

    struct Dec;
    impl Protocol for Dec {
        type State = u8;
        fn action_names(&self) -> &'static [&'static str] {
            &["dec"]
        }
        fn enabled_actions(&self, v: View<'_, u8>, out: &mut Vec<ActionId>) {
            if *v.me() > 0 {
                out.push(ActionId(0));
            }
        }
        fn execute(&self, v: View<'_, u8>, _: ActionId) -> u8 {
            *v.me() - 1
        }
    }

    fn audit(daemon: &mut dyn crate::Daemon<u8>) -> FairnessAuditor<Dec> {
        let g = generators::ring(5).unwrap();
        let mut sim = Simulator::new(g, Dec, vec![4; 5]);
        let mut auditor = FairnessAuditor::new(Dec);
        sim.run(daemon, &mut auditor, crate::StopPolicy::Fixpoint(RunLimits::default()))
            .unwrap();
        auditor
    }

    #[test]
    fn synchronous_daemon_never_starves() {
        let a = audit(&mut Synchronous::first_action());
        assert_eq!(a.max_streak(), 0);
    }

    #[test]
    fn round_robin_starves_at_most_n_minus_1() {
        let a = audit(&mut CentralSequential::new());
        assert!(a.max_streak() <= 4, "streak {}", a.max_streak());
        assert!(a.max_streak() > 0, "a central daemon necessarily delays someone");
    }

    #[test]
    fn adversary_respects_its_fairness_bound() {
        let bound = 12;
        let a = audit(&mut AdversarialLifo::new(bound, 3));
        assert!(
            a.is_fair_within(bound),
            "adversary exceeded its own bound: {}",
            a.max_streak()
        );
    }
}
