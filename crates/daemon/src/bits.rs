//! Fixed-capacity bitsets backing the simulator's incremental enabled-set
//! bookkeeping and the round counter's pending set.
//!
//! The hot loop needs O(1) membership updates, an O(capacity/64) bulk
//! copy for round re-seeding, and iteration proportional to the number of
//! set bits (plus the word scan) — all without allocating after
//! construction.

/// A set of `usize` keys below a fixed capacity, with a tracked count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    count: usize,
}

impl BitSet {
    /// An empty set over keys `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], count: 0 }
    }

    /// Number of elements currently in the set.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Inserts `i`; true if it was absent.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let absent = self.words[w] & m == 0;
        if absent {
            self.words[w] |= m;
            self.count += 1;
        }
        absent
    }

    /// Removes `i`; true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let present = self.words[w] & m != 0;
        if present {
            self.words[w] &= !m;
            self.count -= 1;
        }
        present
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Makes `self` an exact copy of `other` (same capacity required).
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words.copy_from_slice(&other.words);
        self.count = other.count;
    }

    /// The elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert_eq!(s.count(), 2);
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = BitSet::new(200);
        for i in [5usize, 64, 63, 199, 128, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 128, 199]);
    }

    #[test]
    fn copy_from_replicates() {
        let mut a = BitSet::new(100);
        a.insert(3);
        a.insert(77);
        let mut b = BitSet::new(100);
        b.insert(50);
        b.copy_from(&a);
        assert_eq!(b, a);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(4);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(!s.contains(4));
    }
}
