use std::error::Error;
use std::fmt;

use pif_graph::ProcId;

use crate::ActionId;

/// Error produced while running a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The run exceeded its step budget before the target predicate held.
    MaxStepsExceeded {
        /// Steps executed.
        steps: u64,
        /// Rounds completed.
        rounds: u64,
    },
    /// The run exceeded its round budget before the target predicate held.
    MaxRoundsExceeded {
        /// Steps executed.
        steps: u64,
        /// Rounds completed.
        rounds: u64,
    },
    /// The daemon produced an invalid selection (disabled processor, action
    /// not enabled, duplicate processor, or empty selection while processors
    /// were enabled). This indicates a daemon bug, not a protocol property.
    InvalidSelection {
        /// Explanation of the violation.
        reason: String,
        /// The offending processor, when identifiable.
        proc: Option<ProcId>,
        /// The offending action, when identifiable.
        action: Option<ActionId>,
    },
    /// A builder was finalized without an initial configuration.
    MissingStates,
    /// The initial configuration does not cover every processor.
    StateCountMismatch {
        /// Processors in the graph.
        expected: usize,
        /// States provided.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MaxStepsExceeded { steps, rounds } => {
                write!(f, "step budget exhausted after {steps} steps ({rounds} rounds)")
            }
            SimError::MaxRoundsExceeded { steps, rounds } => {
                write!(f, "round budget exhausted after {rounds} rounds ({steps} steps)")
            }
            SimError::InvalidSelection { reason, proc, action } => {
                write!(f, "daemon produced an invalid selection: {reason}")?;
                if let Some(p) = proc {
                    write!(f, " (processor {p}")?;
                    if let Some(a) = action {
                        write!(f, ", action {a}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            SimError::MissingStates => {
                write!(f, "an initial configuration is required (states/states_with)")
            }
            SimError::StateCountMismatch { expected, got } => {
                write!(f, "initial configuration has {got} states for {expected} processors")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::MaxStepsExceeded { steps: 10, rounds: 2 };
        assert!(e.to_string().contains("10 steps"));
        let e = SimError::InvalidSelection {
            reason: "processor not enabled".into(),
            proc: Some(ProcId(3)),
            action: Some(ActionId(1)),
        };
        assert!(e.to_string().contains("p3"));
        assert!(e.to_string().contains("a1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<SimError>();
    }
}
