//! Daemon (scheduler/adversary) strategies.
//!
//! The paper's correctness claims quantify over *every* weakly fair
//! distributed daemon. This module provides the strategies the experiment
//! harness uses to approximate that quantification:
//!
//! * [`Synchronous`] — every enabled processor moves each step; rounds and
//!   steps coincide. The classical worst case for round *lower* bounds.
//! * [`CentralSequential`] / [`CentralRandom`] — exactly one processor per
//!   step (central daemon), round-robin or uniformly random.
//! * [`DistributedRandom`] — every enabled processor moves independently
//!   with probability `p` (at least one always moves); weakly fair with
//!   probability 1.
//! * [`AdversarialLifo`] — a *state-agnostic greedy adversary*: prefers the
//!   most recently enabled processors, starving long-enabled ones for as
//!   long as its explicit fairness bound allows. Weak fairness is enforced
//!   by force-selecting any processor continuously enabled for
//!   `fairness_bound` steps.
//! * [`FixedSchedule`] — replays a scripted selection sequence; for
//!   constructing exact adversarial interleavings in tests.

use pif_graph::ProcId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{ActionId, Daemon, EnabledSet};

/// How a daemon chooses among several simultaneously enabled actions of the
/// same processor.
///
/// For the paper's protocol at most two actions can be enabled at once
/// (`Fok-action` and `Count-action`); the daemon resolves the choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ActionPick {
    /// The first enabled action in protocol order (the paper's listing
    /// order).
    #[default]
    First,
    /// The last enabled action in protocol order.
    Last,
    /// A uniformly random enabled action (uses the daemon's RNG).
    Random,
}

fn pick(actions: &[ActionId], pick: ActionPick, rng: &mut Option<StdRng>) -> ActionId {
    debug_assert!(!actions.is_empty());
    match pick {
        ActionPick::First => actions[0],
        ActionPick::Last => *actions.last().expect("non-empty"),
        ActionPick::Random => {
            let rng = rng.as_mut().expect("ActionPick::Random requires a seeded daemon");
            actions[rng.random_range(0..actions.len())]
        }
    }
}

/// The synchronous daemon: selects *every* enabled processor each step.
///
/// Under this daemon each computation step closes exactly one round, so
/// measured step counts equal round counts — the most convenient instrument
/// for checking the paper's round bounds.
#[derive(Debug)]
pub struct Synchronous {
    action_pick: ActionPick,
    rng: Option<StdRng>,
}

impl Synchronous {
    /// Synchronous daemon resolving action choices by protocol order.
    pub fn first_action() -> Self {
        Synchronous { action_pick: ActionPick::First, rng: None }
    }

    /// Synchronous daemon resolving action choices uniformly at random.
    pub fn random_actions(seed: u64) -> Self {
        Synchronous { action_pick: ActionPick::Random, rng: Some(StdRng::seed_from_u64(seed)) }
    }
}

impl<S> Daemon<S> for Synchronous {
    fn select(&mut self, enabled: &EnabledSet<'_, S>, out: &mut Vec<(ProcId, ActionId)>) {
        for &p in enabled.enabled_procs() {
            out.push((p, pick(enabled.actions_of(p), self.action_pick, &mut self.rng)));
        }
    }

    fn name(&self) -> &'static str {
        "synchronous"
    }
}

/// A central daemon that services enabled processors in round-robin order
/// of their identifiers. Deterministic and weakly fair.
#[derive(Clone, Debug, Default)]
pub struct CentralSequential {
    cursor: u32,
}

impl CentralSequential {
    /// Creates the daemon with its cursor at processor 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<S> Daemon<S> for CentralSequential {
    fn select(&mut self, enabled: &EnabledSet<'_, S>, out: &mut Vec<(ProcId, ActionId)>) {
        let procs = enabled.enabled_procs();
        if procs.is_empty() {
            return;
        }
        // First enabled processor with id >= cursor, else wrap.
        let chosen = procs
            .iter()
            .copied()
            .find(|p| p.0 >= self.cursor)
            .unwrap_or(procs[0]);
        self.cursor = chosen.0 + 1;
        out.push((chosen, enabled.actions_of(chosen)[0]));
    }

    fn name(&self) -> &'static str {
        "central-seq"
    }
}

/// A central daemon that picks one uniformly random enabled processor (and
/// a uniformly random enabled action of it) each step. Weakly fair with
/// probability 1.
#[derive(Debug)]
pub struct CentralRandom {
    rng: Option<StdRng>,
}

impl CentralRandom {
    /// Creates the daemon with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        CentralRandom { rng: Some(StdRng::seed_from_u64(seed)) }
    }
}

impl<S> Daemon<S> for CentralRandom {
    fn select(&mut self, enabled: &EnabledSet<'_, S>, out: &mut Vec<(ProcId, ActionId)>) {
        let procs = enabled.enabled_procs();
        if procs.is_empty() {
            return;
        }
        let rng = self.rng.as_mut().expect("constructed with rng");
        let p = procs[rng.random_range(0..procs.len())];
        let actions = enabled.actions_of(p);
        out.push((p, actions[rng.random_range(0..actions.len())]));
    }

    fn name(&self) -> &'static str {
        "central-random"
    }
}

/// A distributed daemon that includes each enabled processor independently
/// with probability `prob` (selecting one at random if the coin flips all
/// fail, to keep the step non-empty). Actions are chosen uniformly.
#[derive(Debug)]
pub struct DistributedRandom {
    prob: f64,
    rng: Option<StdRng>,
}

impl DistributedRandom {
    /// Creates the daemon.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not within `(0, 1]`.
    pub fn new(prob: f64, seed: u64) -> Self {
        assert!(prob > 0.0 && prob <= 1.0, "inclusion probability must be in (0, 1]");
        DistributedRandom { prob, rng: Some(StdRng::seed_from_u64(seed)) }
    }
}

impl<S> Daemon<S> for DistributedRandom {
    fn select(&mut self, enabled: &EnabledSet<'_, S>, out: &mut Vec<(ProcId, ActionId)>) {
        let procs = enabled.enabled_procs();
        if procs.is_empty() {
            return;
        }
        let rng = self.rng.as_mut().expect("constructed with rng");
        for &p in procs {
            if rng.random_bool(self.prob) {
                let actions = enabled.actions_of(p);
                out.push((p, actions[rng.random_range(0..actions.len())]));
            }
        }
        if out.is_empty() {
            let p = procs[rng.random_range(0..procs.len())];
            let actions = enabled.actions_of(p);
            out.push((p, actions[rng.random_range(0..actions.len())]));
        }
    }

    fn name(&self) -> &'static str {
        "distributed-random"
    }
}

/// A greedy adversarial (but weakly fair) central daemon.
///
/// Each step it selects the *most recently enabled* processor — i.e. it
/// starves processors that have been waiting longest, which tends to
/// stretch executions toward the paper's worst-case round bounds. Weak
/// fairness is enforced explicitly: a processor continuously enabled for
/// `fairness_bound` consecutive steps is selected unconditionally (oldest
/// first).
#[derive(Debug)]
pub struct AdversarialLifo {
    /// Consecutive steps each processor has been continuously enabled.
    ages: Vec<u64>,
    fairness_bound: u64,
    action_pick: ActionPick,
    rng: Option<StdRng>,
}

impl AdversarialLifo {
    /// Creates the adversary.
    ///
    /// `fairness_bound` is the starvation ceiling (in steps); smaller means
    /// fairer. A bound around `4 × N` lets the adversary reorder freely
    /// within phases without ever producing an unfair execution.
    ///
    /// # Panics
    ///
    /// Panics if `fairness_bound == 0`.
    pub fn new(fairness_bound: u64, seed: u64) -> Self {
        assert!(fairness_bound > 0, "fairness bound must be positive");
        AdversarialLifo {
            ages: Vec::new(),
            fairness_bound,
            action_pick: ActionPick::Random,
            rng: Some(StdRng::seed_from_u64(seed)),
        }
    }

    /// Sets how the adversary resolves multi-action choices.
    pub fn with_action_pick(mut self, action_pick: ActionPick) -> Self {
        self.action_pick = action_pick;
        self
    }
}

impl<S> Daemon<S> for AdversarialLifo {
    fn select(&mut self, enabled: &EnabledSet<'_, S>, out: &mut Vec<(ProcId, ActionId)>) {
        let n = enabled.states().len();
        if self.ages.len() != n {
            self.ages = vec![0; n];
        }
        let procs = enabled.enabled_procs();
        // Update continuous-enabled ages.
        let mut is_enabled = vec![false; n];
        for &p in procs {
            is_enabled[p.index()] = true;
        }
        for (i, en) in is_enabled.iter().enumerate() {
            if *en {
                self.ages[i] += 1;
            } else {
                self.ages[i] = 0;
            }
        }
        if procs.is_empty() {
            return;
        }
        // Forced selections keep the execution weakly fair.
        for &p in procs {
            if self.ages[p.index()] >= self.fairness_bound {
                out.push((p, pick(enabled.actions_of(p), self.action_pick, &mut self.rng)));
            }
        }
        if out.is_empty() {
            // Youngest (most recently enabled) processor; ties broken by
            // the largest id to deviate from the natural order.
            let p = *procs
                .iter()
                .min_by_key(|p| (self.ages[p.index()], u32::MAX - p.0))
                .expect("non-empty");
            out.push((p, pick(enabled.actions_of(p), self.action_pick, &mut self.rng)));
        }
        // Selected processors will no longer be "continuously enabled".
        for &(p, _) in out.iter() {
            self.ages[p.index()] = 0;
        }
    }

    fn name(&self) -> &'static str {
        "adversarial-lifo"
    }
}

/// Replays a scripted sequence of selections, then (if the script runs out)
/// falls back to the first enabled processor. For building exact
/// interleavings in tests.
///
/// Scripted entries that name a disabled processor are skipped rather than
/// reported as daemon errors, so scripts can be written loosely.
#[derive(Clone, Debug)]
pub struct FixedSchedule {
    script: std::collections::VecDeque<Vec<ProcId>>,
}

impl FixedSchedule {
    /// Creates a schedule from per-step processor groups.
    pub fn new<I, G>(script: I) -> Self
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = ProcId>,
    {
        FixedSchedule {
            script: script.into_iter().map(|g| g.into_iter().collect()).collect(),
        }
    }
}

impl<S> Daemon<S> for FixedSchedule {
    fn select(&mut self, enabled: &EnabledSet<'_, S>, out: &mut Vec<(ProcId, ActionId)>) {
        let procs = enabled.enabled_procs();
        if procs.is_empty() {
            return;
        }
        if let Some(group) = self.script.pop_front() {
            for p in group {
                if !enabled.actions_of(p).is_empty() {
                    out.push((p, enabled.actions_of(p)[0]));
                }
            }
        }
        if out.is_empty() {
            out.push((procs[0], enabled.actions_of(procs[0])[0]));
        }
    }

    fn name(&self) -> &'static str {
        "fixed-schedule"
    }
}

/// The standard panel of daemons used by experiments: synchronous, central
/// round-robin, three random distributed daemons, and an adversary —
/// covering the spectrum the paper's "any weakly fair daemon" quantifies
/// over.
pub fn standard_panel<S>(n: usize, seed: u64) -> Vec<Box<dyn Daemon<S>>> {
    vec![
        Box::new(Synchronous::first_action()),
        Box::new(CentralSequential::new()),
        Box::new(CentralRandom::new(seed)),
        Box::new(DistributedRandom::new(0.5, seed.wrapping_add(1))),
        Box::new(DistributedRandom::new(0.2, seed.wrapping_add(2))),
        Box::new(AdversarialLifo::new(4 * n.max(1) as u64, seed.wrapping_add(3))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, RunLimits, Simulator, View};
    use pif_graph::generators;

    /// Every processor decrements until zero; trivially terminating.
    struct Countdown;
    impl Protocol for Countdown {
        type State = u8;
        fn action_names(&self) -> &'static [&'static str] {
            &["dec"]
        }
        fn enabled_actions(&self, view: View<'_, u8>, out: &mut Vec<ActionId>) {
            if *view.me() > 0 {
                out.push(ActionId(0));
            }
        }
        fn execute(&self, view: View<'_, u8>, _: ActionId) -> u8 {
            *view.me() - 1
        }
    }

    fn run_with(daemon: &mut dyn Daemon<u8>) -> u64 {
        let g = generators::ring(5).unwrap();
        let mut sim = Simulator::new(g, Countdown, vec![3; 5]);
        let stats = sim
            .run(
                daemon,
                &mut crate::NoOpObserver,
                crate::StopPolicy::Fixpoint(RunLimits::default()),
            )
            .unwrap();
        assert!(sim.states().iter().all(|&s| s == 0), "{}", daemon.name());
        stats.steps
    }

    #[test]
    fn all_standard_daemons_drive_to_fixpoint() {
        for mut d in standard_panel::<u8>(5, 42) {
            run_with(d.as_mut());
        }
    }

    #[test]
    fn synchronous_takes_exactly_max_steps() {
        let mut d = Synchronous::first_action();
        assert_eq!(run_with(&mut d), 3);
    }

    #[test]
    fn central_daemons_take_sum_steps() {
        assert_eq!(run_with(&mut CentralSequential::new()), 15);
        assert_eq!(run_with(&mut CentralRandom::new(7)), 15);
    }

    #[test]
    fn distributed_random_is_deterministic_per_seed() {
        let a = run_with(&mut DistributedRandom::new(0.4, 99));
        let b = run_with(&mut DistributedRandom::new(0.4, 99));
        assert_eq!(a, b);
    }

    #[test]
    fn adversary_is_weakly_fair() {
        // The countdown protocol keeps every processor enabled until its own
        // counter hits zero; an unfair daemon would never finish.
        let steps = run_with(&mut AdversarialLifo::new(20, 3));
        assert_eq!(steps, 15);
    }

    #[test]
    #[should_panic(expected = "fairness bound")]
    fn adversary_rejects_zero_bound() {
        let _ = AdversarialLifo::new(0, 0);
    }

    #[test]
    fn fixed_schedule_follows_script_then_falls_back() {
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, Countdown, vec![1, 1, 1]);
        let mut d = FixedSchedule::new([vec![ProcId(2)], vec![ProcId(1)]]);
        sim.step(&mut d).unwrap();
        assert_eq!(sim.last_executed(), &[(ProcId(2), ActionId(0))]);
        sim.step(&mut d).unwrap();
        assert_eq!(sim.last_executed(), &[(ProcId(1), ActionId(0))]);
        // Script exhausted: falls back to first enabled.
        sim.step(&mut d).unwrap();
        assert_eq!(sim.last_executed(), &[(ProcId(0), ActionId(0))]);
    }

    #[test]
    fn central_sequential_round_robins() {
        let g = generators::ring(4).unwrap();
        let mut sim = Simulator::new(g, Countdown, vec![2; 4]);
        let mut d = CentralSequential::new();
        let order: Vec<ProcId> = (0..4)
            .map(|_| {
                sim.step(&mut d).unwrap();
                sim.last_executed()[0].0
            })
            .collect();
        assert_eq!(order, vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)]);
    }
}
