use pif_graph::{Graph, ProcId};

use crate::bits::BitSet;
use crate::rounds::RoundCounter;
use crate::{ActionId, Daemon, EnabledSet, Protocol, SimError, View};

/// Budget limits for a simulation run.
///
/// Budgets protect against non-terminating executions (possible from
/// arbitrary configurations of a buggy protocol); exceeding one is reported
/// as a [`SimError`], never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum computation steps.
    pub max_steps: u64,
    /// Maximum completed rounds.
    pub max_rounds: u64,
}

impl RunLimits {
    /// Limits suitable for most experiments: one million steps, one hundred
    /// thousand rounds.
    pub const fn generous() -> Self {
        RunLimits { max_steps: 1_000_000, max_rounds: 100_000 }
    }

    /// Builds explicit limits.
    pub const fn new(max_steps: u64, max_rounds: u64) -> Self {
        RunLimits { max_steps, max_rounds }
    }
}

impl Default for RunLimits {
    fn default() -> Self {
        Self::generous()
    }
}

/// Statistics of a finished (or truncated) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Computation steps executed.
    pub steps: u64,
    /// Rounds completed (Dolev-Israeli-Moran definition).
    pub rounds: u64,
    /// Whether the final configuration is terminal (no enabled processor).
    pub terminal: bool,
}

/// Outcome of a single computation step.
///
/// The report is plain data (no per-step heap allocation); the executed
/// `(processor, action)` pairs themselves are available from
/// [`Simulator::last_executed`] until the next step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// How many processors executed an action in this step.
    pub executed: usize,
    /// Whether this step completed a round.
    pub round_completed: bool,
    /// Whether the *new* configuration is terminal.
    pub terminal: bool,
}

/// Sparse description of one computation step, handed to [`Observer`]s.
///
/// The delta lists the executed `(processor, action)` pairs along with each
/// executed processor's *pre-step* state — everything that changed. The
/// full pre-step configuration is available through [`StepDelta::before`]
/// only for observers that request it via [`Observer::needs_full_before`]
/// (it costs a configuration copy per step).
pub struct StepDelta<'a, P: Protocol> {
    executed: &'a [(ProcId, ActionId)],
    old_states: &'a [P::State],
    before: Option<&'a [P::State]>,
    step: u64,
    round_completed: bool,
}

impl<'a, P: Protocol> StepDelta<'a, P> {
    /// Builds a delta from externally maintained step bookkeeping.
    ///
    /// [`Simulator`] constructs these internally; alternative step engines
    /// that honor the same observer contract use this constructor.
    /// `old_states` must be parallel to `executed` (each entry the
    /// pre-step state of the corresponding executed processor), and
    /// `before`, when present, must be the full pre-step configuration.
    pub fn new(
        executed: &'a [(ProcId, ActionId)],
        old_states: &'a [P::State],
        before: Option<&'a [P::State]>,
        step: u64,
        round_completed: bool,
    ) -> Self {
        StepDelta { executed, old_states, before, step, round_completed }
    }

    /// The `(processor, action)` pairs that executed, in selection order.
    #[inline]
    pub fn executed(&self) -> &'a [(ProcId, ActionId)] {
        self.executed
    }

    /// Zero-based index of the step this delta describes (equal to
    /// [`Simulator::steps`] minus one at notification time).
    #[inline]
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Whether this step completed a round (Dolev-Israeli-Moran
    /// definition). Round accounting is settled *before* observers run, so
    /// metrics observers can attribute per-round phase activity.
    #[inline]
    pub fn round_completed(&self) -> bool {
        self.round_completed
    }

    /// The executed moves with each processor's pre-step state:
    /// `(processor, action, old_state)` in selection order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, ActionId, &'a P::State)> + '_ {
        self.executed.iter().zip(self.old_states).map(|(&(p, a), s)| (p, a, s))
    }

    /// The full pre-step configuration, present only when the observer
    /// opted in via [`Observer::needs_full_before`].
    #[inline]
    pub fn before(&self) -> Option<&'a [P::State]> {
        self.before
    }
}

/// Observer of executed actions, used to maintain protocol-external overlays
/// (message registers, delivery logs, invariant monitors) in lockstep with
/// the simulation.
///
/// Observers receive a sparse [`StepDelta`] plus the post-step
/// configuration. Most overlays only need what changed; an observer that
/// genuinely needs the complete pre-step configuration overrides
/// [`Observer::needs_full_before`] and pays one configuration copy per
/// step.
pub trait Observer<P: Protocol> {
    /// Whether [`StepDelta::before`] must be populated for this observer.
    /// Defaults to `false`, keeping the simulator's step path free of the
    /// full-configuration copy.
    fn needs_full_before(&self) -> bool {
        false
    }

    /// Called once per computation step, after the new configuration is in
    /// place.
    fn step(&mut self, graph: &Graph, delta: &StepDelta<'_, P>, after: &[P::State]);
}

/// The no-op observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOpObserver;

impl<P: Protocol> Observer<P> for NoOpObserver {
    fn step(&mut self, _: &Graph, _: &StepDelta<'_, P>, _: &[P::State]) {}
}

/// Observer combinator notifying two observers in sequence.
///
/// Lets a single run feed, say, a `MetricsObserver` and a `TraceRecorder`
/// at once; nest `Fanout`s for more. The full-before requirement is the
/// union of both sides'.
pub struct Fanout<'a, P: Protocol> {
    first: &'a mut dyn Observer<P>,
    second: &'a mut dyn Observer<P>,
}

impl<'a, P: Protocol> Fanout<'a, P> {
    /// Combines two observers; `first` is notified before `second`.
    pub fn new(first: &'a mut dyn Observer<P>, second: &'a mut dyn Observer<P>) -> Self {
        Fanout { first, second }
    }
}

impl<P: Protocol> Observer<P> for Fanout<'_, P> {
    fn needs_full_before(&self) -> bool {
        self.first.needs_full_before() || self.second.needs_full_before()
    }

    fn step(&mut self, graph: &Graph, delta: &StepDelta<'_, P>, after: &[P::State]) {
        self.first.step(graph, delta, after);
        self.second.step(graph, delta, after);
    }
}

/// When a [`Simulator::run`] should stop, beyond reaching a terminal
/// configuration (which always stops the run).
///
/// The legacy entry points map onto this enum: `run_to_fixpoint` is
/// [`StopPolicy::Fixpoint`], `run_until` is [`StopPolicy::Predicate`], and
/// a plain budget-bounded run is [`StopPolicy::Limits`].
pub enum StopPolicy<'a, P: Protocol> {
    /// Run to a terminal configuration; exhausting the budget is an error
    /// ([`SimError::MaxStepsExceeded`] / [`SimError::MaxRoundsExceeded`]).
    Fixpoint(RunLimits),
    /// Run until the predicate holds (checked before every step) or the
    /// configuration is terminal; exhausting the budget is an error.
    Predicate(RunLimits, &'a mut dyn FnMut(&Simulator<P>) -> bool),
    /// Run until the budget is consumed; reaching it is *success* (the
    /// stats are returned), not an error. Use for "run exactly N
    /// steps/rounds" workloads.
    Limits(RunLimits),
}

/// Simulator for a [`Protocol`] over a network, under a pluggable
/// [`Daemon`], with round accounting per the paper's definition.
///
/// The simulator owns the configuration (one state per processor) and
/// advances it one *computation step* at a time: it computes the enabled set,
/// asks the daemon for a non-empty selection, evaluates every selected
/// action against the old configuration, and applies all updates at once.
///
/// The step path is engineered to cost O(selected × max degree), not O(n):
/// enabled actions are recomputed only for executed processors and their
/// neighbors (guards read only the local neighborhood), the enabled-processor
/// set is maintained incrementally, round accounting is fed the sparse
/// change-set, and all step scratch buffers are owned by the simulator and
/// reused — in steady state a step performs no heap allocation.
///
/// See the [crate documentation](crate) for a complete example.
#[derive(Clone, Debug)]
pub struct Simulator<P: Protocol> {
    graph: Graph,
    protocol: P,
    states: Vec<P::State>,
    /// Enabled actions per processor, kept current.
    enabled: Vec<Vec<ActionId>>,
    /// Processors with at least one enabled action, ascending; rebuilt from
    /// `enabled_bits` only on membership changes.
    enabled_procs: Vec<ProcId>,
    /// Bitset mirror of `enabled_procs` for O(1) membership tests.
    enabled_bits: BitSet,
    steps: u64,
    rounds: RoundCounter,
    /// Whether daemon selections are validated against the model contract.
    validate: bool,
    /// Default run budget, configurable via [`SimBuilder::limits`]; handy
    /// as the argument to a [`StopPolicy`].
    limits: RunLimits,
    // --- Reused per-step scratch (never reallocated in steady state) ---
    /// Last step's daemon selection; exposed via `last_executed`.
    selection: Vec<(ProcId, ActionId)>,
    /// Pre-step states of the selected processors, parallel to `selection`.
    old_states: Vec<P::State>,
    /// Staging for the new states computed against the old configuration.
    new_states: Vec<P::State>,
    /// Full pre-step configuration, filled only for observers that ask.
    before_scratch: Vec<P::State>,
    /// Epoch stamps marking processors as seen/dirty without clearing.
    stamp: Vec<u64>,
    epoch: u64,
    /// Processors whose guards must be re-evaluated after a step.
    dirty: Vec<ProcId>,
    /// Enabled-status flips of the last step, fed to the round counter.
    changes: Vec<(ProcId, bool)>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator in the given initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() != graph.len()`.
    pub fn new(graph: Graph, protocol: P, init: Vec<P::State>) -> Self {
        assert_eq!(graph.len(), init.len(), "initial configuration must cover every processor");
        let n = graph.len();
        let mut enabled = vec![Vec::new(); n];
        for p in graph.procs() {
            protocol.enabled_actions(View::new(&graph, &init, p), &mut enabled[p.index()]);
        }
        let mut enabled_bits = BitSet::new(n);
        let mut enabled_procs = Vec::with_capacity(n);
        for p in graph.procs() {
            if !enabled[p.index()].is_empty() {
                enabled_bits.insert(p.index());
                enabled_procs.push(p);
            }
        }
        let rounds = RoundCounter::new(enabled.iter().map(|a| !a.is_empty()));
        Simulator {
            graph,
            protocol,
            states: init,
            enabled,
            enabled_procs,
            enabled_bits,
            steps: 0,
            rounds,
            validate: cfg!(debug_assertions),
            limits: RunLimits::default(),
            selection: Vec::new(),
            old_states: Vec::new(),
            new_states: Vec::new(),
            before_scratch: Vec::new(),
            stamp: vec![0; n],
            epoch: 0,
            dirty: Vec::with_capacity(n),
            changes: Vec::with_capacity(n),
        }
    }

    /// Starts fluent construction of a simulator: initial configuration,
    /// validation and default run budget in one expression.
    ///
    /// ```
    /// # use pif_daemon::{Simulator, RunLimits, Protocol, View, ActionId};
    /// # use pif_graph::generators;
    /// # struct Noop;
    /// # impl Protocol for Noop {
    /// #     type State = u8;
    /// #     fn action_names(&self) -> &'static [&'static str] { &[] }
    /// #     fn enabled_actions(&self, _: View<'_, u8>, _: &mut Vec<ActionId>) {}
    /// #     fn execute(&self, _: View<'_, u8>, _: ActionId) -> u8 { 0 }
    /// # }
    /// let sim = Simulator::builder(generators::chain(4).unwrap(), Noop)
    ///     .states(vec![0; 4])
    ///     .validation(true)
    ///     .limits(RunLimits::new(10_000, 1_000))
    ///     .build();
    /// assert!(sim.validation());
    /// ```
    pub fn builder(graph: Graph, protocol: P) -> SimBuilder<P> {
        SimBuilder { graph, protocol, states: None, validation: None, limits: RunLimits::default() }
    }

    /// The network topology.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol under simulation.
    #[inline]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration.
    #[inline]
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The current state of one processor.
    #[inline]
    pub fn state(&self, p: ProcId) -> &P::State {
        &self.states[p.index()]
    }

    /// Enables or disables daemon-selection validation
    /// ([`SimError::InvalidSelection`] checks beyond the mandatory
    /// empty-selection test). Defaults to on in debug builds and off in
    /// release builds; conformance tests switch it on explicitly.
    ///
    /// With validation off, a daemon that selects an out-of-range
    /// processor still panics (index out of bounds), but duplicate or
    /// not-enabled selections go undetected — only disable it for trusted
    /// daemons on hot paths.
    pub fn set_validation(&mut self, on: bool) {
        self.validate = on;
    }

    /// Whether daemon-selection validation is currently enabled.
    #[inline]
    pub fn validation(&self) -> bool {
        self.validate
    }

    /// The default run budget configured at construction (via
    /// [`SimBuilder::limits`]; [`RunLimits::generous`] otherwise).
    #[inline]
    pub fn limits(&self) -> RunLimits {
        self.limits
    }

    /// Overwrites the configuration (e.g. to inject faults mid-run) and
    /// recomputes the enabled set. Round accounting restarts from the new
    /// configuration.
    pub fn set_states(&mut self, states: Vec<P::State>) {
        assert_eq!(self.graph.len(), states.len());
        self.states = states;
        self.reset_bookkeeping();
    }

    /// Overwrites a single processor's state (fault injection) and
    /// recomputes bookkeeping, restarting round accounting.
    pub fn corrupt(&mut self, p: ProcId, state: P::State) {
        self.states[p.index()] = state;
        self.reset_bookkeeping();
    }

    /// Applies a batch of corruptions atomically: every state is written
    /// first, then bookkeeping is recomputed and round accounting restarted
    /// **once**. A campaign of [`Simulator::corrupt`] calls would restart
    /// the round counter per processor; a transient fault hitting several
    /// processors at the same instant is one event, and this models it as
    /// one.
    pub fn corrupt_many(&mut self, corruptions: &[(ProcId, P::State)]) {
        if corruptions.is_empty() {
            return;
        }
        for (p, state) in corruptions {
            self.states[p.index()] = state.clone();
        }
        self.reset_bookkeeping();
    }

    /// Computation steps executed so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Rounds completed so far.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds.completed()
    }

    /// Whether the current configuration is terminal (no enabled action on
    /// any processor).
    #[inline]
    pub fn is_terminal(&self) -> bool {
        self.enabled_procs.is_empty()
    }

    /// Processors currently enabled, ascending.
    #[inline]
    pub fn enabled_procs(&self) -> &[ProcId] {
        &self.enabled_procs
    }

    /// Enabled actions of processor `p` in the current configuration.
    #[inline]
    pub fn enabled_actions(&self, p: ProcId) -> &[ActionId] {
        &self.enabled[p.index()]
    }

    /// The `(processor, action)` pairs executed by the most recent step
    /// (empty before the first step and after a terminal no-op step).
    #[inline]
    pub fn last_executed(&self) -> &[(ProcId, ActionId)] {
        &self.selection
    }

    /// A read view of processor `p` in the current configuration.
    pub fn view(&self, p: ProcId) -> View<'_, P::State> {
        View::new(&self.graph, &self.states, p)
    }

    /// Executes one computation step under `daemon`, reporting what ran.
    /// In a terminal configuration this is a no-op returning an empty
    /// report.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidSelection`] if the daemon violated the model's
    /// contract (selected a disabled processor, a non-enabled action, a
    /// duplicate, or nothing at all while processors were enabled).
    pub fn step(&mut self, daemon: &mut dyn Daemon<P::State>) -> Result<StepReport, SimError> {
        self.step_observed(daemon, &mut NoOpObserver)
    }

    /// Like [`Simulator::step`], additionally notifying `observer`.
    pub fn step_observed(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        observer: &mut dyn Observer<P>,
    ) -> Result<StepReport, SimError> {
        if self.is_terminal() {
            self.selection.clear();
            return Ok(StepReport { executed: 0, round_completed: false, terminal: true });
        }
        let mut selection = std::mem::take(&mut self.selection);
        selection.clear();
        {
            let snapshot = EnabledSet::new(
                &self.graph,
                &self.states,
                &self.enabled,
                &self.enabled_procs,
                self.steps,
            );
            daemon.select(&snapshot, &mut selection);
        }
        if selection.is_empty() {
            self.selection = selection;
            return Err(SimError::InvalidSelection {
                reason: "empty selection while processors are enabled".into(),
                proc: None,
                action: None,
            });
        }
        if self.validate {
            if let Err(e) = self.validate_selection(&selection) {
                self.selection = selection;
                return Err(e);
            }
        }

        // Observers needing the full pre-step configuration get it from a
        // reused buffer; nobody else pays for the copy.
        let needs_before = observer.needs_full_before();
        if needs_before {
            self.before_scratch.clone_from(&self.states);
        }

        // Evaluate all selected actions against the OLD configuration, then
        // apply simultaneously (composite atomicity, distributed daemon).
        let mut new_states = std::mem::take(&mut self.new_states);
        new_states.clear();
        for &(p, a) in &selection {
            let view = View::new(&self.graph, &self.states, p);
            new_states.push(self.protocol.execute(view, a));
        }
        let mut old_states = std::mem::take(&mut self.old_states);
        old_states.clear();
        for (&(p, _), new) in selection.iter().zip(new_states.drain(..)) {
            old_states.push(std::mem::replace(&mut self.states[p.index()], new));
        }
        let step_index = self.steps;
        self.steps += 1;
        self.recompute_enabled_after(&selection);

        // Round accounting settles before observers run, so the delta can
        // carry the authoritative round-completion flag.
        let round_completed = self
            .rounds
            .observe_step(selection.iter().map(|&(p, _)| p), self.changes.iter().copied());

        let delta = StepDelta {
            executed: &selection,
            old_states: &old_states,
            before: needs_before.then_some(self.before_scratch.as_slice()),
            step: step_index,
            round_completed,
        };
        observer.step(&self.graph, &delta, &self.states);

        let executed = selection.len();
        self.selection = selection;
        self.old_states = old_states;
        self.new_states = new_states;
        Ok(StepReport { executed, round_completed, terminal: self.is_terminal() })
    }

    /// Runs the simulation until `policy` says to stop (or the
    /// configuration is terminal, which always stops a run), notifying
    /// `observer` on every step.
    ///
    /// This is the single run entry point; [`Simulator::run_until`],
    /// [`Simulator::run_until_observed`] and [`Simulator::run_to_fixpoint`]
    /// are thin delegates kept for familiarity.
    ///
    /// Returns statistics *relative to the start of this call* (steps and
    /// rounds consumed by the run, not lifetime totals).
    ///
    /// # Errors
    ///
    /// Budget errors ([`SimError::MaxStepsExceeded`],
    /// [`SimError::MaxRoundsExceeded`]) for the [`StopPolicy::Fixpoint`]
    /// and [`StopPolicy::Predicate`] policies, or daemon contract
    /// violations from any policy. Under [`StopPolicy::Limits`] the budget
    /// is a stop condition, not an error.
    pub fn run(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        observer: &mut dyn Observer<P>,
        mut policy: StopPolicy<'_, P>,
    ) -> Result<RunStats, SimError> {
        let start_steps = self.steps;
        let start_rounds = self.rounds.completed();
        let limits = match &policy {
            StopPolicy::Fixpoint(l) | StopPolicy::Predicate(l, _) | StopPolicy::Limits(l) => *l,
        };
        let budget_is_error = !matches!(policy, StopPolicy::Limits(_));
        loop {
            if let StopPolicy::Predicate(_, target) = &mut policy {
                if target(self) {
                    return Ok(self.stats_since(start_steps, start_rounds));
                }
            }
            if self.is_terminal() {
                return Ok(self.stats_since(start_steps, start_rounds));
            }
            if self.steps - start_steps >= limits.max_steps {
                return if budget_is_error {
                    Err(SimError::MaxStepsExceeded {
                        steps: self.steps - start_steps,
                        rounds: self.rounds.completed() - start_rounds,
                    })
                } else {
                    Ok(self.stats_since(start_steps, start_rounds))
                };
            }
            if self.rounds.completed() - start_rounds >= limits.max_rounds {
                return if budget_is_error {
                    Err(SimError::MaxRoundsExceeded {
                        steps: self.steps - start_steps,
                        rounds: self.rounds.completed() - start_rounds,
                    })
                } else {
                    Ok(self.stats_since(start_steps, start_rounds))
                };
            }
            self.step_observed(daemon, observer)?;
        }
    }

    /// Runs until `target` holds (checked before every step), the
    /// configuration is terminal, or a budget is exhausted.
    ///
    /// Returns statistics at the moment the predicate first held (or the
    /// terminal configuration was reached — check `terminal` and re-test the
    /// predicate to distinguish).
    ///
    /// # Errors
    ///
    /// Budget errors ([`SimError::MaxStepsExceeded`],
    /// [`SimError::MaxRoundsExceeded`]) or daemon contract violations.
    pub fn run_until<F>(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        limits: RunLimits,
        mut target: F,
    ) -> Result<RunStats, SimError>
    where
        F: FnMut(&Self) -> bool,
    {
        self.run(daemon, &mut NoOpObserver, StopPolicy::Predicate(limits, &mut target))
    }

    /// Like [`Simulator::run_until`] with an [`Observer`].
    pub fn run_until_observed(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        observer: &mut dyn Observer<P>,
        limits: RunLimits,
        target: &mut dyn FnMut(&Self) -> bool,
    ) -> Result<RunStats, SimError> {
        self.run(daemon, observer, StopPolicy::Predicate(limits, target))
    }

    /// Runs until the configuration is terminal (no enabled processor).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_until`].
    pub fn run_to_fixpoint(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        limits: RunLimits,
    ) -> Result<RunStats, SimError> {
        self.run(daemon, &mut NoOpObserver, StopPolicy::Fixpoint(limits))
    }

    fn stats_since(&self, start_steps: u64, start_rounds: u64) -> RunStats {
        RunStats {
            steps: self.steps - start_steps,
            rounds: self.rounds.completed() - start_rounds,
            terminal: self.is_terminal(),
        }
    }

    /// Validates the model contract on a daemon selection, using the epoch
    /// stamps for the duplicate check (no per-step allocation).
    fn validate_selection(&mut self, selection: &[(ProcId, ActionId)]) -> Result<(), SimError> {
        self.epoch += 1;
        let epoch = self.epoch;
        for &(p, a) in selection {
            if p.index() >= self.graph.len() {
                return Err(SimError::InvalidSelection {
                    reason: "processor out of range".into(),
                    proc: Some(p),
                    action: Some(a),
                });
            }
            if self.stamp[p.index()] == epoch {
                return Err(SimError::InvalidSelection {
                    reason: "processor selected twice".into(),
                    proc: Some(p),
                    action: Some(a),
                });
            }
            self.stamp[p.index()] = epoch;
            if !self.enabled[p.index()].contains(&a) {
                return Err(SimError::InvalidSelection {
                    reason: "action not enabled for processor".into(),
                    proc: Some(p),
                    action: Some(a),
                });
            }
        }
        Ok(())
    }

    /// Recomputes the enabled sets from scratch and restarts round
    /// accounting (used on configuration overwrites, never per step).
    fn reset_bookkeeping(&mut self) {
        for p in self.graph.procs() {
            let acts = &mut self.enabled[p.index()];
            acts.clear();
            self.protocol.enabled_actions(View::new(&self.graph, &self.states, p), acts);
        }
        self.enabled_bits.clear();
        self.enabled_procs.clear();
        for p in self.graph.procs() {
            if !self.enabled[p.index()].is_empty() {
                self.enabled_bits.insert(p.index());
                self.enabled_procs.push(p);
            }
        }
        self.selection.clear();
        self.rounds = RoundCounter::new(self.enabled.iter().map(|a| !a.is_empty()));
    }

    /// Recomputes enabled actions only where they can have changed: the
    /// executed processors and their neighbors (guards read only the local
    /// neighborhood). Membership changes update the bitset and the round
    /// counter's change feed; the ascending `enabled_procs` list is rebuilt
    /// from the bitset (an `n/64`-word scan) only when membership actually
    /// changed.
    fn recompute_enabled_after(&mut self, executed: &[(ProcId, ActionId)]) {
        self.epoch += 1;
        let epoch = self.epoch;
        self.dirty.clear();
        for &(p, _) in executed {
            if self.stamp[p.index()] != epoch {
                self.stamp[p.index()] = epoch;
                self.dirty.push(p);
            }
            for q in self.graph.neighbors(p) {
                if self.stamp[q.index()] != epoch {
                    self.stamp[q.index()] = epoch;
                    self.dirty.push(q);
                }
            }
        }
        self.changes.clear();
        let mut membership_changed = false;
        for i in 0..self.dirty.len() {
            let p = self.dirty[i];
            let was = self.enabled_bits.contains(p.index());
            let acts = &mut self.enabled[p.index()];
            acts.clear();
            self.protocol.enabled_actions(View::new(&self.graph, &self.states, p), acts);
            let now = !self.enabled[p.index()].is_empty();
            if was != now {
                membership_changed = true;
                if now {
                    self.enabled_bits.insert(p.index());
                } else {
                    self.enabled_bits.remove(p.index());
                }
                self.changes.push((p, now));
            }
        }
        if membership_changed {
            self.enabled_procs.clear();
            let bits = &self.enabled_bits;
            self.enabled_procs.extend(bits.iter().map(ProcId::from_index));
        }
    }
}

/// Fluent constructor for [`Simulator`], created by
/// [`Simulator::builder`]. Consolidates `new` + `set_states` +
/// `set_validation` + [`RunLimits`] into one construction path.
pub struct SimBuilder<P: Protocol> {
    graph: Graph,
    protocol: P,
    states: Option<Vec<P::State>>,
    validation: Option<bool>,
    limits: RunLimits,
}

impl<P: Protocol> SimBuilder<P> {
    /// Sets the initial configuration (required; one state per processor).
    pub fn states(mut self, states: Vec<P::State>) -> Self {
        self.states = Some(states);
        self
    }

    /// Builds the initial configuration from a per-processor closure.
    pub fn states_with(mut self, mut f: impl FnMut(ProcId) -> P::State) -> Self {
        self.states = Some(self.graph.procs().map(&mut f).collect());
        self
    }

    /// Enables or disables daemon-selection validation (defaults to on in
    /// debug builds, off in release — see [`Simulator::set_validation`]).
    pub fn validation(mut self, on: bool) -> Self {
        self.validation = Some(on);
        self
    }

    /// Sets the default run budget, retrievable via [`Simulator::limits`].
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Finalizes the simulator.
    ///
    /// # Panics
    ///
    /// Panics if no initial configuration was provided, or if it does not
    /// cover every processor (same contract as [`Simulator::new`]).
    pub fn build(self) -> Simulator<P> {
        self.try_build().unwrap_or_else(|e| panic!("SimBuilder: {e}"))
    }

    /// Finalizes the simulator, reporting configuration mistakes as typed
    /// errors instead of panicking — the same construction contract the
    /// net engine's `NetBuilder::build` follows.
    pub fn try_build(self) -> Result<Simulator<P>, SimError> {
        let states = self.states.ok_or(SimError::MissingStates)?;
        if states.len() != self.graph.len() {
            return Err(SimError::StateCountMismatch {
                expected: self.graph.len(),
                got: states.len(),
            });
        }
        let mut sim = Simulator::new(self.graph, self.protocol, states);
        if let Some(on) = self.validation {
            sim.set_validation(on);
        }
        sim.limits = self.limits;
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::{CentralSequential, Synchronous};
    use pif_graph::generators;

    /// Token-passing toy protocol on a chain: a processor holding a value
    /// greater than its right neighbor's pushes the excess right.
    struct PushRight;

    impl Protocol for PushRight {
        type State = i32;
        fn action_names(&self) -> &'static [&'static str] {
            &["push"]
        }
        fn enabled_actions(&self, view: View<'_, i32>, out: &mut Vec<ActionId>) {
            // Enabled iff some neighbor with larger id has a smaller value.
            if view.neighbor_states().any(|(q, &s)| q > view.pid() && s < *view.me()) {
                out.push(ActionId(0));
            }
        }
        fn execute(&self, view: View<'_, i32>, _: ActionId) -> i32 {
            *view.me() - 1
        }
    }

    #[test]
    fn fixpoint_on_monotone_protocol() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![3, 0, 0, 0]);
        let stats = sim
            .run_to_fixpoint(&mut Synchronous::first_action(), RunLimits::default())
            .unwrap();
        assert!(stats.terminal);
        assert!(sim.is_terminal());
        assert_eq!(sim.state(ProcId(0)), &0);
    }

    #[test]
    fn step_on_terminal_configuration_is_noop() {
        let g = generators::chain(2).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![0, 0]);
        assert!(sim.is_terminal());
        let rep = sim.step(&mut Synchronous::first_action()).unwrap();
        assert!(rep.terminal);
        assert_eq!(rep.executed, 0);
        assert!(sim.last_executed().is_empty());
        assert_eq!(sim.steps(), 0);
    }

    #[test]
    fn central_daemon_executes_one_processor_per_step() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![5, 5, 5, 0]);
        let mut d = CentralSequential::new();
        let rep = sim.step(&mut d).unwrap();
        assert_eq!(rep.executed, 1);
        assert_eq!(sim.last_executed().len(), 1);
    }

    #[test]
    fn rounds_advance_under_synchronous_daemon() {
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![2, 2, 0]);
        let stats = sim
            .run_to_fixpoint(&mut Synchronous::first_action(), RunLimits::default())
            .unwrap();
        // Under the synchronous daemon every step closes a round.
        assert_eq!(stats.steps, stats.rounds);
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![9, 0, 0, 0]);
        let stats = sim
            .run_until(&mut Synchronous::first_action(), RunLimits::default(), |s| {
                s.state(ProcId(0)) <= &5
            })
            .unwrap();
        assert!(stats.steps > 0);
        assert_eq!(sim.state(ProcId(0)), &5);
    }

    #[test]
    fn budget_exhaustion_is_an_error() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![1000, 0, 0, 0]);
        let err = sim
            .run_to_fixpoint(&mut Synchronous::first_action(), RunLimits::new(5, 1000))
            .unwrap_err();
        assert!(matches!(err, SimError::MaxStepsExceeded { steps: 5, .. }));
    }

    #[test]
    fn invalid_daemon_is_reported() {
        struct BadDaemon;
        impl Daemon<i32> for BadDaemon {
            fn select(
                &mut self,
                _: &EnabledSet<'_, i32>,
                _: &mut Vec<(ProcId, ActionId)>,
            ) {
            }
        }
        let g = generators::chain(2).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![5, 0]);
        let err = sim.step(&mut BadDaemon).unwrap_err();
        assert!(matches!(err, SimError::InvalidSelection { .. }));
    }

    #[test]
    fn validation_catches_duplicate_selection() {
        struct DupDaemon;
        impl Daemon<i32> for DupDaemon {
            fn select(
                &mut self,
                snap: &EnabledSet<'_, i32>,
                out: &mut Vec<(ProcId, ActionId)>,
            ) {
                let p = snap.enabled_procs()[0];
                let a = snap.actions_of(p)[0];
                out.push((p, a));
                out.push((p, a));
            }
        }
        let g = generators::chain(2).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![5, 0]);
        sim.set_validation(true);
        let err = sim.step(&mut DupDaemon).unwrap_err();
        assert!(matches!(err, SimError::InvalidSelection { .. }));
        // With validation off the duplicate goes through unchecked.
        let mut sim = Simulator::new(generators::chain(2).unwrap(), PushRight, vec![5, 0]);
        sim.set_validation(false);
        assert!(sim.step(&mut DupDaemon).is_ok());
    }

    #[test]
    fn corrupt_restarts_round_accounting() {
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![0, 0, 0]);
        assert!(sim.is_terminal());
        sim.corrupt(ProcId(0), 7);
        assert!(!sim.is_terminal());
        assert_eq!(sim.enabled_procs(), &[ProcId(0)]);
    }

    #[test]
    fn corrupt_many_applies_batch_and_restarts_accounting_once() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g.clone(), PushRight, vec![0, 0, 0, 0]);
        assert!(sim.is_terminal());
        sim.corrupt_many(&[(ProcId(0), 7), (ProcId(2), 3)]);
        assert!(!sim.is_terminal());
        assert_eq!(sim.state(ProcId(0)), &7);
        assert_eq!(sim.state(ProcId(2)), &3);
        assert_eq!(sim.enabled_procs(), &[ProcId(0), ProcId(2)]);
        // The batch is one fault event: bookkeeping must equal a fresh
        // simulator started from the corrupted configuration (which is what
        // a single round-accounting restart means).
        let fresh = Simulator::new(g, PushRight, sim.states().to_vec());
        assert_eq!(sim.enabled_procs(), fresh.enabled_procs());
        assert_eq!(sim.rounds(), fresh.rounds());
        // An empty batch is a no-op (no spurious accounting restart).
        let before: Vec<_> = sim.enabled_procs().to_vec();
        sim.corrupt_many(&[]);
        assert_eq!(sim.enabled_procs(), &before[..]);
    }

    #[test]
    fn observer_sees_every_step() {
        struct Counter(u64);
        impl Observer<PushRight> for Counter {
            fn step(&mut self, _: &Graph, delta: &StepDelta<'_, PushRight>, _: &[i32]) {
                self.0 += delta.executed().len() as u64;
            }
        }
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![2, 1, 0]);
        let mut obs = Counter(0);
        let mut target = |_: &Simulator<PushRight>| false;
        sim.run_until_observed(
            &mut Synchronous::first_action(),
            &mut obs,
            RunLimits::default(),
            &mut target,
        )
        .unwrap();
        assert!(obs.0 > 0);
    }

    #[test]
    fn delta_reports_old_states_and_full_before_on_request() {
        struct Checker {
            saw: u64,
        }
        impl Observer<PushRight> for Checker {
            fn needs_full_before(&self) -> bool {
                true
            }
            fn step(&mut self, _: &Graph, delta: &StepDelta<'_, PushRight>, after: &[i32]) {
                let before = delta.before().expect("requested full before");
                for (p, _a, old) in delta.iter() {
                    assert_eq!(before[p.index()], *old);
                    assert_eq!(after[p.index()], *old - 1);
                }
                self.saw += delta.executed().len() as u64;
            }
        }
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![3, 2, 0]);
        let mut obs = Checker { saw: 0 };
        let mut target = |_: &Simulator<PushRight>| false;
        sim.run_until_observed(
            &mut Synchronous::first_action(),
            &mut obs,
            RunLimits::default(),
            &mut target,
        )
        .unwrap();
        assert!(obs.saw > 0);
    }

    #[test]
    fn builder_matches_manual_construction() {
        let g = generators::chain(4).unwrap();
        let mut manual = Simulator::new(g.clone(), PushRight, vec![3, 0, 0, 0]);
        manual.set_validation(true);
        let built = Simulator::builder(g, PushRight)
            .states(vec![3, 0, 0, 0])
            .validation(true)
            .limits(RunLimits::new(42, 7))
            .build();
        assert_eq!(manual.states(), built.states());
        assert_eq!(manual.enabled_procs(), built.enabled_procs());
        assert!(built.validation());
        assert_eq!(built.limits(), RunLimits::new(42, 7));
    }

    #[test]
    fn builder_states_with_closure() {
        let sim = Simulator::builder(generators::chain(3).unwrap(), PushRight)
            .states_with(|p| p.index() as i32)
            .build();
        assert_eq!(sim.states(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "initial configuration is required")]
    fn builder_requires_states() {
        let _ = Simulator::builder(generators::chain(3).unwrap(), PushRight).build();
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let g = generators::chain(3).unwrap();
        assert_eq!(
            Simulator::builder(g.clone(), PushRight).try_build().err(),
            Some(SimError::MissingStates)
        );
        assert_eq!(
            Simulator::builder(g.clone(), PushRight).states(vec![1, 2]).try_build().err(),
            Some(SimError::StateCountMismatch { expected: 3, got: 2 })
        );
        let sim = Simulator::builder(g, PushRight).states(vec![1, 2, 3]).try_build().unwrap();
        assert_eq!(sim.states(), &[1, 2, 3]);
    }

    #[test]
    fn stop_policy_limits_is_success_not_error() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![1000, 0, 0, 0]);
        let stats = sim
            .run(
                &mut Synchronous::first_action(),
                &mut NoOpObserver,
                StopPolicy::Limits(RunLimits::new(5, 1000)),
            )
            .unwrap();
        assert_eq!(stats.steps, 5);
        assert!(!stats.terminal);
    }

    #[test]
    fn fanout_feeds_both_observers() {
        struct Counter(u64);
        impl Observer<PushRight> for Counter {
            fn step(&mut self, _: &Graph, delta: &StepDelta<'_, PushRight>, _: &[i32]) {
                self.0 += delta.executed().len() as u64;
            }
        }
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![2, 1, 0]);
        let (mut a, mut b) = (Counter(0), Counter(0));
        let mut both = Fanout::new(&mut a, &mut b);
        sim.run(
            &mut Synchronous::first_action(),
            &mut both,
            StopPolicy::Fixpoint(RunLimits::default()),
        )
        .unwrap();
        assert!(a.0 > 0);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn delta_carries_step_index_and_round_flag() {
        struct Check {
            expected_next_step: u64,
            rounds_seen: u64,
        }
        impl Observer<PushRight> for Check {
            fn step(&mut self, _: &Graph, delta: &StepDelta<'_, PushRight>, _: &[i32]) {
                assert_eq!(delta.step(), self.expected_next_step);
                self.expected_next_step += 1;
                if delta.round_completed() {
                    self.rounds_seen += 1;
                }
            }
        }
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![4, 2, 0]);
        let mut obs = Check { expected_next_step: 0, rounds_seen: 0 };
        sim.run(
            &mut Synchronous::first_action(),
            &mut obs,
            StopPolicy::Fixpoint(RunLimits::default()),
        )
        .unwrap();
        assert_eq!(obs.expected_next_step, sim.steps());
        assert_eq!(obs.rounds_seen, sim.rounds());
    }

    #[test]
    fn dirty_set_recompute_matches_full_recompute() {
        let g = generators::torus(3, 3).unwrap();
        let init: Vec<i32> = (0..9).map(|i| i * 7 % 5).collect();
        let mut sim = Simulator::new(g.clone(), PushRight, init.clone());
        let mut d = CentralSequential::new();
        for _ in 0..20 {
            if sim.is_terminal() {
                break;
            }
            sim.step(&mut d).unwrap();
            // Reference: recompute everything from scratch.
            let fresh = Simulator::new(g.clone(), PushRight, sim.states().to_vec());
            assert_eq!(sim.enabled_procs(), fresh.enabled_procs());
            for p in g.procs() {
                assert_eq!(sim.enabled_actions(p), fresh.enabled_actions(p));
            }
        }
    }
}
