use pif_graph::{Graph, ProcId};

use crate::rounds::RoundCounter;
use crate::{ActionId, Daemon, EnabledSet, Protocol, SimError, View};

/// Budget limits for a simulation run.
///
/// Budgets protect against non-terminating executions (possible from
/// arbitrary configurations of a buggy protocol); exceeding one is reported
/// as a [`SimError`], never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum computation steps.
    pub max_steps: u64,
    /// Maximum completed rounds.
    pub max_rounds: u64,
}

impl RunLimits {
    /// Limits suitable for most experiments: one million steps, one hundred
    /// thousand rounds.
    pub const fn generous() -> Self {
        RunLimits { max_steps: 1_000_000, max_rounds: 100_000 }
    }

    /// Builds explicit limits.
    pub const fn new(max_steps: u64, max_rounds: u64) -> Self {
        RunLimits { max_steps, max_rounds }
    }
}

impl Default for RunLimits {
    fn default() -> Self {
        Self::generous()
    }
}

/// Statistics of a finished (or truncated) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Computation steps executed.
    pub steps: u64,
    /// Rounds completed (Dolev-Israeli-Moran definition).
    pub rounds: u64,
    /// Whether the final configuration is terminal (no enabled processor).
    pub terminal: bool,
}

/// Outcome of a single computation step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// The `(processor, action)` pairs that executed.
    pub executed: Vec<(ProcId, ActionId)>,
    /// Whether this step completed a round.
    pub round_completed: bool,
    /// Whether the *new* configuration is terminal.
    pub terminal: bool,
}

/// Observer of executed actions, used to maintain protocol-external overlays
/// (message registers, delivery logs, invariant monitors) in lockstep with
/// the simulation.
///
/// `before` and `after` are the configurations around the step; `executed`
/// lists the chosen `(processor, action)` pairs.
pub trait Observer<P: Protocol> {
    /// Called once per computation step, after the new configuration is in
    /// place.
    fn step(
        &mut self,
        graph: &Graph,
        before: &[P::State],
        after: &[P::State],
        executed: &[(ProcId, ActionId)],
    );
}

/// The no-op observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOpObserver;

impl<P: Protocol> Observer<P> for NoOpObserver {
    fn step(&mut self, _: &Graph, _: &[P::State], _: &[P::State], _: &[(ProcId, ActionId)]) {}
}

/// Simulator for a [`Protocol`] over a network, under a pluggable
/// [`Daemon`], with round accounting per the paper's definition.
///
/// The simulator owns the configuration (one state per processor) and
/// advances it one *computation step* at a time: it computes the enabled set,
/// asks the daemon for a non-empty selection, evaluates every selected
/// action against the old configuration, and applies all updates at once.
///
/// See the [crate documentation](crate) for a complete example.
#[derive(Clone, Debug)]
pub struct Simulator<P: Protocol> {
    graph: Graph,
    protocol: P,
    states: Vec<P::State>,
    enabled: Vec<Vec<ActionId>>,
    enabled_procs: Vec<ProcId>,
    steps: u64,
    rounds: RoundCounter,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator in the given initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() != graph.len()`.
    pub fn new(graph: Graph, protocol: P, init: Vec<P::State>) -> Self {
        assert_eq!(graph.len(), init.len(), "initial configuration must cover every processor");
        let mut sim = Simulator {
            enabled: vec![Vec::new(); graph.len()],
            enabled_procs: Vec::new(),
            graph,
            protocol,
            states: init,
            steps: 0,
            rounds: RoundCounter::new(std::iter::repeat_n(false, 0)),
        };
        sim.recompute_enabled();
        sim.rounds = RoundCounter::new(sim.enabled.iter().map(|a| !a.is_empty()));
        sim
    }

    /// The network topology.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol under simulation.
    #[inline]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration.
    #[inline]
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The current state of one processor.
    #[inline]
    pub fn state(&self, p: ProcId) -> &P::State {
        &self.states[p.index()]
    }

    /// Overwrites the configuration (e.g. to inject faults mid-run) and
    /// recomputes the enabled set. Round accounting restarts from the new
    /// configuration.
    pub fn set_states(&mut self, states: Vec<P::State>) {
        assert_eq!(self.graph.len(), states.len());
        self.states = states;
        self.recompute_enabled();
        self.rounds = RoundCounter::new(self.enabled.iter().map(|a| !a.is_empty()));
    }

    /// Overwrites a single processor's state (fault injection) and
    /// recomputes bookkeeping, restarting round accounting.
    pub fn corrupt(&mut self, p: ProcId, state: P::State) {
        self.states[p.index()] = state;
        self.recompute_enabled();
        self.rounds = RoundCounter::new(self.enabled.iter().map(|a| !a.is_empty()));
    }

    /// Computation steps executed so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Rounds completed so far.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds.completed()
    }

    /// Whether the current configuration is terminal (no enabled action on
    /// any processor).
    #[inline]
    pub fn is_terminal(&self) -> bool {
        self.enabled_procs.is_empty()
    }

    /// Processors currently enabled, ascending.
    #[inline]
    pub fn enabled_procs(&self) -> &[ProcId] {
        &self.enabled_procs
    }

    /// Enabled actions of processor `p` in the current configuration.
    #[inline]
    pub fn enabled_actions(&self, p: ProcId) -> &[ActionId] {
        &self.enabled[p.index()]
    }

    /// A read view of processor `p` in the current configuration.
    pub fn view(&self, p: ProcId) -> View<'_, P::State> {
        View::new(&self.graph, &self.states, p)
    }

    /// Executes one computation step under `daemon`, reporting what ran.
    /// In a terminal configuration this is a no-op returning an empty
    /// report.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidSelection`] if the daemon violated the model's
    /// contract (selected a disabled processor, a non-enabled action, a
    /// duplicate, or nothing at all while processors were enabled).
    pub fn step(&mut self, daemon: &mut dyn Daemon<P::State>) -> Result<StepReport, SimError> {
        self.step_observed(daemon, &mut NoOpObserver)
    }

    /// Like [`Simulator::step`], additionally notifying `observer`.
    pub fn step_observed(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        observer: &mut dyn Observer<P>,
    ) -> Result<StepReport, SimError> {
        if self.is_terminal() {
            return Ok(StepReport { executed: Vec::new(), round_completed: false, terminal: true });
        }
        let mut selection = Vec::new();
        {
            let snapshot = EnabledSet::new(
                &self.graph,
                &self.states,
                &self.enabled,
                &self.enabled_procs,
                self.steps,
            );
            daemon.select(&snapshot, &mut selection);
        }
        self.validate_selection(&selection)?;

        // Evaluate all selected actions against the OLD configuration, then
        // apply simultaneously (composite atomicity, distributed daemon).
        let mut updates = Vec::with_capacity(selection.len());
        for &(p, a) in &selection {
            let view = View::new(&self.graph, &self.states, p);
            updates.push((p, self.protocol.execute(view, a)));
        }
        let before = self.states.clone();
        for (p, s) in updates {
            self.states[p.index()] = s;
        }
        self.steps += 1;
        self.recompute_enabled_after(&selection);
        observer.step(&self.graph, &before, &self.states, &selection);

        let round_completed = self.rounds.observe_step(
            selection.iter().map(|&(p, _)| p),
            self.enabled.iter().map(|a| !a.is_empty()),
        );
        Ok(StepReport { executed: selection, round_completed, terminal: self.is_terminal() })
    }

    /// Runs until `target` holds (checked before every step), the
    /// configuration is terminal, or a budget is exhausted.
    ///
    /// Returns statistics at the moment the predicate first held (or the
    /// terminal configuration was reached — check `terminal` and re-test the
    /// predicate to distinguish).
    ///
    /// # Errors
    ///
    /// Budget errors ([`SimError::MaxStepsExceeded`],
    /// [`SimError::MaxRoundsExceeded`]) or daemon contract violations.
    pub fn run_until<F>(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        limits: RunLimits,
        mut target: F,
    ) -> Result<RunStats, SimError>
    where
        F: FnMut(&Self) -> bool,
    {
        self.run_until_observed(daemon, &mut NoOpObserver, limits, &mut target)
    }

    /// Like [`Simulator::run_until`] with an [`Observer`].
    pub fn run_until_observed(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        observer: &mut dyn Observer<P>,
        limits: RunLimits,
        target: &mut dyn FnMut(&Self) -> bool,
    ) -> Result<RunStats, SimError> {
        let start_steps = self.steps;
        let start_rounds = self.rounds.completed();
        loop {
            if target(self) {
                return Ok(self.stats_since(start_steps, start_rounds));
            }
            if self.is_terminal() {
                return Ok(self.stats_since(start_steps, start_rounds));
            }
            if self.steps - start_steps >= limits.max_steps {
                return Err(SimError::MaxStepsExceeded {
                    steps: self.steps - start_steps,
                    rounds: self.rounds.completed() - start_rounds,
                });
            }
            if self.rounds.completed() - start_rounds >= limits.max_rounds {
                return Err(SimError::MaxRoundsExceeded {
                    steps: self.steps - start_steps,
                    rounds: self.rounds.completed() - start_rounds,
                });
            }
            self.step_observed(daemon, observer)?;
        }
    }

    /// Runs until the configuration is terminal (no enabled processor).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run_until`].
    pub fn run_to_fixpoint(
        &mut self,
        daemon: &mut dyn Daemon<P::State>,
        limits: RunLimits,
    ) -> Result<RunStats, SimError> {
        self.run_until(daemon, limits, |_| false)
    }

    fn stats_since(&self, start_steps: u64, start_rounds: u64) -> RunStats {
        RunStats {
            steps: self.steps - start_steps,
            rounds: self.rounds.completed() - start_rounds,
            terminal: self.is_terminal(),
        }
    }

    fn validate_selection(&self, selection: &[(ProcId, ActionId)]) -> Result<(), SimError> {
        if selection.is_empty() {
            return Err(SimError::InvalidSelection {
                reason: "empty selection while processors are enabled".into(),
                proc: None,
                action: None,
            });
        }
        let mut seen = vec![false; self.graph.len()];
        for &(p, a) in selection {
            if p.index() >= self.graph.len() {
                return Err(SimError::InvalidSelection {
                    reason: "processor out of range".into(),
                    proc: Some(p),
                    action: Some(a),
                });
            }
            if seen[p.index()] {
                return Err(SimError::InvalidSelection {
                    reason: "processor selected twice".into(),
                    proc: Some(p),
                    action: Some(a),
                });
            }
            seen[p.index()] = true;
            if !self.enabled[p.index()].contains(&a) {
                return Err(SimError::InvalidSelection {
                    reason: "action not enabled for processor".into(),
                    proc: Some(p),
                    action: Some(a),
                });
            }
        }
        Ok(())
    }

    fn recompute_enabled(&mut self) {
        let mut buf = Vec::new();
        for p in self.graph.procs() {
            buf.clear();
            let view = View::new(&self.graph, &self.states, p);
            self.protocol.enabled_actions(view, &mut buf);
            self.enabled[p.index()].clear();
            self.enabled[p.index()].extend_from_slice(&buf);
        }
        self.rebuild_enabled_procs();
    }

    /// Recomputes enabled actions only where they can have changed: the
    /// executed processors and their neighbors (guards read only the local
    /// neighborhood).
    fn recompute_enabled_after(&mut self, executed: &[(ProcId, ActionId)]) {
        let mut dirty = vec![false; self.graph.len()];
        for &(p, _) in executed {
            dirty[p.index()] = true;
            for q in self.graph.neighbors(p) {
                dirty[q.index()] = true;
            }
        }
        let mut buf = Vec::new();
        for p in self.graph.procs() {
            if !dirty[p.index()] {
                continue;
            }
            buf.clear();
            let view = View::new(&self.graph, &self.states, p);
            self.protocol.enabled_actions(view, &mut buf);
            self.enabled[p.index()].clear();
            self.enabled[p.index()].extend_from_slice(&buf);
        }
        self.rebuild_enabled_procs();
    }

    fn rebuild_enabled_procs(&mut self) {
        self.enabled_procs.clear();
        for p in self.graph.procs() {
            if !self.enabled[p.index()].is_empty() {
                self.enabled_procs.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::{CentralSequential, Synchronous};
    use pif_graph::generators;

    /// Token-passing toy protocol on a chain: a processor holding a value
    /// greater than its right neighbor's pushes the excess right.
    struct PushRight;

    impl Protocol for PushRight {
        type State = i32;
        fn action_names(&self) -> &'static [&'static str] {
            &["push"]
        }
        fn enabled_actions(&self, view: View<'_, i32>, out: &mut Vec<ActionId>) {
            // Enabled iff some neighbor with larger id has a smaller value.
            if view.neighbor_states().any(|(q, &s)| q > view.pid() && s < *view.me()) {
                out.push(ActionId(0));
            }
        }
        fn execute(&self, view: View<'_, i32>, _: ActionId) -> i32 {
            *view.me() - 1
        }
    }

    #[test]
    fn fixpoint_on_monotone_protocol() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![3, 0, 0, 0]);
        let stats = sim
            .run_to_fixpoint(&mut Synchronous::first_action(), RunLimits::default())
            .unwrap();
        assert!(stats.terminal);
        assert!(sim.is_terminal());
        assert_eq!(sim.state(ProcId(0)), &0);
    }

    #[test]
    fn step_on_terminal_configuration_is_noop() {
        let g = generators::chain(2).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![0, 0]);
        assert!(sim.is_terminal());
        let rep = sim.step(&mut Synchronous::first_action()).unwrap();
        assert!(rep.terminal);
        assert!(rep.executed.is_empty());
        assert_eq!(sim.steps(), 0);
    }

    #[test]
    fn central_daemon_executes_one_processor_per_step() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![5, 5, 5, 0]);
        let mut d = CentralSequential::new();
        let rep = sim.step(&mut d).unwrap();
        assert_eq!(rep.executed.len(), 1);
    }

    #[test]
    fn rounds_advance_under_synchronous_daemon() {
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![2, 2, 0]);
        let stats = sim
            .run_to_fixpoint(&mut Synchronous::first_action(), RunLimits::default())
            .unwrap();
        // Under the synchronous daemon every step closes a round.
        assert_eq!(stats.steps, stats.rounds);
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![9, 0, 0, 0]);
        let stats = sim
            .run_until(&mut Synchronous::first_action(), RunLimits::default(), |s| {
                s.state(ProcId(0)) <= &5
            })
            .unwrap();
        assert!(stats.steps > 0);
        assert_eq!(sim.state(ProcId(0)), &5);
    }

    #[test]
    fn budget_exhaustion_is_an_error() {
        let g = generators::chain(4).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![1000, 0, 0, 0]);
        let err = sim
            .run_to_fixpoint(&mut Synchronous::first_action(), RunLimits::new(5, 1000))
            .unwrap_err();
        assert!(matches!(err, SimError::MaxStepsExceeded { steps: 5, .. }));
    }

    #[test]
    fn invalid_daemon_is_reported() {
        struct BadDaemon;
        impl Daemon<i32> for BadDaemon {
            fn select(
                &mut self,
                _: &EnabledSet<'_, i32>,
                _: &mut Vec<(ProcId, ActionId)>,
            ) {
            }
        }
        let g = generators::chain(2).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![5, 0]);
        let err = sim.step(&mut BadDaemon).unwrap_err();
        assert!(matches!(err, SimError::InvalidSelection { .. }));
    }

    #[test]
    fn corrupt_restarts_round_accounting() {
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![0, 0, 0]);
        assert!(sim.is_terminal());
        sim.corrupt(ProcId(0), 7);
        assert!(!sim.is_terminal());
        assert_eq!(sim.enabled_procs(), &[ProcId(0)]);
    }

    #[test]
    fn observer_sees_every_step() {
        struct Counter(u64);
        impl Observer<PushRight> for Counter {
            fn step(&mut self, _: &Graph, _: &[i32], _: &[i32], ex: &[(ProcId, ActionId)]) {
                self.0 += ex.len() as u64;
            }
        }
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, PushRight, vec![2, 1, 0]);
        let mut obs = Counter(0);
        let mut target = |_: &Simulator<PushRight>| false;
        sim.run_until_observed(
            &mut Synchronous::first_action(),
            &mut obs,
            RunLimits::default(),
            &mut target,
        )
        .unwrap();
        assert!(obs.0 > 0);
    }

    #[test]
    fn dirty_set_recompute_matches_full_recompute() {
        let g = generators::torus(3, 3).unwrap();
        let init: Vec<i32> = (0..9).map(|i| i * 7 % 5).collect();
        let mut sim = Simulator::new(g.clone(), PushRight, init.clone());
        let mut d = CentralSequential::new();
        for _ in 0..20 {
            if sim.is_terminal() {
                break;
            }
            sim.step(&mut d).unwrap();
            // Reference: recompute everything from scratch.
            let fresh = Simulator::new(g.clone(), PushRight, sim.states().to_vec());
            assert_eq!(sim.enabled_procs(), fresh.enabled_procs());
            for p in g.procs() {
                assert_eq!(sim.enabled_actions(p), fresh.enabled_actions(p));
            }
        }
    }
}
