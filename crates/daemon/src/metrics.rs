//! Phase-resolved run metrics.
//!
//! [`MetricsObserver`] classifies every executed action into the paper's
//! PIF phases via [`Protocol::classify`] and accumulates per-phase move,
//! step and round counters, per-processor correction (abnormal-behavior)
//! counts, and a step-latency histogram. The phase lookup table is
//! precomputed at construction, and all counters are fixed arrays or
//! preallocated vectors, so observing a step performs **no heap
//! allocation** — the observer is safe to attach to the simulator's
//! allocation-free hot loop (pinned by `tests/alloc_steps.rs`).
//!
//! The deterministic part of the metrics (everything except wall-clock
//! latency) is exported as a [`PhaseReport`], which is `PartialEq` so a
//! replayed run can be checked for *identical* phase behavior.

use std::time::Instant;

use pif_graph::{Graph, ProcId};

use crate::{Observer, PhaseTag, Protocol, StepDelta};

/// Number of power-of-two latency buckets (covers 1 ns .. ~584 years).
const LATENCY_BUCKETS: usize = 64;

/// Power-of-two-bucketed histogram of per-step wall-clock latencies.
///
/// Bucket `i` counts observations whose latency in nanoseconds `d`
/// satisfies `2^(i-1) < d <= 2^i` (bucket 0 counts `d <= 1`). Recording is
/// allocation-free.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    observations: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; LATENCY_BUCKETS], observations: 0 }
    }

    /// Records one latency observation.
    pub fn record(&mut self, nanos: u64) {
        let bucket = if nanos <= 1 { 0 } else { 64 - (nanos - 1).leading_zeros() as usize };
        self.buckets[bucket.min(LATENCY_BUCKETS - 1)] += 1;
        self.observations += 1;
    }

    /// Number of recorded observations.
    #[inline]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The raw bucket counts (bucket `i` holds latencies `<= 2^i` ns).
    #[inline]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper bound (in nanoseconds) of the bucket containing the `q`
    /// quantile (`0.0..=1.0`) of observations, or `None` if empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.observations == 0 {
            return None;
        }
        let rank = ((self.observations as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << i);
            }
        }
        Some(u64::MAX)
    }

    /// Clears all buckets.
    pub fn reset(&mut self) {
        self.buckets = [0; LATENCY_BUCKETS];
        self.observations = 0;
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The deterministic phase metrics of a run: per-phase move/step/round
/// counts, totals, and the abnormal-processor count. Comparable with `==`
/// across a record/replay pair.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PhaseReport {
    /// Executed actions per phase (a step may contribute several).
    pub moves: [u64; PhaseTag::COUNT],
    /// Steps in which at least one action of the phase executed.
    pub steps: [u64; PhaseTag::COUNT],
    /// Completed rounds in which at least one action of the phase executed.
    pub rounds: [u64; PhaseTag::COUNT],
    /// Total steps observed.
    pub total_steps: u64,
    /// Total completed rounds observed.
    pub total_rounds: u64,
    /// Total executed actions observed.
    pub total_moves: u64,
    /// Processors that executed at least one [`PhaseTag::Correction`]
    /// action — the paper's abnormal processors.
    pub abnormal_procs: u64,
}

impl PhaseReport {
    /// Moves attributed to `tag`.
    #[inline]
    pub fn moves_of(&self, tag: PhaseTag) -> u64 {
        self.moves[tag.index()]
    }

    /// Steps containing at least one `tag` action.
    #[inline]
    pub fn steps_of(&self, tag: PhaseTag) -> u64 {
        self.steps[tag.index()]
    }

    /// Completed rounds containing at least one `tag` action.
    #[inline]
    pub fn rounds_of(&self, tag: PhaseTag) -> u64 {
        self.rounds[tag.index()]
    }
}

/// Observer accumulating phase-resolved metrics for a run.
///
/// Construct with [`MetricsObserver::for_protocol`], attach to any run
/// entry point (alone or via [`crate::Fanout`]), then read the results
/// with [`MetricsObserver::report`] / [`MetricsObserver::latency`].
///
/// ```
/// use pif_daemon::daemons::Synchronous;
/// use pif_daemon::{MetricsObserver, PhaseTag, RunLimits, Simulator, StopPolicy};
/// # use pif_daemon::{ActionId, Protocol, View};
/// # use pif_graph::generators;
/// # struct MaxProto;
/// # impl Protocol for MaxProto {
/// #     type State = u32;
/// #     fn action_names(&self) -> &'static [&'static str] { &["adopt-max"] }
/// #     fn enabled_actions(&self, v: View<'_, u32>, out: &mut Vec<ActionId>) {
/// #         if v.neighbor_states().map(|(_, &s)| s).max().unwrap_or(0) > *v.me() {
/// #             out.push(ActionId(0));
/// #         }
/// #     }
/// #     fn execute(&self, v: View<'_, u32>, _: ActionId) -> u32 {
/// #         v.neighbor_states().map(|(_, &s)| s).max().unwrap()
/// #     }
/// # }
/// let g = generators::chain(5).unwrap();
/// let mut sim = Simulator::new(g, MaxProto, vec![3, 0, 9, 0, 1]);
/// let mut metrics = MetricsObserver::for_protocol(sim.protocol(), sim.graph().len());
/// sim.run(
///     &mut Synchronous::first_action(),
///     &mut metrics,
///     StopPolicy::Fixpoint(RunLimits::default()),
/// )
/// .unwrap();
/// let report = metrics.report();
/// // MaxProto doesn't override `classify`, so everything lands in Other.
/// assert_eq!(report.total_moves, report.moves_of(PhaseTag::Other));
/// ```
#[derive(Clone, Debug)]
pub struct MetricsObserver {
    /// `ActionId` index → phase, precomputed from [`Protocol::classify`].
    table: Vec<PhaseTag>,
    report: PhaseReport,
    /// Correction moves per processor (preallocated, length `n`).
    correction_moves: Vec<u64>,
    /// Phases seen in the current step (scratch, cleared per step).
    step_seen: [bool; PhaseTag::COUNT],
    /// Phases seen in the currently open round (cleared on completion).
    round_seen: [bool; PhaseTag::COUNT],
    latency: LatencyHistogram,
    last_step_at: Option<Instant>,
}

impl MetricsObserver {
    /// Builds an observer for `protocol` on a network of `n` processors,
    /// precomputing the action-to-phase table so the step path never calls
    /// [`Protocol::classify`].
    pub fn for_protocol<P: Protocol>(protocol: &P, n: usize) -> Self {
        let table = (0..protocol.action_names().len())
            .map(|i| protocol.classify(crate::ActionId(i)))
            .collect();
        MetricsObserver {
            table,
            report: PhaseReport::default(),
            correction_moves: vec![0; n],
            step_seen: [false; PhaseTag::COUNT],
            round_seen: [false; PhaseTag::COUNT],
            latency: LatencyHistogram::new(),
            last_step_at: None,
        }
    }

    /// The deterministic phase metrics accumulated so far. Note that
    /// per-phase *round* counters only cover completed rounds; activity in
    /// a trailing unfinished round is visible in the move/step counters.
    pub fn report(&self) -> PhaseReport {
        self.report.clone()
    }

    /// The wall-clock step-latency histogram (time between consecutive
    /// observed steps; the first step of a run is not charged).
    #[inline]
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Correction moves executed by processor `p`.
    #[inline]
    pub fn correction_moves(&self, p: ProcId) -> u64 {
        self.correction_moves[p.index()]
    }

    /// Clears all accumulated metrics, keeping the phase table.
    pub fn reset(&mut self) {
        self.report = PhaseReport::default();
        self.correction_moves.iter_mut().for_each(|c| *c = 0);
        self.step_seen = [false; PhaseTag::COUNT];
        self.round_seen = [false; PhaseTag::COUNT];
        self.latency.reset();
        self.last_step_at = None;
    }

    #[inline]
    fn tag_of(&self, action: crate::ActionId) -> PhaseTag {
        self.table.get(action.index()).copied().unwrap_or(PhaseTag::Other)
    }
}

impl<P: Protocol> Observer<P> for MetricsObserver {
    fn step(&mut self, _graph: &Graph, delta: &StepDelta<'_, P>, _after: &[P::State]) {
        self.step_seen = [false; PhaseTag::COUNT];
        for &(p, a) in delta.executed() {
            let tag = self.tag_of(a);
            let i = tag.index();
            self.report.moves[i] += 1;
            self.step_seen[i] = true;
            self.round_seen[i] = true;
            if tag == PhaseTag::Correction {
                let moves = &mut self.correction_moves[p.index()];
                if *moves == 0 {
                    self.report.abnormal_procs += 1;
                }
                *moves += 1;
            }
        }
        self.report.total_moves += delta.executed().len() as u64;
        self.report.total_steps += 1;
        for i in 0..PhaseTag::COUNT {
            if self.step_seen[i] {
                self.report.steps[i] += 1;
            }
        }
        if delta.round_completed() {
            self.report.total_rounds += 1;
            for i in 0..PhaseTag::COUNT {
                if self.round_seen[i] {
                    self.report.rounds[i] += 1;
                    self.round_seen[i] = false;
                }
            }
        }
        let now = Instant::now();
        if let Some(prev) = self.last_step_at {
            self.latency.record(now.duration_since(prev).as_nanos().min(u64::MAX as u128) as u64);
        }
        self.last_step_at = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::Synchronous;
    use crate::{ActionId, RunLimits, Simulator, StopPolicy, View};
    use pif_graph::generators;

    /// Two-action toy protocol: "grow" while below a cap, then "settle"
    /// once, so both phases appear in a run. `grow` is classified as
    /// Broadcast and `settle` as Correction.
    struct TwoPhase {
        cap: i32,
    }

    impl Protocol for TwoPhase {
        type State = i32;
        fn action_names(&self) -> &'static [&'static str] {
            &["grow", "settle"]
        }
        fn enabled_actions(&self, v: View<'_, i32>, out: &mut Vec<ActionId>) {
            if *v.me() >= 0 && *v.me() < self.cap {
                out.push(ActionId(0));
            } else if *v.me() < 0 {
                out.push(ActionId(1));
            }
        }
        fn execute(&self, v: View<'_, i32>, a: ActionId) -> i32 {
            match a {
                ActionId(0) => *v.me() + 1,
                _ => self.cap,
            }
        }
        fn classify(&self, action: ActionId) -> PhaseTag {
            match action {
                ActionId(0) => PhaseTag::Broadcast,
                _ => PhaseTag::Correction,
            }
        }
    }

    #[test]
    fn phases_are_attributed_and_totals_add_up() {
        let g = generators::chain(4).unwrap();
        let protocol = TwoPhase { cap: 3 };
        let mut metrics = MetricsObserver::for_protocol(&protocol, 4);
        let mut sim = Simulator::new(g, protocol, vec![0, -5, 0, -2]);
        sim.run(
            &mut Synchronous::first_action(),
            &mut metrics,
            StopPolicy::Fixpoint(RunLimits::default()),
        )
        .unwrap();
        let r = metrics.report();
        // Processors 1 and 3 each settle exactly once, then grow.
        assert_eq!(r.moves_of(PhaseTag::Correction), 2);
        assert_eq!(r.abnormal_procs, 2);
        assert_eq!(metrics.correction_moves(pif_graph::ProcId(1)), 1);
        assert_eq!(metrics.correction_moves(pif_graph::ProcId(0)), 0);
        // Settled processors land directly on the cap, so only the two
        // processors starting at 0 grow (cap times each).
        assert_eq!(r.moves_of(PhaseTag::Broadcast), 2 * 3);
        assert_eq!(r.total_moves, r.moves.iter().sum::<u64>());
        assert_eq!(r.moves_of(PhaseTag::Other), 0);
        assert!(r.total_steps > 0);
        assert_eq!(r.total_rounds, sim.rounds());
        // Under the synchronous daemon every step closes a round, so
        // per-phase step and round counts coincide.
        assert_eq!(r.steps_of(PhaseTag::Broadcast), r.rounds_of(PhaseTag::Broadcast));
    }

    #[test]
    fn reports_compare_equal_across_identical_runs() {
        let run = || {
            let g = generators::ring(6).unwrap();
            let protocol = TwoPhase { cap: 4 };
            let mut metrics = MetricsObserver::for_protocol(&protocol, 6);
            let mut sim = Simulator::new(g, protocol, vec![-1, 0, 2, -3, 1, 0]);
            sim.run(
                &mut Synchronous::first_action(),
                &mut metrics,
                StopPolicy::Fixpoint(RunLimits::default()),
            )
            .unwrap();
            metrics.report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), None);
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 2
        h.record(1024); // bucket 10
        assert_eq!(h.observations(), 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.quantile_upper_bound(0.0), Some(1));
        assert_eq!(h.quantile_upper_bound(1.0), Some(1024));
        h.reset();
        assert_eq!(h.observations(), 0);
    }

    #[test]
    fn reset_clears_all_counters() {
        let protocol = TwoPhase { cap: 2 };
        let mut metrics = MetricsObserver::for_protocol(&protocol, 3);
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, protocol, vec![-1, 0, 0]);
        sim.run(
            &mut Synchronous::first_action(),
            &mut metrics,
            StopPolicy::Fixpoint(RunLimits::default()),
        )
        .unwrap();
        assert_ne!(metrics.report(), PhaseReport::default());
        metrics.reset();
        assert_eq!(metrics.report(), PhaseReport::default());
        assert_eq!(metrics.correction_moves(pif_graph::ProcId(0)), 0);
    }
}
