//! Versioned JSONL trace capture and deterministic replay.
//!
//! A *trace* is a committable artifact of one simulation run: the network,
//! the initial configuration, the daemon identity/seed, every executed
//! `(processor, action)` pair, and a footer with the final configuration
//! plus phase-resolved metrics. Traces turn a failing fuzz seed into a
//! file that replays bit-identically.
//!
//! The file format is JSON Lines (one JSON document per line):
//!
//! 1. a header `{"format":"pif-trace","version":1,"graph":{...},
//!    "actions":[...],"daemon":"...","seed":...,"init":[...]}`;
//! 2. one line `{"step":k,"exec":[[p,a],...]}` per computation step;
//! 3. a footer `{"final":[...],"totals":[steps,rounds,moves],
//!    "phases":{...},"abnormal":...}`.
//!
//! States are carried as opaque tokens produced by [`TraceState`]; the
//! replayer decodes them for the concrete protocol. Replay re-executes the
//! recorded selections through the normal simulator with validation on, so
//! any divergence (protocol change, nondeterminism) surfaces as a typed
//! [`TraceError::Divergence`], never a panic. See `DESIGN.md` §10.

use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

use pif_graph::{Graph, GraphError, ProcId};

use crate::json::{self, Json};
use crate::metrics::{MetricsObserver, PhaseReport};
use crate::{ActionId, Daemon, EnabledSet, Fanout, Observer, PhaseTag, Protocol, Simulator,
            StepDelta};

/// The trace format version this build reads and writes.
pub const TRACE_VERSION: u64 = 1;

/// Per-processor state that can round-trip through a trace file as a
/// compact token. The token must be free of newlines (it is JSON-escaped,
/// so any other characters are fine) and `decode(encode(s)) == s` must
/// hold exactly — replay compares decoded configurations bit-for-bit.
pub trait TraceState: Sized {
    /// Appends the token for `self` to `out`.
    fn encode(&self, out: &mut String);

    /// Parses a token produced by [`TraceState::encode`]; `None` on any
    /// malformed input (the replayer converts this into a typed error).
    fn decode(token: &str) -> Option<Self>;
}

macro_rules! impl_trace_state_via_display {
    ($($t:ty),*) => {$(
        impl TraceState for $t {
            fn encode(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
            fn decode(token: &str) -> Option<Self> {
                token.parse().ok()
            }
        }
    )*};
}

impl_trace_state_via_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Error raised while reading, parsing or replaying a trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A line of the trace file is not valid JSON or misses required
    /// fields (`line` is 1-based).
    Parse {
        /// 1-based line number in the trace file.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The trace was written by an incompatible format version.
    UnsupportedVersion {
        /// The version the file declared.
        found: u64,
    },
    /// The recorded edge list does not describe a valid network.
    Graph(GraphError),
    /// A recorded state token did not decode for the replaying protocol.
    BadState {
        /// Index of the processor whose state failed to decode.
        proc: usize,
        /// The offending token.
        token: String,
    },
    /// Replay disagreed with the recording: a recorded selection was not
    /// enabled, the run ended early, or the final configurations or phase
    /// metrics differ.
    Divergence {
        /// Zero-based step at which replay diverged (or the recorded step
        /// count if the divergence was detected after the run).
        step: u64,
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::Parse { line, msg } => write!(f, "trace line {line}: {msg}"),
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace version {found} (this build reads {TRACE_VERSION})")
            }
            TraceError::Graph(e) => write!(f, "recorded graph is invalid: {e}"),
            TraceError::BadState { proc, token } => {
                write!(f, "state token {token:?} of p{proc} does not decode for this protocol")
            }
            TraceError::Divergence { step, detail } => {
                write!(f, "replay diverged at step {step}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<GraphError> for TraceError {
    fn from(e: GraphError) -> Self {
        TraceError::Graph(e)
    }
}

/// A fully parsed (or fully recorded) trace: everything needed to replay
/// the run and to compare two runs for equality.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedTrace {
    /// Format version ([`TRACE_VERSION`] for traces written by this build).
    pub version: u64,
    /// Number of processors.
    pub n: usize,
    /// Display name of the network.
    pub graph_name: String,
    /// Undirected edge list, each `(u, v)` with `u < v`.
    pub edges: Vec<(u32, u32)>,
    /// Action names of the recorded protocol, indexed by [`ActionId`].
    pub actions: Vec<String>,
    /// Name of the daemon that drove the recorded run (provenance).
    pub daemon: String,
    /// Seed of the recorded daemon (provenance).
    pub seed: u64,
    /// Initial configuration, one [`TraceState`] token per processor.
    pub init: Vec<String>,
    /// Executed `(processor, action)` pairs, one entry per step.
    pub steps: Vec<Vec<(ProcId, ActionId)>>,
    /// Final configuration, one token per processor.
    pub final_states: Vec<String>,
    /// Steps, completed rounds and moves of the recorded run.
    pub totals: (u64, u64, u64),
    /// Phase-resolved metrics of the recorded run.
    pub phases: PhaseReport,
}

impl RecordedTrace {
    /// Rebuilds the recorded network.
    ///
    /// # Errors
    ///
    /// [`TraceError::Graph`] if the edge list is not a valid connected
    /// topology.
    pub fn graph(&self) -> Result<Graph, TraceError> {
        Ok(Graph::from_edges(self.n, self.edges.iter().copied())?
            .with_name(self.graph_name.clone()))
    }

    /// Decodes the initial configuration for a concrete state type.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadState`] on the first token that fails to decode.
    pub fn decode_init<S: TraceState>(&self) -> Result<Vec<S>, TraceError> {
        decode_states(&self.init)
    }

    /// Serializes the trace to its JSONL file representation (ends with a
    /// newline). Serialization is deterministic: equal traces produce
    /// byte-identical files.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        // Header.
        let _ = write!(out, "{{\"format\":\"pif-trace\",\"version\":{}", self.version);
        let _ = write!(out, ",\"graph\":{{\"n\":{},\"name\":", self.n);
        json::write_string(&self.graph_name, &mut out);
        out.push_str(",\"edges\":[");
        for (i, (u, v)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{u},{v}]");
        }
        out.push_str("]},\"actions\":[");
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(a, &mut out);
        }
        out.push_str("],\"daemon\":");
        json::write_string(&self.daemon, &mut out);
        let _ = write!(out, ",\"seed\":{},\"init\":[", self.seed);
        for (i, s) in self.init.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(s, &mut out);
        }
        out.push_str("]}\n");
        // Steps.
        for (k, sel) in self.steps.iter().enumerate() {
            let _ = write!(out, "{{\"step\":{k},\"exec\":[");
            for (i, (p, a)) in sel.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", p.index(), a.index());
            }
            out.push_str("]}\n");
        }
        // Footer.
        out.push_str("{\"final\":[");
        for (i, s) in self.final_states.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(s, &mut out);
        }
        let _ = write!(
            out,
            "],\"totals\":[{},{},{}],\"phases\":{{",
            self.totals.0, self.totals.1, self.totals.2
        );
        for (i, tag) in PhaseTag::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":[{},{},{}]",
                tag.name(),
                self.phases.moves_of(*tag),
                self.phases.steps_of(*tag),
                self.phases.rounds_of(*tag)
            );
        }
        let _ = write!(out, "}},\"abnormal\":{}}}", self.phases.abnormal_procs);
        out.push('\n');
        out
    }

    /// Parses a trace from its JSONL representation.
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] on malformed JSON or missing fields,
    /// [`TraceError::UnsupportedVersion`] on a version mismatch.
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| (i + 1, l));
        let (header_no, header_line) = lines
            .next()
            .ok_or_else(|| parse_err(1, "empty trace file"))?;
        let header = parse_json_line(header_no, header_line)?;
        if header.get("format").and_then(Json::as_str) != Some("pif-trace") {
            return Err(parse_err(header_no, "missing or wrong \"format\" marker"));
        }
        let version = header
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| parse_err(header_no, "missing \"version\""))?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let graph = header
            .get("graph")
            .ok_or_else(|| parse_err(header_no, "missing \"graph\""))?;
        let n = graph
            .get("n")
            .and_then(Json::as_usize)
            .ok_or_else(|| parse_err(header_no, "missing graph size \"n\""))?;
        let graph_name = graph
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("unnamed")
            .to_string();
        let mut edges = Vec::new();
        for e in required_array(graph.get("edges"), header_no, "graph \"edges\"")? {
            let pair = e.as_array().filter(|a| a.len() == 2);
            let (u, v) = match pair {
                Some([u, v]) => (u.as_u64(), v.as_u64()),
                _ => (None, None),
            };
            match (u, v) {
                (Some(u), Some(v)) => edges.push((u as u32, v as u32)),
                _ => return Err(parse_err(header_no, "malformed edge entry")),
            }
        }
        let actions = string_array(header.get("actions"), header_no, "\"actions\"")?;
        let daemon = header
            .get("daemon")
            .and_then(Json::as_str)
            .ok_or_else(|| parse_err(header_no, "missing \"daemon\""))?
            .to_string();
        let seed = header
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| parse_err(header_no, "missing \"seed\""))?;
        let init = string_array(header.get("init"), header_no, "\"init\"")?;
        if init.len() != n {
            return Err(parse_err(header_no, "\"init\" does not cover every processor"));
        }

        let mut steps: Vec<Vec<(ProcId, ActionId)>> = Vec::new();
        let mut footer: Option<(usize, Json)> = None;
        for (line_no, line) in lines {
            if footer.is_some() {
                return Err(parse_err(line_no, "content after footer line"));
            }
            let doc = parse_json_line(line_no, line)?;
            if doc.get("final").is_some() {
                footer = Some((line_no, doc));
                continue;
            }
            let k = doc
                .get("step")
                .and_then(Json::as_usize)
                .ok_or_else(|| parse_err(line_no, "step line missing \"step\""))?;
            if k != steps.len() {
                return Err(parse_err(line_no, "step indices out of order"));
            }
            let mut sel = Vec::new();
            for e in required_array(doc.get("exec"), line_no, "\"exec\"")? {
                let pair = e.as_array().filter(|a| a.len() == 2);
                let (p, a) = match pair {
                    Some([p, a]) => (p.as_usize(), a.as_usize()),
                    _ => (None, None),
                };
                match (p, a) {
                    (Some(p), Some(a)) if p < n => sel.push((ProcId::from_index(p), ActionId(a))),
                    _ => return Err(parse_err(line_no, "malformed \"exec\" entry")),
                }
            }
            steps.push(sel);
        }
        let (footer_no, footer) =
            footer.ok_or_else(|| parse_err(0, "trace has no footer line"))?;
        let final_states = string_array(footer.get("final"), footer_no, "\"final\"")?;
        if final_states.len() != n {
            return Err(parse_err(footer_no, "\"final\" does not cover every processor"));
        }
        let totals_arr = required_array(footer.get("totals"), footer_no, "\"totals\"")?;
        let totals = match totals_arr {
            [s, r, m] => match (s.as_u64(), r.as_u64(), m.as_u64()) {
                (Some(s), Some(r), Some(m)) => (s, r, m),
                _ => return Err(parse_err(footer_no, "non-numeric \"totals\"")),
            },
            _ => return Err(parse_err(footer_no, "\"totals\" must have three entries")),
        };
        let phases_obj = footer
            .get("phases")
            .ok_or_else(|| parse_err(footer_no, "missing \"phases\""))?;
        let mut phases = PhaseReport {
            total_steps: totals.0,
            total_rounds: totals.1,
            total_moves: totals.2,
            abnormal_procs: footer
                .get("abnormal")
                .and_then(Json::as_u64)
                .ok_or_else(|| parse_err(footer_no, "missing \"abnormal\""))?,
            ..PhaseReport::default()
        };
        for tag in PhaseTag::ALL {
            let triple = required_array(phases_obj.get(tag.name()), footer_no, "phase entry")?;
            match triple {
                [m, s, r] => match (m.as_u64(), s.as_u64(), r.as_u64()) {
                    (Some(m), Some(s), Some(r)) => {
                        phases.moves[tag.index()] = m;
                        phases.steps[tag.index()] = s;
                        phases.rounds[tag.index()] = r;
                    }
                    _ => return Err(parse_err(footer_no, "non-numeric phase entry")),
                },
                _ => return Err(parse_err(footer_no, "phase entry must have three counters")),
            }
        }

        Ok(RecordedTrace {
            version,
            n,
            graph_name,
            edges,
            actions,
            daemon,
            seed,
            init,
            steps,
            final_states,
            totals,
            phases,
        })
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on filesystem failure.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        std::fs::write(path, self.to_jsonl())?;
        Ok(())
    }

    /// Reads and parses a trace file.
    ///
    /// # Errors
    ///
    /// Same as [`RecordedTrace::from_jsonl`], plus [`TraceError::Io`].
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::from_jsonl(&std::fs::read_to_string(path)?)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> TraceError {
    TraceError::Parse { line, msg: msg.into() }
}

fn parse_json_line(line_no: usize, line: &str) -> Result<Json, TraceError> {
    json::parse(line).map_err(|e| parse_err(line_no, e.to_string()))
}

fn required_array<'j>(
    value: Option<&'j Json>,
    line: usize,
    what: &str,
) -> Result<&'j [Json], TraceError> {
    value
        .and_then(Json::as_array)
        .ok_or_else(|| parse_err(line, format!("missing or non-array {what}")))
}

fn string_array(value: Option<&Json>, line: usize, what: &str) -> Result<Vec<String>, TraceError> {
    required_array(value, line, what)?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| parse_err(line, format!("non-string entry in {what}")))
        })
        .collect()
}

fn decode_states<S: TraceState>(tokens: &[String]) -> Result<Vec<S>, TraceError> {
    tokens
        .iter()
        .enumerate()
        .map(|(i, t)| {
            S::decode(t).ok_or_else(|| TraceError::BadState { proc: i, token: t.clone() })
        })
        .collect()
}

fn encode_states<S: TraceState>(states: &[S]) -> Vec<String> {
    states
        .iter()
        .map(|s| {
            let mut token = String::new();
            s.encode(&mut token);
            token
        })
        .collect()
}

/// Observer that records every executed selection, for later serialization
/// into a [`RecordedTrace`].
///
/// Start it on a freshly configured simulator with
/// [`TraceRecorder::start`], attach it to the run (typically alongside a
/// [`MetricsObserver`] via [`Fanout`]), then seal the trace with
/// [`TraceRecorder::finish`].
pub struct TraceRecorder {
    trace: RecordedTrace,
    start_steps: u64,
    start_rounds: u64,
}

impl TraceRecorder {
    /// Captures the run preamble (network, actions, initial configuration)
    /// from `sim` plus the daemon's identity for provenance.
    pub fn start<P>(sim: &Simulator<P>, daemon_name: &str, seed: u64) -> Self
    where
        P: Protocol,
        P::State: TraceState,
    {
        let g = sim.graph();
        TraceRecorder {
            trace: RecordedTrace {
                version: TRACE_VERSION,
                n: g.len(),
                graph_name: g.name().to_string(),
                edges: g.edges().map(|(u, v)| (u.0, v.0)).collect(),
                actions: sim
                    .protocol()
                    .action_names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                daemon: daemon_name.to_string(),
                seed,
                init: encode_states(sim.states()),
                steps: Vec::new(),
                final_states: Vec::new(),
                totals: (0, 0, 0),
                phases: PhaseReport::default(),
            },
            start_steps: sim.steps(),
            start_rounds: sim.rounds(),
        }
    }

    /// Seals the trace with the final configuration read from `sim` and
    /// the run's phase metrics.
    pub fn finish<P>(mut self, sim: &Simulator<P>, phases: PhaseReport) -> RecordedTrace
    where
        P: Protocol,
        P::State: TraceState,
    {
        self.trace.final_states = encode_states(sim.states());
        let moves = self.trace.steps.iter().map(|s| s.len() as u64).sum();
        self.trace.totals =
            (sim.steps() - self.start_steps, sim.rounds() - self.start_rounds, moves);
        self.trace.phases = phases;
        self.trace
    }
}

impl<P: Protocol> Observer<P> for TraceRecorder {
    fn step(&mut self, _: &Graph, delta: &StepDelta<'_, P>, _: &[P::State]) {
        self.trace.steps.push(delta.executed().to_vec());
    }
}

/// Daemon that replays exactly one prerecorded selection.
struct OneShot<'a>(&'a [(ProcId, ActionId)]);

impl<S> Daemon<S> for OneShot<'_> {
    fn select(&mut self, _: &EnabledSet<'_, S>, out: &mut Vec<(ProcId, ActionId)>) {
        out.extend_from_slice(self.0);
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

/// Replays `trace` under `protocol`, re-recording it step by step.
///
/// The recorded selections are fed back through the simulator with
/// validation enabled, so a selection that is no longer enabled (protocol
/// drift, nondeterminism) is caught immediately. Returns the re-recorded
/// trace, which for a faithful replay is **equal** to the input —
/// [`diff`] or `==` checks that.
///
/// # Errors
///
/// [`TraceError::UnsupportedVersion`], [`TraceError::Graph`],
/// [`TraceError::BadState`] for a trace this protocol cannot host, and
/// [`TraceError::Divergence`] when execution disagrees with the recording.
pub fn replay<P>(trace: &RecordedTrace, protocol: P) -> Result<RecordedTrace, TraceError>
where
    P: Protocol,
    P::State: TraceState,
{
    if trace.version != TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion { found: trace.version });
    }
    let graph = trace.graph()?;
    let init: Vec<P::State> = trace.decode_init()?;
    let mut metrics = MetricsObserver::for_protocol(&protocol, trace.n);
    let mut sim = Simulator::builder(graph, protocol).states(init).validation(true).build();
    let mut recorder = TraceRecorder::start(&sim, &trace.daemon, trace.seed);
    for (k, sel) in trace.steps.iter().enumerate() {
        if sim.is_terminal() {
            return Err(TraceError::Divergence {
                step: k as u64,
                detail: "configuration terminal before recorded step".into(),
            });
        }
        let mut observers = Fanout::new(&mut metrics, &mut recorder);
        sim.step_observed(&mut OneShot(sel), &mut observers).map_err(|e| {
            TraceError::Divergence { step: k as u64, detail: e.to_string() }
        })?;
    }
    Ok(recorder.finish(&sim, metrics.report()))
}

/// Compares two traces field by field, returning one human-readable line
/// per difference (empty means the traces are identical).
pub fn diff(a: &RecordedTrace, b: &RecordedTrace) -> Vec<String> {
    fn field(out: &mut Vec<String>, name: &str, left: String, right: String) {
        if left != right {
            out.push(format!("{name}: {left} != {right}"));
        }
    }
    let mut out = Vec::new();
    field(&mut out, "version", a.version.to_string(), b.version.to_string());
    field(&mut out, "graph.n", a.n.to_string(), b.n.to_string());
    field(&mut out, "graph.name", a.graph_name.clone(), b.graph_name.clone());
    field(
        &mut out,
        "graph.edges",
        format!("{} edges", a.edges.len()),
        format!("{} edges", b.edges.len()),
    );
    if a.edges.len() == b.edges.len() && a.edges != b.edges {
        out.push("graph.edges: same count, different links".into());
    }
    field(&mut out, "actions", a.actions.join(","), b.actions.join(","));
    field(&mut out, "daemon", a.daemon.clone(), b.daemon.clone());
    field(&mut out, "seed", a.seed.to_string(), b.seed.to_string());
    if let Some(p) = (0..a.init.len().min(b.init.len())).find(|&i| a.init[i] != b.init[i]) {
        out.push(format!("init[p{p}]: {} != {}", a.init[p], b.init[p]));
    }
    if a.steps.len() != b.steps.len() {
        out.push(format!("steps: {} != {}", a.steps.len(), b.steps.len()));
    } else if let Some(k) = (0..a.steps.len()).find(|&k| a.steps[k] != b.steps[k]) {
        out.push(format!("step {k}: selections differ"));
    }
    if let Some(p) =
        (0..a.final_states.len().min(b.final_states.len())).find(|&i| {
            a.final_states[i] != b.final_states[i]
        })
    {
        out.push(format!("final[p{p}]: {} != {}", a.final_states[p], b.final_states[p]));
    }
    field(&mut out, "totals", format!("{:?}", a.totals), format!("{:?}", b.totals));
    for tag in PhaseTag::ALL {
        if (a.phases.moves_of(tag), a.phases.steps_of(tag), a.phases.rounds_of(tag))
            != (b.phases.moves_of(tag), b.phases.steps_of(tag), b.phases.rounds_of(tag))
        {
            out.push(format!("phase {}: counters differ", tag.name()));
        }
    }
    if a.phases.abnormal_procs != b.phases.abnormal_procs {
        out.push(format!(
            "abnormal: {} != {}",
            a.phases.abnormal_procs, b.phases.abnormal_procs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::CentralRandom;
    use crate::{RunLimits, StopPolicy, View};
    use pif_graph::generators;

    /// Max-propagation toy protocol with a correction flavor: adopting a
    /// larger neighbor value is Broadcast; clamping a negative value to
    /// zero is Correction.
    struct MaxProto;

    impl Protocol for MaxProto {
        type State = i32;
        fn action_names(&self) -> &'static [&'static str] {
            &["adopt-max", "clamp"]
        }
        fn enabled_actions(&self, v: View<'_, i32>, out: &mut Vec<ActionId>) {
            if *v.me() < 0 {
                out.push(ActionId(1));
            } else if v.neighbor_states().any(|(_, &s)| s > *v.me()) {
                out.push(ActionId(0));
            }
        }
        fn execute(&self, v: View<'_, i32>, a: ActionId) -> i32 {
            match a {
                ActionId(1) => 0,
                _ => v.neighbor_states().map(|(_, &s)| s).max().unwrap().max(*v.me()),
            }
        }
        fn classify(&self, action: ActionId) -> PhaseTag {
            match action {
                ActionId(1) => PhaseTag::Correction,
                _ => PhaseTag::Broadcast,
            }
        }
    }

    fn record_run(seed: u64) -> RecordedTrace {
        let g = generators::torus(3, 3).unwrap();
        let init = vec![-3, 0, 7, 0, -1, 2, 0, 5, 0];
        let mut metrics = MetricsObserver::for_protocol(&MaxProto, 9);
        let mut sim = Simulator::builder(g, MaxProto).states(init).validation(true).build();
        let mut recorder = TraceRecorder::start(&sim, "central-random", seed);
        let mut daemon = CentralRandom::new(seed);
        {
            let mut observers = Fanout::new(&mut metrics, &mut recorder);
            sim.run(
                &mut daemon,
                &mut observers,
                StopPolicy::Fixpoint(RunLimits::default()),
            )
            .unwrap();
        }
        recorder.finish(&sim, metrics.report())
    }

    #[test]
    fn record_serialize_parse_roundtrip() {
        let trace = record_run(0xFEED);
        let text = trace.to_jsonl();
        let parsed = RecordedTrace::from_jsonl(&text).unwrap();
        assert_eq!(trace, parsed);
        assert_eq!(text, parsed.to_jsonl(), "serialization must be deterministic");
    }

    #[test]
    fn replay_reproduces_run_exactly() {
        let trace = record_run(0xBEEF);
        let replayed = replay(&trace, MaxProto).unwrap();
        assert_eq!(diff(&trace, &replayed), Vec::<String>::new());
        assert_eq!(trace, replayed);
        assert_eq!(trace.to_jsonl(), replayed.to_jsonl());
    }

    #[test]
    fn replay_detects_tampered_selection() {
        let mut trace = record_run(0xDEAD);
        // Corrupt one recorded action into one that cannot be enabled.
        let k = trace.steps.len() / 2;
        trace.steps[k][0].1 = ActionId(7);
        let err = replay(&trace, MaxProto).unwrap_err();
        assert!(matches!(err, TraceError::Divergence { step, .. } if step == k as u64));
    }

    #[test]
    fn corrupted_jsonl_line_is_a_typed_error() {
        let trace = record_run(0xC0FFEE);
        let text = trace.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        // Chop a step line in half: parse must fail, not panic.
        let mut corrupted = String::new();
        for (i, l) in lines.iter().enumerate() {
            if i == 1 {
                corrupted.push_str(&l[..l.len() / 2]);
            } else {
                corrupted.push_str(l);
            }
            corrupted.push('\n');
        }
        let err = RecordedTrace::from_jsonl(&corrupted).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "got {err}");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut trace = record_run(1);
        trace.version = 99;
        assert!(matches!(
            replay(&trace, MaxProto),
            Err(TraceError::UnsupportedVersion { found: 99 })
        ));
        let text = trace.to_jsonl();
        assert!(matches!(
            RecordedTrace::from_jsonl(&text),
            Err(TraceError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn diff_pinpoints_differences() {
        let a = record_run(7);
        let mut b = a.clone();
        b.seed = 8;
        b.final_states[0] = "42".into();
        let d = diff(&a, &b);
        assert!(d.iter().any(|l| l.starts_with("seed")));
        assert!(d.iter().any(|l| l.starts_with("final[p0]")));
    }

    #[test]
    fn bad_state_token_is_typed() {
        let mut trace = record_run(3);
        trace.init[2] = "not-a-number".into();
        let err = replay(&trace, MaxProto).unwrap_err();
        assert!(matches!(err, TraceError::BadState { proc: 2, .. }));
    }
}
