//! Minimal hand-rolled JSON support for the trace file format and the
//! analyzer's report output.
//!
//! The workspace is hermetic (no network, and the vendored `serde` is a
//! no-op shim), so the trace subsystem carries its own tiny JSON layer: a
//! string escaper for writing and a recursive-descent parser producing a
//! [`Json`] value tree. Numbers keep their source lexeme so 64-bit
//! integers (daemon seeds) survive without `f64` precision loss.
//! `pif-analyze` reuses this module for its machine-readable reports, so
//! it is public.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// A boolean literal.
    Bool(bool),
    /// The raw number lexeme (re-parsed on demand by [`Json::as_u64`]).
    Num(String),
    /// A string value (unescaped).
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// Key/value pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string payload, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is a [`Json::Num`] with an integer
    /// lexeme in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The items, if this is a [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object (linear scan; objects here are tiny).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A JSON syntax error with its byte offset in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input document.
    pub offset: usize,
    /// Static description of what was expected or found.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { offset: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired up; traces never
                            // emit them (the writer escapes only controls).
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number lexeme is ASCII");
        Ok(Json::Num(lexeme.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"v":1,"name":"torus-4x4","edges":[[0,1],[1,2]],"ok":true,"x":null}"#;
        let j = parse(doc).unwrap();
        assert_eq!(j.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("name").unwrap().as_str(), Some("torus-4x4"));
        let edges = j.get("edges").unwrap().as_array().unwrap();
        assert_eq!(edges[1].as_array().unwrap()[1].as_u64(), Some(2));
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(j.get("x"), Some(&Json::Null));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn u64_seeds_survive_roundtrip() {
        let j = parse("18446744073709551615").unwrap();
        assert_eq!(j.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "a\"b\\c\nd\te\u{1}é";
        let mut encoded = String::new();
        write_string(original, &mut encoded);
        let j = parse(&encoded).unwrap();
        assert_eq!(j.as_str(), Some(original));
    }

    #[test]
    fn syntax_errors_are_reported_not_panicked() {
        for bad in ["", "{", "[1,", "\"open", "{\"k\" 1}", "tru", "{} garbage", "nul"] {
            let err = parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty());
        }
    }
}
