//! Round accounting per the Dolev-Israeli-Moran definition used by the paper.
//!
//! Given a computation `e`, the **first round** of `e` is the minimal prefix
//! `e'` containing the execution of one action — a protocol action *or the
//! disable action* — of every processor that is continuously enabled from the
//! first configuration of `e`. The second round is the first round of the
//! remaining suffix, and so on.
//!
//! [`RoundCounter`] tracks this online: at the start of each round it
//! snapshots the enabled processors; a processor leaves the pending set when
//! it executes an action or becomes disabled (the disable action). When the
//! pending set empties, the round is complete.

use pif_graph::ProcId;

/// Online round counter for one simulation run. Create it with the initial
/// enabled set and feed it every computation step.
///
/// # Examples
///
/// ```
/// use pif_daemon::rounds::RoundCounter;
/// use pif_graph::ProcId;
///
/// // Processors 0 and 1 enabled initially.
/// let mut rc = RoundCounter::new([true, true, false].iter().copied());
/// assert_eq!(rc.completed(), 0);
/// // p0 executes; p1 still pending: round not over.
/// let done = rc.observe_step([ProcId(0)].iter().copied(), [true, true, false].iter().copied());
/// assert!(!done);
/// // p1 becomes disabled by a neighbor's move: disable action, round over.
/// let done = rc.observe_step([ProcId(0)].iter().copied(), [true, false, false].iter().copied());
/// assert!(done);
/// assert_eq!(rc.completed(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct RoundCounter {
    /// `pending[p]`: processor `p` was continuously enabled since the start
    /// of the current round and has not yet executed (or been disabled).
    pending: Vec<bool>,
    pending_count: usize,
    completed: u64,
}

impl RoundCounter {
    /// Starts counting with the processors enabled in the initial
    /// configuration.
    pub fn new<I>(enabled: I) -> Self
    where
        I: IntoIterator<Item = bool>,
    {
        let pending: Vec<bool> = enabled.into_iter().collect();
        let pending_count = pending.iter().filter(|&&b| b).count();
        RoundCounter { pending, pending_count, completed: 0 }
    }

    /// Number of fully completed rounds so far.
    #[inline]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Processors still owed an action in the current round.
    pub fn pending(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.pending
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| ProcId::from_index(i))
    }

    /// Records one computation step: `executed` lists the processors that
    /// executed a protocol action, `enabled_after` flags which processors are
    /// enabled in the new configuration. Returns `true` when this step
    /// completed one or more rounds (with an empty network of pending
    /// processors, each step completes a round trivially).
    pub fn observe_step<E, A>(&mut self, executed: E, enabled_after: A) -> bool
    where
        E: IntoIterator<Item = ProcId>,
        A: IntoIterator<Item = bool> + Clone,
    {
        for p in executed {
            self.clear(p.index());
        }
        // Disable action: pending processors that are no longer enabled.
        for (i, en) in enabled_after.clone().into_iter().enumerate() {
            if !en {
                self.clear(i);
            }
        }
        if self.pending_count == 0 {
            self.completed += 1;
            for (i, en) in enabled_after.into_iter().enumerate() {
                self.pending[i] = en;
                if en {
                    self.pending_count += 1;
                }
            }
            true
        } else {
            false
        }
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        if self.pending[i] {
            self.pending[i] = false;
            self.pending_count -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(bits: &[u8]) -> Vec<bool> {
        bits.iter().map(|&b| b != 0).collect()
    }

    #[test]
    fn synchronous_execution_is_one_round_per_step() {
        // Everyone enabled, everyone executes each step.
        let mut rc = RoundCounter::new(flags(&[1, 1, 1]));
        for step in 1..=5u64 {
            let done = rc.observe_step(
                (0..3).map(ProcId),
                flags(&[1, 1, 1]),
            );
            assert!(done);
            assert_eq!(rc.completed(), step);
        }
    }

    #[test]
    fn central_daemon_round_needs_every_pending_proc() {
        let mut rc = RoundCounter::new(flags(&[1, 1, 1]));
        assert!(!rc.observe_step([ProcId(0)], flags(&[1, 1, 1])));
        assert!(!rc.observe_step([ProcId(1)], flags(&[1, 1, 1])));
        assert!(rc.observe_step([ProcId(2)], flags(&[1, 1, 1])));
        assert_eq!(rc.completed(), 1);
    }

    #[test]
    fn disable_action_counts() {
        let mut rc = RoundCounter::new(flags(&[1, 1]));
        // p0 executes, and its move disables p1: both accounted, round done.
        assert!(rc.observe_step([ProcId(0)], flags(&[0, 0])));
        assert_eq!(rc.completed(), 1);
    }

    #[test]
    fn newly_enabled_mid_round_not_owed() {
        // p2 becomes enabled mid-round; the round only waits for p0 and p1.
        let mut rc = RoundCounter::new(flags(&[1, 1, 0]));
        assert!(!rc.observe_step([ProcId(0)], flags(&[1, 1, 1])));
        assert!(rc.observe_step([ProcId(1)], flags(&[1, 1, 1])));
        assert_eq!(rc.completed(), 1);
        // Next round owes all three.
        let pending: Vec<_> = rc.pending().collect();
        assert_eq!(pending.len(), 3);
    }

    #[test]
    fn terminal_configuration_rounds_are_trivial() {
        let mut rc = RoundCounter::new(flags(&[0, 0]));
        // No one pending: every observation closes a (vacuous) round.
        assert!(rc.observe_step(std::iter::empty(), flags(&[0, 0])));
        assert_eq!(rc.completed(), 1);
    }

    #[test]
    fn re_enabled_processor_is_not_owed_until_next_round() {
        let mut rc = RoundCounter::new(flags(&[1, 1, 1]));
        // p1 gets disabled (leaves pending via the disable action), then
        // re-enabled: the current round must not wait for it again, only
        // for p2.
        assert!(!rc.observe_step([ProcId(0)], flags(&[1, 0, 1])));
        assert!(!rc.observe_step([ProcId(0)], flags(&[1, 1, 1])));
        let pending: Vec<_> = rc.pending().collect();
        assert_eq!(pending, vec![ProcId(2)]);
        assert!(rc.observe_step([ProcId(2)], flags(&[1, 1, 1])));
        assert_eq!(rc.completed(), 1);
    }
}
