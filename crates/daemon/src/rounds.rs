//! Round accounting per the Dolev-Israeli-Moran definition used by the paper.
//!
//! Given a computation `e`, the **first round** of `e` is the minimal prefix
//! `e'` containing the execution of one action — a protocol action *or the
//! disable action* — of every processor that is continuously enabled from the
//! first configuration of `e`. The second round is the first round of the
//! remaining suffix, and so on.
//!
//! [`RoundCounter`] tracks this online: at the start of each round it
//! snapshots the enabled processors; a processor leaves the pending set when
//! it executes an action or becomes disabled (the disable action). When the
//! pending set empties, the round is complete.
//!
//! The counter is fed *changes*, not full configurations: each step reports
//! the executed processors plus the processors whose enabled status flipped.
//! That keeps the per-step cost proportional to the step's footprint
//! (executed processors and their neighborhood) rather than the network
//! size; the only O(n)-ish work is an `n/64`-word bitset copy when a round
//! closes.

use pif_graph::ProcId;

use crate::bits::BitSet;

/// Online round counter for one simulation run. Create it with the initial
/// enabled set and feed it every computation step.
///
/// # Examples
///
/// ```
/// use pif_daemon::rounds::RoundCounter;
/// use pif_graph::ProcId;
///
/// // Processors 0 and 1 enabled initially.
/// let mut rc = RoundCounter::new([true, true, false].iter().copied());
/// assert_eq!(rc.completed(), 0);
/// // p0 executes; no enabled flag flips; p1 still pending: round not over.
/// let done = rc.observe_step([ProcId(0)].iter().copied(), std::iter::empty());
/// assert!(!done);
/// // p1 becomes disabled by a neighbor's move: disable action, round over.
/// let done = rc.observe_step([ProcId(0)].iter().copied(), [(ProcId(1), false)].iter().copied());
/// assert!(done);
/// assert_eq!(rc.completed(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct RoundCounter {
    /// Processors continuously enabled since the start of the current round
    /// that have not yet executed (or been disabled).
    pending: BitSet,
    /// Mirror of the currently enabled processors, maintained from the
    /// reported changes; seeds `pending` when a round closes.
    enabled: BitSet,
    completed: u64,
}

impl RoundCounter {
    /// Starts counting with the processors enabled in the initial
    /// configuration.
    pub fn new<I>(enabled: I) -> Self
    where
        I: IntoIterator<Item = bool>,
    {
        let flags: Vec<bool> = enabled.into_iter().collect();
        let mut bits = BitSet::new(flags.len());
        for (i, &en) in flags.iter().enumerate() {
            if en {
                bits.insert(i);
            }
        }
        RoundCounter { pending: bits.clone(), enabled: bits, completed: 0 }
    }

    /// Number of fully completed rounds so far.
    #[inline]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Processors still owed an action in the current round.
    pub fn pending(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.pending.iter().map(ProcId::from_index)
    }

    /// Records one computation step: `executed` lists the processors that
    /// executed a protocol action; `enabled_changes` lists every processor
    /// whose enabled status flipped this step, with its *new* status
    /// (`true` = became enabled, `false` = became disabled — the latter is
    /// the disable action). Unchanged processors must not be reported.
    /// Returns `true` when this step completed a round (with an empty
    /// network of pending processors, each step completes a round
    /// trivially).
    pub fn observe_step<E, C>(&mut self, executed: E, enabled_changes: C) -> bool
    where
        E: IntoIterator<Item = ProcId>,
        C: IntoIterator<Item = (ProcId, bool)>,
    {
        for p in executed {
            self.pending.remove(p.index());
        }
        for (p, en) in enabled_changes {
            if en {
                self.enabled.insert(p.index());
            } else {
                self.enabled.remove(p.index());
                // Disable action: the processor is no longer owed a move.
                self.pending.remove(p.index());
            }
        }
        if self.pending.count() == 0 {
            self.completed += 1;
            self.pending.copy_from(&self.enabled);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn changes(v: &[(u32, bool)]) -> Vec<(ProcId, bool)> {
        v.iter().map(|&(i, b)| (ProcId(i), b)).collect()
    }

    #[test]
    fn synchronous_execution_is_one_round_per_step() {
        // Everyone enabled, everyone executes each step, everyone stays
        // enabled (no flips to report).
        let mut rc = RoundCounter::new([true, true, true]);
        for step in 1..=5u64 {
            let done = rc.observe_step((0..3).map(ProcId), std::iter::empty());
            assert!(done);
            assert_eq!(rc.completed(), step);
        }
    }

    #[test]
    fn central_daemon_round_needs_every_pending_proc() {
        let mut rc = RoundCounter::new([true, true, true]);
        assert!(!rc.observe_step([ProcId(0)], std::iter::empty()));
        assert!(!rc.observe_step([ProcId(1)], std::iter::empty()));
        assert!(rc.observe_step([ProcId(2)], std::iter::empty()));
        assert_eq!(rc.completed(), 1);
    }

    #[test]
    fn disable_action_counts() {
        let mut rc = RoundCounter::new([true, true]);
        // p0 executes, and its move disables both: all accounted, round done.
        assert!(rc.observe_step([ProcId(0)], changes(&[(0, false), (1, false)])));
        assert_eq!(rc.completed(), 1);
    }

    #[test]
    fn newly_enabled_mid_round_not_owed() {
        // p2 becomes enabled mid-round; the round only waits for p0 and p1.
        let mut rc = RoundCounter::new([true, true, false]);
        assert!(!rc.observe_step([ProcId(0)], changes(&[(2, true)])));
        assert!(rc.observe_step([ProcId(1)], std::iter::empty()));
        assert_eq!(rc.completed(), 1);
        // Next round owes all three.
        let pending: Vec<_> = rc.pending().collect();
        assert_eq!(pending.len(), 3);
    }

    #[test]
    fn terminal_configuration_rounds_are_trivial() {
        let mut rc = RoundCounter::new([false, false]);
        // No one pending: every observation closes a (vacuous) round.
        assert!(rc.observe_step(std::iter::empty(), std::iter::empty()));
        assert_eq!(rc.completed(), 1);
    }

    #[test]
    fn re_enabled_processor_is_not_owed_until_next_round() {
        let mut rc = RoundCounter::new([true, true, true]);
        // p1 gets disabled (leaves pending via the disable action), then
        // re-enabled: the current round must not wait for it again, only
        // for p2.
        assert!(!rc.observe_step([ProcId(0)], changes(&[(1, false)])));
        assert!(!rc.observe_step([ProcId(0)], changes(&[(1, true)])));
        let pending: Vec<_> = rc.pending().collect();
        assert_eq!(pending, vec![ProcId(2)]);
        assert!(rc.observe_step([ProcId(2)], std::iter::empty()));
        assert_eq!(rc.completed(), 1);
    }
}
