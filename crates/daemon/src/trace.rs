//! Execution traces: step-by-step recording of a simulation for debugging,
//! invariant monitoring, and the proof-apparatus checks in `pif-core`.

use pif_graph::{Graph, ProcId};

use crate::{ActionId, Observer, Protocol, StepDelta};

/// One recorded computation step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Zero-based step index.
    pub step: u64,
    /// The `(processor, action)` pairs that executed.
    pub executed: Vec<(ProcId, ActionId)>,
}

/// A recorder of executed steps and (optionally) full configurations.
///
/// Use it as an [`Observer`] with
/// [`Simulator::step_observed`](crate::Simulator::step_observed) or
/// [`Simulator::run`](crate::Simulator::run).
/// Recording full configurations is memory-hungry (`O(steps × N)`); enable
/// it only for focused debugging via [`Trace::with_configurations`].
///
/// # Examples
///
/// ```
/// use pif_daemon::trace::Trace;
/// use pif_daemon::{ActionId, Protocol, RunLimits, Simulator, StopPolicy, View};
/// use pif_daemon::daemons::Synchronous;
/// use pif_graph::generators;
///
/// struct Zeroing;
/// impl Protocol for Zeroing {
///     type State = u8;
///     fn action_names(&self) -> &'static [&'static str] { &["zero"] }
///     fn enabled_actions(&self, v: View<'_, u8>, out: &mut Vec<ActionId>) {
///         if *v.me() != 0 { out.push(ActionId(0)); }
///     }
///     fn execute(&self, _: View<'_, u8>, _: ActionId) -> u8 { 0 }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::chain(3)?;
/// let mut sim = Simulator::new(g, Zeroing, vec![1, 0, 2]);
/// let mut trace = Trace::<Zeroing>::new();
/// sim.run(
///     &mut Synchronous::first_action(), &mut trace,
///     StopPolicy::Fixpoint(RunLimits::default()))?;
/// assert_eq!(trace.len(), 1); // both processors moved in one step
/// assert_eq!(trace.steps()[0].executed.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Trace<P: Protocol> {
    steps: Vec<TraceStep>,
    configurations: Option<Vec<Vec<P::State>>>,
    next_index: u64,
}

impl<P: Protocol> Trace<P> {
    /// A trace recording executed actions only.
    pub fn new() -> Self {
        Trace { steps: Vec::new(), configurations: None, next_index: 0 }
    }

    /// A trace additionally recording the full configuration after every
    /// step.
    pub fn with_configurations() -> Self {
        Trace { steps: Vec::new(), configurations: Some(Vec::new()), next_index: 0 }
    }

    /// Recorded steps, oldest first.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Recorded configurations (present only for
    /// [`Trace::with_configurations`]); `configurations()[i]` is the
    /// configuration *after* `steps()[i]`.
    pub fn configurations(&self) -> Option<&[Vec<P::State>]> {
        self.configurations.as_deref()
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total number of individual action executions across all steps.
    pub fn action_count(&self) -> usize {
        self.steps.iter().map(|s| s.executed.len()).sum()
    }

    /// How many times processor `p` executed action `a`.
    pub fn count_of(&self, p: ProcId, a: ActionId) -> usize {
        self.steps
            .iter()
            .flat_map(|s| s.executed.iter())
            .filter(|&&(q, b)| q == p && b == a)
            .count()
    }

    /// Renders the trace as a human-readable action log using the
    /// protocol's action names.
    pub fn render(&self, protocol: &P) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in &self.steps {
            let _ = write!(out, "step {:>5}:", s.step);
            for &(p, a) in &s.executed {
                let _ = write!(out, " {}:{}", p, protocol.action_name(a));
            }
            out.push('\n');
        }
        out
    }
}

impl<P: Protocol> Default for Trace<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> Observer<P> for Trace<P> {
    fn step(&mut self, _graph: &Graph, delta: &StepDelta<'_, P>, after: &[P::State]) {
        self.steps.push(TraceStep { step: self.next_index, executed: delta.executed().to_vec() });
        self.next_index += 1;
        if let Some(cfgs) = &mut self.configurations {
            cfgs.push(after.to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::CentralSequential;
    use crate::{RunLimits, Simulator, View};
    use pif_graph::generators;

    struct Dec;
    impl Protocol for Dec {
        type State = u8;
        fn action_names(&self) -> &'static [&'static str] {
            &["dec"]
        }
        fn enabled_actions(&self, v: View<'_, u8>, out: &mut Vec<ActionId>) {
            if *v.me() > 0 {
                out.push(ActionId(0));
            }
        }
        fn execute(&self, v: View<'_, u8>, _: ActionId) -> u8 {
            *v.me() - 1
        }
    }

    fn traced_run(with_configs: bool) -> (Trace<Dec>, Simulator<Dec>) {
        let g = generators::chain(3).unwrap();
        let mut sim = Simulator::new(g, Dec, vec![2, 0, 1]);
        let mut trace = if with_configs { Trace::with_configurations() } else { Trace::new() };
        sim.run(
            &mut CentralSequential::new(),
            &mut trace,
            crate::StopPolicy::Fixpoint(RunLimits::default()),
        )
        .unwrap();
        (trace, sim)
    }

    #[test]
    fn trace_records_every_action() {
        let (trace, _) = traced_run(false);
        assert_eq!(trace.action_count(), 3);
        assert_eq!(trace.count_of(ProcId(0), ActionId(0)), 2);
        assert_eq!(trace.count_of(ProcId(2), ActionId(0)), 1);
        assert!(trace.configurations().is_none());
    }

    #[test]
    fn configurations_align_with_steps() {
        let (trace, sim) = traced_run(true);
        let cfgs = trace.configurations().unwrap();
        assert_eq!(cfgs.len(), trace.len());
        assert_eq!(cfgs.last().unwrap().as_slice(), sim.states());
    }

    #[test]
    fn render_uses_action_names() {
        let (trace, _) = traced_run(false);
        let rendered = trace.render(&Dec);
        assert!(rendered.contains("dec"));
        assert!(rendered.contains("p0"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::<Dec>::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
