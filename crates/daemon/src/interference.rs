//! The action-interference graph compiled from declared action specs.
//!
//! An edge `src → dst` means: executing `src` (writing some of its
//! declared own registers) can change `dst`'s guard verdict or effect —
//! at the writer's own processor (`across_link = false`) or at a direct
//! neighbor (`across_link = true`). The graph is derived purely from
//! [`ActionSpec`](crate::ActionSpec) read/write declarations, so it
//! over-approximates real interference exactly when the declarations
//! over-approximate real reads and writes — the contract `pif-analyze`
//! enforces (AN001/AN003) and cross-checks against differential probing
//! (AN010).
//!
//! The graph lives in this crate (rather than `pif-analyze`, which
//! re-exports it) because `pif-verify`'s partial-order reduction consumes
//! [`InterferenceGraph::interference_radius`] as its soundness premise,
//! and the analyzer depends on the verifier for domain enumeration — the
//! premise has to sit below both.

use crate::protocol::{ActionId, Protocol, Scope};

/// One edge of the action-interference graph: executing `src` (writing
/// `registers`) can change `dst`'s guard verdict — at the same processor
/// (`across_link = false`) or at a neighbor (`across_link = true`).
#[derive(Clone, Debug)]
pub struct InterferenceEdge {
    /// Writer action name.
    pub src: String,
    /// Reader action name.
    pub dst: String,
    /// Whether the interference crosses a link (writer's own registers
    /// read as *neighbor* registers by `dst`).
    pub across_link: bool,
    /// The registers carrying the interference (may be empty for
    /// shape-only hand declarations).
    pub registers: Vec<String>,
}

/// The action-interference graph derived from the declared specs.
#[derive(Clone, Debug, Default)]
pub struct InterferenceGraph {
    /// All non-empty edges.
    pub edges: Vec<InterferenceEdge>,
}

impl InterferenceGraph {
    /// Derives the graph from a protocol's declared specs: edge
    /// `src → dst` iff `writes(src) ∩ reads(dst) ≠ ∅`, intersected
    /// separately for own-scope reads (same processor) and
    /// neighbor-scope reads (across one link).
    pub fn from_protocol<P: Protocol>(protocol: &P, registers: &[&'static str]) -> Self {
        let names = protocol.action_names();
        let mut edges = Vec::new();
        for (si, &src) in names.iter().enumerate() {
            let sspec = protocol.action_spec(ActionId(si));
            let written: Vec<&str> = registers
                .iter()
                .copied()
                .filter(|r| sspec.writes_reg(Scope::Own, r))
                .collect();
            for (di, &dst) in names.iter().enumerate() {
                let dspec = protocol.action_spec(ActionId(di));
                for (scope, across) in [(Scope::Own, false), (Scope::Neighbor, true)] {
                    let regs: Vec<String> = written
                        .iter()
                        .filter(|r| dspec.reads_reg(scope, r))
                        .map(std::string::ToString::to_string)
                        .collect();
                    if !regs.is_empty() {
                        edges.push(InterferenceEdge {
                            src: src.to_string(),
                            dst: dst.to_string(),
                            across_link: across,
                            registers: regs,
                        });
                    }
                }
            }
        }
        InterferenceGraph { edges }
    }

    /// Whether `src → dst` interference exists with the given linkage.
    pub fn has_edge(&self, src: &str, dst: &str, across_link: bool) -> bool {
        self.edges
            .iter()
            .any(|e| e.src == src && e.dst == dst && e.across_link == across_link)
    }

    /// Whether every edge of `other` is present here (same endpoints and
    /// linkage; the register annotations are not compared). This is the
    /// over-approximation order AN010 checks the derived graph against
    /// the hand-declared premise with.
    pub fn contains(&self, other: &InterferenceGraph) -> bool {
        other.edges.iter().all(|e| self.has_edge(&e.src, &e.dst, e.across_link))
    }

    /// Number of distinct cross-link edges.
    pub fn cross_link_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.across_link).count()
    }

    /// Whether every ordered action pair interferes across a link — the
    /// "paper shape" for the PIF family, where every guard evaluates
    /// `Normal(p)` over the full neighbor state and every action writes
    /// at least one register that some guard reads.
    pub fn neighbor_complete(&self, action_count: usize) -> bool {
        self.cross_link_edge_count() == action_count * action_count
    }

    /// The interference radius: the maximum link distance across which
    /// any declared action pair interferes. `0` when every edge is
    /// own-register, `1` when some edge crosses a link.
    ///
    /// The spec language itself only has own-scope and neighbor-scope
    /// reads, so the radius is structurally bounded by 1 — this is the
    /// premise of the exhaustive checker's partial-order reduction
    /// (`pif-verify`): two processors at graph distance ≥ 2 can neither
    /// disable, enable, nor change the effect of one another's moves,
    /// so a daemon selection decomposes across graph components of the
    /// selected set. `pif-verify` recomputes this query per protocol
    /// (`por_premise_radius`) and the workspace test
    /// `reduction_soundness.rs` pins the reduction to it end-to-end.
    pub fn interference_radius(&self) -> usize {
        usize::from(self.edges.iter().any(|e| e.across_link))
    }

    /// Whether executing `src` at a writer cannot interfere with `dst`
    /// evaluated at a reader `distance` links away — neither the guard
    /// verdict nor the effect of `dst` can change.
    ///
    /// `distance = 0` asks about the writer's own processor, `1` about a
    /// direct neighbor; anything beyond the [interference
    /// radius](Self::interference_radius) is independent by
    /// construction.
    pub fn independent_at(&self, src: &str, dst: &str, distance: usize) -> bool {
        match distance {
            0 => !self.has_edge(src, dst, false),
            1 => !self.has_edge(src, dst, true),
            _ => true,
        }
    }
}
