//! Concurrency model tests for the work-stealing claim protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (which also swaps
//! `pif_par::sync` onto the loom-instrumented primitives), so the code
//! under test here is the *same* claim protocol `par_map` ships: a shared
//! `AtomicUsize` claim index over `Mutex<Option<T>>` input/output slots.
//! Run via `scripts/tier2_gate.sh` or:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p pif-par --test loom_model
//! ```

#![cfg(loom)]

use pif_par::sync::atomic::{AtomicUsize, Ordering};
use pif_par::sync::{Arc, Mutex};

#[test]
fn claim_index_hands_each_item_to_exactly_one_thread() {
    loom::model(|| {
        const ITEMS: usize = 4;
        let next = Arc::new(AtomicUsize::new(0));
        let slots: Arc<Vec<Mutex<Option<usize>>>> =
            Arc::new((0..ITEMS).map(|i| Mutex::new(Some(i))).collect());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (next, slots) = (Arc::clone(&next), Arc::clone(&slots));
                loom::thread::spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= ITEMS {
                            break;
                        }
                        // The protocol's core safety claim: the atomic
                        // fetch_add makes `i` exclusive, so the take()
                        // can never observe an already-taken slot.
                        let item = slots[i]
                            .lock()
                            .expect("slot poisoned")
                            .take()
                            .expect("item claimed twice");
                        claimed.push(item);
                    }
                    claimed
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("model thread panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    });
}

#[test]
fn par_map_is_exact_under_model_scheduling() {
    // End-to-end: the shipped par_map under the instrumented primitives.
    loom::model(|| {
        let out = pif_par::par_map_workers((0..8u64).collect(), 3, |x| x * 2);
        assert_eq!(out, (0..8u64).map(|x| x * 2).collect::<Vec<_>>());
    });
}

#[test]
fn claim_index_never_double_counts_the_boundary() {
    // The off-the-end claim (i >= n) must be a clean exit for every
    // interleaving: total claims == ITEMS even when both threads race
    // past the boundary simultaneously.
    loom::model(|| {
        const ITEMS: usize = 2;
        let next = Arc::new(AtomicUsize::new(0));
        let claims = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (next, claims) = (Arc::clone(&next), Arc::clone(&claims));
                loom::thread::spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ITEMS {
                        break;
                    }
                    claims.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked");
        }
        assert_eq!(claims.load(Ordering::Relaxed), ITEMS);
    });
}
