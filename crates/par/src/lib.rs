//! Shared parallel-execution primitives built on std's scoped threads.
//!
//! Two consumers with different shapes of parallelism share this crate:
//!
//! * the experiment harness (`pif-bench`) fans thousands of independent
//!   simulations out over the cores with [`par_map`];
//! * the exhaustive checker (`pif-verify`) runs frontier-parallel
//!   breadth-first searches and range-parallel scans with [`run_workers`].
//!
//! [`par_map`] claims items through a shared atomic index (a work-stealing
//! loop) rather than pre-chunking the input, so uneven per-item costs —
//! one slow topology in a sweep, say — no longer idle whole threads: a
//! worker that finishes early simply claims the next unclaimed item.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The concurrency primitives this crate is built on, re-exported so the
/// concurrency model tests exercise the *production* claim protocol
/// rather than a copy.
///
/// A normal build aliases `std::sync`; building with `--cfg loom` (see
/// `tests/loom_model.rs` and `scripts/tier2_gate.sh`) swaps in the
/// loom-instrumented versions, which inject schedule perturbation around
/// every lock and atomic operation.
pub mod sync {
    #[cfg(loom)]
    pub use loom::sync::{atomic, Arc, Mutex};
    #[cfg(not(loom))]
    pub use std::sync::{atomic, Arc, Mutex};
}

use std::fmt;

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::Mutex;

/// Why a set `PIF_WORKERS` value could not be honored.
///
/// A benchmark or CI run that sets the override has pinned the worker
/// count *on purpose* — measurements taken under a silently ignored
/// override report the wrong engine configuration. So an invalid value
/// is a typed error ([`workers_override`]) and, on the infallible
/// [`available_workers`] path, a loud once-per-process warning rather
/// than a quiet fallback.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkersEnvError {
    /// The variable is set but is not valid Unicode.
    NotUnicode,
    /// The variable does not parse as an unsigned integer.
    NotAnInteger(String),
    /// The variable parsed, but zero workers cannot run anything.
    Zero,
}

impl fmt::Display for WorkersEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkersEnvError::NotUnicode => {
                write!(f, "PIF_WORKERS is set but is not valid Unicode")
            }
            WorkersEnvError::NotAnInteger(v) => {
                write!(f, "PIF_WORKERS={v:?} is not an unsigned integer")
            }
            WorkersEnvError::Zero => write!(f, "PIF_WORKERS=0: at least one worker is required"),
        }
    }
}

impl std::error::Error for WorkersEnvError {}

/// The `PIF_WORKERS` override as a typed result: `Ok(None)` when unset,
/// `Ok(Some(n))` for a positive integer, and a [`WorkersEnvError`] for
/// anything else. Callers that must not run under a misread pin (the
/// benchmark harness) bail on the error; [`available_workers`] warns
/// loudly and falls back.
///
/// # Errors
///
/// Returns a [`WorkersEnvError`] when the variable is set but is not
/// valid Unicode, not an unsigned integer, or zero.
pub fn workers_override() -> Result<Option<usize>, WorkersEnvError> {
    match std::env::var("PIF_WORKERS") {
        Ok(v) => parse_workers(&v).map(Some),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(WorkersEnvError::NotUnicode),
    }
}

fn parse_workers(v: &str) -> Result<usize, WorkersEnvError> {
    match v.trim().parse::<usize>() {
        Ok(0) => Err(WorkersEnvError::Zero),
        Ok(n) => Ok(n),
        Err(_) => Err(WorkersEnvError::NotAnInteger(v.to_string())),
    }
}

/// Number of workers to use by default: the `PIF_WORKERS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism (falling back to 4 when it cannot be queried).
///
/// The override exists so benchmarks and CI can pin the worker count on
/// machines whose reported parallelism differs from what the experiment
/// wants to measure (e.g. forcing a parallel engine configuration on a
/// single-core container, or vice versa). An *invalid* override is not
/// silently ignored: the first call prints the [`WorkersEnvError`] to
/// stderr (once per process) before falling back to the host
/// parallelism, so a typo'd pin cannot masquerade as a deliberate one.
pub fn available_workers() -> usize {
    match workers_override() {
        Ok(Some(n)) => n,
        Ok(None) => host_parallelism(),
        Err(e) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: ignoring invalid worker override ({e}); \
                     using host parallelism instead"
                );
            });
            host_parallelism()
        }
    }
}

/// The machine's available parallelism as reported by the OS (falling
/// back to 4 when it cannot be queried), ignoring any `PIF_WORKERS`
/// override. Benchmarks report this alongside the worker count actually
/// used so the two can be distinguished in the emitted JSON.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` in parallel, preserving input order in the
/// result.
///
/// Items are claimed one at a time through a shared atomic counter, so
/// workers that draw cheap items keep pulling work while a worker stuck
/// on an expensive item finishes it — no thread idles while unclaimed
/// work remains.
///
/// # Panics
///
/// Panics (propagating the worker's panic message) if `f` panics — an
/// experiment should fail loudly, not silently drop samples.
///
/// # Examples
///
/// ```
/// let squares = pif_par::par_map((0u64..100).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_workers(items, available_workers(), f)
}

/// [`par_map`] with an explicit worker count (clamped to at least 1 and
/// at most the item count).
pub fn par_map_workers<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);

    // Each slot is locked exactly twice (once to take the input, once to
    // store the output), so the mutexes are uncontended; they exist only
    // to share the slots across workers without `unsafe`.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (inputs, outputs, next, f) = (&inputs, &outputs, &next, &f);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = inputs[i]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("item claimed twice");
                    let r = f(item);
                    *outputs[i].lock().expect("output slot poisoned") = Some(r);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("experiment worker panicked");
        }
    });

    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

/// Spawns `workers` scoped threads running `f(worker_index)` and returns
/// their results in worker order. The backbone for parallel searches that
/// manage their own work distribution (e.g. an atomic block counter over
/// a shared frontier).
///
/// With `workers == 1` the closure runs inline on the calling thread —
/// no spawn overhead, which matters for level-synchronous searches that
/// would otherwise spawn per frontier level.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_workers<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1);
    if workers == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || f(w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..1000).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as i32) * 2);
        }
    }

    #[test]
    fn preserves_order_with_uneven_costs() {
        // Items late in the input are cheap, early ones expensive; the
        // work-stealing loop must still return results in input order.
        let out = par_map_workers((0..64u64).collect(), 8, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![5], |x: i32| x + 1), vec![6]);
    }

    #[test]
    fn explicit_worker_counts() {
        for workers in [1, 2, 7, 100] {
            let out = par_map_workers((0..50).collect::<Vec<i32>>(), workers, |x| x - 1);
            assert_eq!(out.len(), 50);
            assert_eq!(out[0], -1);
            assert_eq!(out[49], 48);
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn workers_override_parses_and_rejects() {
        assert_eq!(parse_workers("3"), Ok(3));
        assert_eq!(parse_workers("  16 "), Ok(16));
        assert_eq!(parse_workers("0"), Err(WorkersEnvError::Zero));
        assert_eq!(
            parse_workers("four"),
            Err(WorkersEnvError::NotAnInteger("four".to_string()))
        );
        assert_eq!(
            parse_workers("-2"),
            Err(WorkersEnvError::NotAnInteger("-2".to_string()))
        );
        assert_eq!(parse_workers(""), Err(WorkersEnvError::NotAnInteger(String::new())));
        // The error renders the offending value so the warning names the
        // typo rather than just announcing one happened.
        assert!(parse_workers("four").unwrap_err().to_string().contains("four"));
        assert!(parse_workers("0").unwrap_err().to_string().contains("at least one"));
    }

    #[test]
    fn workers_override_reads_the_environment() {
        // This test owns PIF_WORKERS for its duration. Other tests in
        // this binary only *read* the variable (through par_map's
        // available_workers), and none of them asserts a particular
        // worker count, so the brief mutation cannot fail them.
        let saved = std::env::var_os("PIF_WORKERS");
        std::env::set_var("PIF_WORKERS", "3");
        assert_eq!(workers_override(), Ok(Some(3)));
        assert_eq!(available_workers(), 3);
        std::env::set_var("PIF_WORKERS", "0");
        assert_eq!(workers_override(), Err(WorkersEnvError::Zero));
        // The infallible path falls back to the host, never to 0.
        assert!(available_workers() >= 1);
        std::env::set_var("PIF_WORKERS", "six");
        assert_eq!(
            workers_override(),
            Err(WorkersEnvError::NotAnInteger("six".to_string()))
        );
        std::env::remove_var("PIF_WORKERS");
        assert_eq!(workers_override(), Ok(None));
        if let Some(v) = saved {
            std::env::set_var("PIF_WORKERS", v);
        }
    }

    #[test]
    fn run_workers_collects_in_worker_order() {
        let out = run_workers(4, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn run_workers_propagates_panics() {
        let _ = run_workers(3, |w| {
            if w == 1 {
                panic!("boom");
            }
            w
        });
    }
}
