//! `pif-serve` — seeded load driver for the wave service.
//!
//! ```text
//! pif-serve soak  [--requests N] [--initiators K] [--shards S]
//!                 [--topology SPEC] [--seed X] [--daemon NAME]
//!                 [--engine aos|soa] [--transport mem|net]
//!                 [--net-drop R] [--net-dup R] [--net-reorder R]
//!                 [--net-corrupt R]
//!                 [--corrupt-after N --corrupt-registers K] [--json PATH]
//! pif-serve bench [--seed X] [--requests N] [--out PATH]
//! pif-serve check FILE
//! ```
//!
//! * `soak` runs one scenario (closed loop: the whole workload is
//!   enqueued, then drained), prints the ledger summary, and fails on a
//!   snap violation. `--transport net` serves every lane over the lossy
//!   message-passing transport (`pif-net`), with per-link fault rates
//!   from the `--net-*` flags; `--json` replay recording stays
//!   mem-transport only (the envelope schema has no net section).
//! * `bench` sweeps {chain, torus, random} × n ∈ {16, 64, 256} and
//!   writes the versioned `BENCH_service_throughput.json` envelope.
//! * `check` replays every result in a recorded envelope from its seed
//!   and verifies the deterministic fields are bit-identical.

use std::process::ExitCode;

use pif_graph::Topology;
use pif_net::FaultPlan;
use pif_serve::report::{envelope, parse_envelope};
use pif_serve::{
    run_scenario, run_scenario_net, run_scenario_on, spread_initiators, Engine, NetLaneConfig,
    Scenario, ServeDaemon, ServeError, ServiceReport,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("soak") => soak(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!("usage: pif-serve <soak|bench|check> [options]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pif-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of an option list (last occurrence wins).
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2)
        .rev()
        .find(|w| w[0] == flag)
        .map(|w| w[1].as_str())
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, ServeError> {
    match opt(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| ServeError::Report(format!("bad value for {flag}: {v:?}"))),
    }
}

fn soak(args: &[String]) -> Result<(), ServeError> {
    let requests: u64 = parse_num(args, "--requests", 1000)?;
    let initiators: usize = parse_num(args, "--initiators", 4)?;
    let shards: usize = parse_num(args, "--shards", 2)?;
    let seed: u64 = parse_num(args, "--seed", 1)?;
    let spec = opt(args, "--topology").unwrap_or("torus:4x4");
    let topology =
        Topology::parse(spec).map_err(|e| ServeError::Report(format!("bad topology: {e}")))?;
    let daemon = ServeDaemon::parse(opt(args, "--daemon").unwrap_or("synchronous"))?;
    let engine_spec = opt(args, "--engine").unwrap_or("aos");
    let engine = Engine::parse(engine_spec)
        .ok_or_else(|| ServeError::Report(format!("bad value for --engine: {engine_spec:?}")))?;
    let corrupt_after: Option<u64> = match opt(args, "--corrupt-after") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| ServeError::Report(format!("bad value for --corrupt-after: {v:?}")))?,
        ),
        None => None,
    };
    let corrupt_registers: usize = parse_num(args, "--corrupt-registers", 8)?;
    let transport = opt(args, "--transport").unwrap_or("mem");
    let net = match transport {
        "mem" => None,
        "net" => Some(NetLaneConfig {
            plan: FaultPlan::fault_free()
                .drop_rate(parse_num(args, "--net-drop", 0.0)?)
                .duplicate_rate(parse_num(args, "--net-dup", 0.0)?)
                .reorder_rate(parse_num(args, "--net-reorder", 0.0)?)
                .corrupt_rate(parse_num(args, "--net-corrupt", 0.0)?),
            ..NetLaneConfig::default()
        }),
        other => {
            return Err(ServeError::Report(format!("bad value for --transport: {other:?}")))
        }
    };
    if net.is_some() && opt(args, "--json").is_some() {
        return Err(ServeError::Report(
            "--json replay recording is mem-transport only; drop --transport net".into(),
        ));
    }

    let n = topology.build()?.len();
    let scenario = Scenario {
        topology,
        initiators: spread_initiators(n, initiators),
        shards,
        seed,
        daemon,
        requests,
        fault: corrupt_after.map(|after| (after, corrupt_registers, seed ^ 0xFA17)),
    };
    let service = match net {
        Some(cfg) => run_scenario_net(&scenario, cfg)?,
        None => run_scenario_on(&scenario, engine)?,
    };
    let report = ServiceReport::capture(&service, scenario.fault);
    let s = &report.summary;
    let label = if net.is_some() { "net".to_string() } else { engine.to_string() };
    println!(
        "soak {spec} [{label}]: {} requests, {} ok, {} bad, {} timed out, {} casualties \
         ({} post-fault, {} post-fault ok) in {:.3}s ({:.0} req/s)",
        s.total,
        s.completed_ok,
        s.completed_bad,
        s.timed_out,
        s.casualties,
        s.post_fault_total,
        s.post_fault_ok,
        report.elapsed_seconds,
        report.requests_per_sec,
    );
    if let Some(path) = opt(args, "--json") {
        std::fs::write(path, envelope(seed, std::slice::from_ref(&report)))
            .map_err(|e| ServeError::Report(format!("cannot write {path}: {e}")))?;
        println!("[json written to {path}]");
    }
    service.ledger().assert_snap()?;
    if scenario.fault.is_none() && !s.is_clean() {
        return Err(ServeError::Report(format!(
            "fault-free soak is not clean: {} bad, {} timed out",
            s.completed_bad, s.timed_out
        )));
    }
    Ok(())
}

/// The benchmark sweep: three families at n ∈ {16, 64, 256}.
fn bench_suite(seed: u64) -> Vec<Topology> {
    vec![
        Topology::Chain { n: 16 },
        Topology::Chain { n: 64 },
        Topology::Chain { n: 256 },
        Topology::Torus { w: 4, h: 4 },
        Topology::Torus { w: 8, h: 8 },
        Topology::Torus { w: 16, h: 16 },
        Topology::Random { n: 16, p: 0.1, seed },
        Topology::Random { n: 64, p: 0.1, seed },
        Topology::Random { n: 256, p: 0.1, seed },
    ]
}

fn bench(args: &[String]) -> Result<(), ServeError> {
    let seed: u64 = parse_num(args, "--seed", 2026)?;
    let requests: u64 = parse_num(args, "--requests", 64)?;
    let out = opt(args, "--out").unwrap_or("BENCH_service_throughput.json");
    let mut results = Vec::new();
    for topology in bench_suite(seed) {
        let n = topology.build()?.len();
        let scenario = Scenario {
            topology,
            initiators: spread_initiators(n, 4),
            shards: 2,
            seed,
            daemon: ServeDaemon::Synchronous,
            requests,
            fault: None,
        };
        let service = run_scenario(&scenario)?;
        let report = ServiceReport::capture(&service, None);
        println!(
            "bench {}: {} ok / {} requests, {} steps, {:.0} req/s",
            report.topology,
            report.summary.completed_ok,
            report.requests,
            report.total_steps,
            report.requests_per_sec,
        );
        service.ledger().assert_snap()?;
        if !report.summary.is_clean() {
            return Err(ServeError::Report(format!(
                "bench scenario {} not clean",
                report.topology
            )));
        }
        results.push(report);
    }
    std::fs::write(out, envelope(seed, &results))
        .map_err(|e| ServeError::Report(format!("cannot write {out}: {e}")))?;
    println!("[json written to {out}]");
    Ok(())
}

fn check(args: &[String]) -> Result<(), ServeError> {
    let path = args
        .first()
        .ok_or_else(|| ServeError::Report("usage: pif-serve check FILE".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ServeError::Report(format!("cannot read {path}: {e}")))?;
    let (_, recorded) = parse_envelope(&text)?;
    let mut failures = 0usize;
    for r in &recorded {
        let replayed = ServiceReport::capture(&run_scenario(&r.scenario()?)?, r.fault);
        if replayed.deterministic_eq(r) {
            println!("check {}: ok", r.topology);
        } else {
            failures += 1;
            eprintln!(
                "check {}: MISMATCH (recorded {} ok / {} steps, replayed {} ok / {} steps)",
                r.topology,
                r.summary.completed_ok,
                r.total_steps,
                replayed.summary.completed_ok,
                replayed.total_steps,
            );
        }
    }
    if failures > 0 {
        return Err(ServeError::Report(format!(
            "{failures} of {} results failed replay",
            recorded.len()
        )));
    }
    println!("all {} results replayed deterministically", recorded.len());
    Ok(())
}
