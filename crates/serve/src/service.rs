//! The service: configuration, routing, backpressure, and the sharded run
//! loop.

use std::fmt;
use std::time::Instant;

use pif_core::PifState;
use pif_daemon::daemons::{CentralRandom, DistributedRandom, Synchronous};
use pif_daemon::{Daemon, PhaseReport, PhaseTag};
use pif_graph::{Graph, ProcId, Topology};
use pif_net::FaultPlan;
use pif_soa::Engine;

use crate::ledger::DeliveryLedger;
use crate::request::{Request, RequestId};
use crate::shard::{mix, Shard};
use crate::ServeError;

/// What to do when a per-initiator queue is full at submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Refuse the new request with [`ServeError::QueueFull`] — the
    /// caller's backpressure signal.
    #[default]
    Reject,
    /// Evict the oldest queued request (recorded in the ledger as
    /// [`crate::RequestOutcome::Shed`]) and accept the new one.
    DropOldest,
}

/// Daemon strategy each lane runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ServeDaemon {
    /// Every enabled processor steps every time (fastest drain; fully
    /// deterministic without a seed).
    #[default]
    Synchronous,
    /// One uniformly random enabled processor per step (seeded per lane).
    CentralRandom,
    /// Each enabled processor steps with probability ½ (seeded per lane).
    DistributedRandom,
}

impl ServeDaemon {
    /// Stable name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            ServeDaemon::Synchronous => "synchronous",
            ServeDaemon::CentralRandom => "central-random",
            ServeDaemon::DistributedRandom => "distributed-random",
        }
    }

    /// Parses a report/CLI daemon name.
    ///
    /// # Errors
    ///
    /// [`ServeError::Report`] on an unknown name.
    pub fn parse(name: &str) -> Result<Self, ServeError> {
        match name {
            "synchronous" => Ok(ServeDaemon::Synchronous),
            "central-random" => Ok(ServeDaemon::CentralRandom),
            "distributed-random" => Ok(ServeDaemon::DistributedRandom),
            other => Err(ServeError::Report(format!("unknown daemon {other:?}"))),
        }
    }

    fn build(self, seed: u64) -> Box<dyn Daemon<PifState> + Send> {
        match self {
            ServeDaemon::Synchronous => Box::new(Synchronous::first_action()),
            ServeDaemon::CentralRandom => Box::new(CentralRandom::new(seed)),
            ServeDaemon::DistributedRandom => Box::new(DistributedRandom::new(0.5, seed)),
        }
    }
}

/// A register-corruption campaign: once a shard's completed-request count
/// reaches `after_completions`, every lane of that shard gets
/// `registers_per_lane` uniformly chosen registers redrawn in one
/// [`pif_daemon::Simulator::corrupt_many`] batch.
///
/// Thresholds are **per shard** (each shard counts its own completions),
/// which keeps fault timing deterministic — a global trigger would depend
/// on cross-thread interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Completed requests (in the shard) before the campaign fires.
    pub after_completions: u64,
    /// Registers corrupted in each lane's replica.
    pub registers_per_lane: usize,
    /// Seed for the corruption draw (mixed with shard and lane indices).
    pub seed: u64,
}

/// Configuration of the optional per-lane message-passing transport:
/// when set on [`ServeConfig::net_transport`], every lane runs its PIF
/// instance over a `pif_net::NetSim` (framed snapshots on seeded faulty
/// links) instead of a shared-memory engine. Lane seeds derive from the
/// service seed and the initiator, so runs stay bit-replayable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetLaneConfig {
    /// Per-link fault rates (validated at lane construction).
    pub plan: FaultPlan,
    /// Bounded channel capacity, frames per directed link.
    pub capacity: usize,
    /// Heartbeat cadence in scheduler events (0 disables heartbeats).
    pub heartbeat_every: u64,
    /// Probability of preferring a delivery over an execution.
    pub delivery_bias: f64,
}

impl Default for NetLaneConfig {
    fn default() -> Self {
        NetLaneConfig {
            plan: FaultPlan::fault_free(),
            capacity: 64,
            heartbeat_every: 16,
            delivery_bias: 0.5,
        }
    }
}

/// Builder-style configuration of a [`WaveService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Network family and size.
    pub topology: Topology,
    /// Processors allowed to initiate broadcasts (one lane each).
    pub initiators: Vec<ProcId>,
    /// Worker shards (initiators are hashed across them).
    pub shards: usize,
    /// Master seed: drives shard assignment, lane daemons, and shard
    /// interleaving.
    pub seed: u64,
    /// Per-initiator queue bound.
    pub queue_capacity: usize,
    /// Overload behavior at a full queue.
    pub shed_policy: ShedPolicy,
    /// Daemon strategy of every lane.
    pub daemon: ServeDaemon,
    /// Per-request step budget before the lane gives up
    /// ([`crate::RequestOutcome::TimedOut`]).
    pub step_limit: u64,
    /// Per-processor feedback contributions (defaults to `index + 1`).
    pub contributions: Option<Vec<i64>>,
    /// Step backend every lane runs on (the engines are observably
    /// equivalent, so this changes throughput, never outcomes).
    pub engine: Engine,
    /// Optional message-passing transport: when set, lanes run over
    /// lossy links instead of the shared-memory `engine`.
    pub net: Option<NetLaneConfig>,
    /// Optional explicit network instance. [`Topology`] covers the named
    /// generator families only; churned topologies (arbitrary connected
    /// edge sets produced by `pif-chaos`'s `DynGraph`) are injected here
    /// and take precedence over `topology` at construction. `topology`
    /// is kept for reporting (it names the *base* family).
    pub graph: Option<Graph>,
    /// Optional per-initiator initial register states (length must equal
    /// the instantiated network size). Lanes without an entry start from
    /// the normal starting configuration. This is how churn rebuilds
    /// carry surviving replicas' registers across a topology change.
    pub lane_states: Option<Vec<(ProcId, Vec<PifState>)>>,
}

impl ServeConfig {
    /// A configuration with defaults: 1 shard, seed 0, queue capacity
    /// 1024, [`ShedPolicy::Reject`], [`ServeDaemon::Synchronous`], and a
    /// 100 000-step per-request budget.
    pub fn new(topology: Topology) -> Self {
        ServeConfig {
            topology,
            initiators: Vec::new(),
            shards: 1,
            seed: 0,
            queue_capacity: 1024,
            shed_policy: ShedPolicy::Reject,
            daemon: ServeDaemon::Synchronous,
            step_limit: 100_000,
            contributions: None,
            engine: Engine::Aos,
            net: None,
            graph: None,
            lane_states: None,
        }
    }

    /// Sets the initiator set (one lane per entry).
    #[must_use]
    pub fn initiators(mut self, initiators: Vec<ProcId>) -> Self {
        self.initiators = initiators;
        self
    }

    /// Sets the shard count (clamped to ≥ 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-initiator queue bound (clamped to ≥ 1).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the overload policy.
    #[must_use]
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Sets the lane daemon strategy.
    #[must_use]
    pub fn daemon(mut self, daemon: ServeDaemon) -> Self {
        self.daemon = daemon;
        self
    }

    /// Sets the per-request step budget.
    #[must_use]
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit.max(1);
        self
    }

    /// Sets explicit per-processor contributions (length must equal the
    /// network size).
    #[must_use]
    pub fn contributions(mut self, contributions: Vec<i64>) -> Self {
        self.contributions = Some(contributions);
        self
    }

    /// Selects the step backend every lane runs on.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Runs every lane over the message-passing transport (overrides the
    /// shared-memory `engine` choice).
    #[must_use]
    pub fn net_transport(mut self, net: NetLaneConfig) -> Self {
        self.net = Some(net);
        self
    }

    /// Serves an explicit (possibly churned) network instance instead of
    /// building one from `topology`.
    #[must_use]
    pub fn graph_override(mut self, graph: Graph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Seeds specific initiators' replicas with explicit register states
    /// (see [`ServeConfig::lane_states`]).
    #[must_use]
    pub fn lane_states(mut self, states: Vec<(ProcId, Vec<PifState>)>) -> Self {
        self.lane_states = Some(states);
        self
    }
}

/// The long-lived wave service: accepts a stream of broadcast requests and
/// serves them over sharded, pipelined per-initiator PIF instances.
///
/// See the [crate docs](crate) for the full model and an example.
pub struct WaveService<M> {
    config: ServeConfig,
    graph: Graph,
    shards: Vec<Shard<M>>,
    /// Initiator → (shard index, lane index within the shard).
    route: Vec<(ProcId, usize, usize)>,
    next_id: u64,
    run_seconds: f64,
}

impl<M: Clone + PartialEq + fmt::Debug + Send> WaveService<M> {
    /// Builds the service: instantiates the topology, validates the
    /// initiator set, and deterministically assigns each initiator to a
    /// shard (initiators ordered by `splitmix(seed ^ initiator)`, then
    /// dealt round-robin across shards — seeded, but balanced by
    /// construction).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoInitiators`], [`ServeError::DuplicateInitiator`],
    /// [`ServeError::UnknownInitiator`] (initiator outside the network),
    /// or [`ServeError::Graph`].
    ///
    /// # Panics
    ///
    /// Panics if explicit contributions were configured with a length
    /// different from the network size.
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        if config.initiators.is_empty() {
            return Err(ServeError::NoInitiators);
        }
        let graph = match &config.graph {
            Some(g) => g.clone(),
            None => config.topology.build()?,
        };
        let n = graph.len();
        if let Some(ls) = &config.lane_states {
            for (p, states) in ls {
                assert_eq!(
                    states.len(),
                    n,
                    "lane_states for {p:?} must cover the whole network"
                );
            }
        }
        let mut seen = vec![false; n];
        for &p in &config.initiators {
            if p.index() >= n {
                return Err(ServeError::UnknownInitiator { initiator: p });
            }
            if seen[p.index()] {
                return Err(ServeError::DuplicateInitiator { initiator: p });
            }
            seen[p.index()] = true;
        }
        let contributions = match &config.contributions {
            Some(c) => {
                assert_eq!(c.len(), n, "contributions length must equal the network size");
                c.clone()
            }
            None => (0..n).map(|i| (i + 1) as i64).collect(),
        };

        let shard_count = config.shards.max(1);
        // Seeded deterministic assignment, balanced by construction:
        // initiators are ordered by a splitmix key and dealt round-robin,
        // so no seed can collapse every lane onto one shard.
        let mut order: Vec<usize> = (0..config.initiators.len()).collect();
        order.sort_by_key(|&i| mix(config.seed ^ u64::from(config.initiators[i].0)));
        let mut shard_of = vec![0usize; config.initiators.len()];
        for (pos, &i) in order.iter().enumerate() {
            shard_of[i] = pos % shard_count;
        }
        let mut lanes: Vec<Vec<crate::lane::Lane<M>>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        let mut route = Vec::with_capacity(config.initiators.len());
        for (i, &p) in config.initiators.iter().enumerate() {
            let shard = shard_of[i];
            let daemon = config.daemon.build(mix(config.seed ^ (u64::from(p.0) << 17)));
            let net = config
                .net
                .as_ref()
                .map(|cfg| (cfg, mix(config.seed ^ (u64::from(p.0) << 29) ^ 0x6E65_7421)));
            let init = config
                .lane_states
                .as_ref()
                .and_then(|ls| ls.iter().find(|(q, _)| *q == p))
                .map(|(_, s)| s.clone());
            let lane = crate::lane::Lane::new(
                graph.clone(),
                p,
                shard,
                contributions.clone(),
                daemon,
                config.step_limit,
                config.engine,
                net,
                init,
            )?;
            route.push((p, shard, lanes[shard].len()));
            lanes[shard].push(lane);
        }
        let shards = lanes
            .into_iter()
            .enumerate()
            .map(|(i, ls)| Shard::new(i, ls, config.seed))
            .collect();
        Ok(WaveService { config, graph, shards, route, next_id: 0, run_seconds: 0.0 })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The instantiated network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Requests submitted so far (accepted or shed; not rejected ones).
    pub fn submitted(&self) -> u64 {
        self.next_id
    }

    /// Wall-clock seconds spent inside [`WaveService::run`] so far.
    pub fn run_seconds(&self) -> f64 {
        self.run_seconds
    }

    /// Enqueues a request on its initiator's lane.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownInitiator`] for an unconfigured initiator;
    /// [`ServeError::QueueFull`] when the lane's queue is at capacity
    /// under [`ShedPolicy::Reject`].
    pub fn submit(&mut self, req: Request<M>) -> Result<RequestId, ServeError> {
        let &(_, shard, lane) = self
            .route
            .iter()
            .find(|&&(p, _, _)| p == req.initiator)
            .ok_or(ServeError::UnknownInitiator { initiator: req.initiator })?;
        let id = RequestId(self.next_id);
        self.shards[shard]
            .submit(lane, id, req, self.config.queue_capacity, self.config.shed_policy)
            .map_err(|(initiator, capacity)| ServeError::QueueFull { initiator, capacity })?;
        self.next_id += 1;
        Ok(id)
    }

    /// Registers a corruption campaign on every shard (per-shard
    /// completion thresholds; see [`FaultSpec`]).
    pub fn schedule_fault(&mut self, spec: FaultSpec) {
        for shard in &mut self.shards {
            shard.schedule_fault(spec);
        }
    }

    /// Drains every queue: shards run concurrently (one worker per
    /// shard), each interleaving its live lanes under its seeded RNG.
    /// Outcomes are deterministic in the configuration seed — shards
    /// share nothing, so thread scheduling cannot reorder anything
    /// observable.
    ///
    /// # Errors
    ///
    /// The first [`ServeError::Sim`] any shard hit, if any.
    pub fn run(&mut self) -> Result<(), ServeError> {
        let start = Instant::now();
        let shards = std::mem::take(&mut self.shards);
        let workers = shards.len().max(1);
        self.shards = pif_par::par_map_workers(shards, workers, |mut shard| {
            shard.run();
            shard
        });
        self.run_seconds += start.elapsed().as_secs_f64();
        for shard in &mut self.shards {
            if let Some(e) = shard.take_error() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// The merged delivery ledger (records grouped by shard, in shard
    /// order; within a shard, completion order).
    pub fn ledger(&self) -> DeliveryLedger {
        let mut ledger = DeliveryLedger::new();
        for shard in &self.shards {
            for record in shard.records() {
                ledger.push(record.clone());
            }
        }
        ledger
    }

    /// Per-phase metrics summed over every lane (deterministic fields
    /// only; per-phase rounds cover each lane's completed rounds).
    pub fn phase_report(&self) -> PhaseReport {
        let mut total = PhaseReport::default();
        for shard in &self.shards {
            for lane in shard.lanes() {
                let r = lane.phase_report();
                for i in 0..PhaseTag::COUNT {
                    total.moves[i] += r.moves[i];
                    total.steps[i] += r.steps[i];
                    total.rounds[i] += r.rounds[i];
                }
                total.total_steps += r.total_steps;
                total.total_rounds += r.total_rounds;
                total.total_moves += r.total_moves;
                total.abnormal_procs += r.abnormal_procs;
            }
        }
        total
    }

    /// The shard index each configured initiator was assigned to.
    pub fn assignment(&self) -> Vec<(ProcId, usize)> {
        self.route.iter().map(|&(p, s, _)| (p, s)).collect()
    }

    /// Every live lane's current register states, keyed by initiator and
    /// in configuration order. This is the churn carry-over surface: a
    /// rebuild after a topology change feeds these (remapped to the new
    /// processor ids) back in via [`ServeConfig::lane_states`], so
    /// surviving replicas resume from their mid-stream configurations
    /// instead of a clean slate.
    pub fn lane_states(&self) -> Vec<(ProcId, Vec<PifState>)> {
        self.route
            .iter()
            .map(|&(p, s, l)| (p, self.shards[s].lanes()[l].states().to_vec()))
            .collect()
    }

    /// The fault epoch of each live lane, keyed by initiator.
    pub fn lane_fault_epochs(&self) -> Vec<(ProcId, u32)> {
        self.route
            .iter()
            .map(|&(p, s, l)| (p, self.shards[s].lanes()[l].fault_epoch()))
            .collect()
    }

    /// Retires an initiator's lane mid-campaign (its processor is leaving
    /// the topology): every queued and in-flight request on that lane is
    /// shed into the ledger with [`crate::ShedCause::Retired`], and the
    /// initiator stops routing (later [`WaveService::submit`] calls for
    /// it return [`ServeError::UnknownInitiator`]). Returns the number of
    /// requests shed.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownInitiator`] if `p` is not (or no longer) a
    /// configured initiator.
    pub fn retire_initiator(&mut self, p: ProcId) -> Result<u64, ServeError> {
        let pos = self
            .route
            .iter()
            .position(|&(q, _, _)| q == p)
            .ok_or(ServeError::UnknownInitiator { initiator: p })?;
        let (_, shard, lane) = self.route.remove(pos);
        Ok(self.shards[shard].retire_lane(lane))
    }
}

impl<M: fmt::Debug> fmt::Debug for WaveService<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaveService")
            .field("shards", &self.shards)
            .field("submitted", &self.next_id)
            .finish_non_exhaustive()
    }
}

/// `k` initiators spread evenly over a network of `n` processors
/// (`⌊i·n/k⌋` for `i < k`, deduplicated) — the canonical initiator set of
/// the CLI and the benchmark experiment.
pub fn spread_initiators(n: usize, k: usize) -> Vec<ProcId> {
    let k = k.clamp(1, n.max(1));
    let mut out: Vec<ProcId> = Vec::with_capacity(k);
    for i in 0..k {
        let p = ProcId::from_index(i * n / k);
        if out.last() != Some(&p) {
            out.push(p);
        }
    }
    out
}

/// A fully deterministic serving scenario: configuration plus a canonical
/// workload (round-robin initiators, payload = request id, aggregate
/// kinds cycling through [`crate::AggregateKind::ALL`]) and an optional
/// fault campaign. The shared vocabulary of the `pif-serve` CLI, the E15
/// benchmark, and `pif-serve check` replay — a scenario reconstructed
/// from a recorded report re-runs to bit-identical deterministic fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Network family and size.
    pub topology: Topology,
    /// Lane roots.
    pub initiators: Vec<ProcId>,
    /// Worker shards.
    pub shards: usize,
    /// Master seed.
    pub seed: u64,
    /// Lane daemon strategy.
    pub daemon: ServeDaemon,
    /// Requests to submit.
    pub requests: u64,
    /// Optional corruption campaign
    /// `(after_completions, registers_per_lane, seed)`.
    pub fault: Option<(u64, usize, u64)>,
}

/// Runs a [`Scenario`] end to end and returns the served service (ledger
/// and metrics intact, ready for [`crate::ServiceReport::capture`]).
///
/// The queue capacity is sized to the full workload so nothing is shed —
/// scenario runs measure serving behavior, not admission control.
///
/// # Errors
///
/// Propagates service construction and run errors.
pub fn run_scenario(scenario: &Scenario) -> Result<WaveService<u64>, ServeError> {
    run_scenario_on(scenario, Engine::Aos)
}

/// [`run_scenario`] with an explicit step backend. Scenarios are
/// engine-agnostic (the engines produce identical executions, so recorded
/// envelopes replay on either); the engine is a run-time choice, not part
/// of the scenario.
///
/// # Errors
///
/// Propagates service construction and run errors.
pub fn run_scenario_on(
    scenario: &Scenario,
    engine: Engine,
) -> Result<WaveService<u64>, ServeError> {
    run_scenario_with(scenario, engine, None)
}

/// [`run_scenario`] over the message-passing transport: every lane runs
/// its PIF instance on a `pif_net::NetSim` configured by `net`, with
/// per-lane seeds derived from the scenario seed. The canonical workload
/// is unchanged, so mem and net runs of one scenario are directly
/// comparable in the ledger.
///
/// # Errors
///
/// Propagates service construction (including fault-plan validation) and
/// run errors.
pub fn run_scenario_net(
    scenario: &Scenario,
    net: NetLaneConfig,
) -> Result<WaveService<u64>, ServeError> {
    run_scenario_with(scenario, Engine::Aos, Some(net))
}

fn run_scenario_with(
    scenario: &Scenario,
    engine: Engine,
    net: Option<NetLaneConfig>,
) -> Result<WaveService<u64>, ServeError> {
    let mut config = ServeConfig::new(scenario.topology.clone())
        .initiators(scenario.initiators.clone())
        .shards(scenario.shards)
        .seed(scenario.seed)
        .daemon(scenario.daemon)
        .engine(engine)
        .queue_capacity(scenario.requests.max(1) as usize);
    if let Some(n) = net {
        config = config.net_transport(n);
    }
    let mut service = WaveService::new(config)?;
    if let Some((after, k, seed)) = scenario.fault {
        service.schedule_fault(FaultSpec {
            after_completions: after,
            registers_per_lane: k,
            seed,
        });
    }
    let kinds = crate::AggregateKind::ALL;
    for i in 0..scenario.requests {
        let initiator = scenario.initiators[(i as usize) % scenario.initiators.len()];
        service.submit(Request::new(initiator, i, kinds[(i as usize) % kinds.len()]))?;
    }
    service.run()?;
    Ok(service)
}
