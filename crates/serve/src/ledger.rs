//! The delivery ledger: per-request \[PIF1\]/\[PIF2\] verdicts and the
//! operational snap-stabilization assertion.
//!
//! The ledger is what makes the service *honest*: every request gets a
//! record stating whether its cycle really delivered the payload
//! everywhere (\[PIF1\]), whether the root really collected every
//! acknowledgment (\[PIF2\]), which fault epoch its wave was initiated
//! in, and its per-phase latency in deterministic units (steps/rounds).
//!
//! **What the ledger claims under faults** (Definition 1, operationally):
//! every request whose wave was initiated after the last corruption
//! campaign — [`RequestRecord::initiated_epoch`] equal to the epoch at
//! completion — must satisfy \[PIF1\] ∧ \[PIF2\]. **What it does not
//! claim:** requests in flight *at* the fault may be lost or delivered
//! wrongly; the ledger counts them separately as casualties instead of
//! hiding them.

use pif_graph::ProcId;

use crate::request::AggregateKind;
use crate::{RequestId, ServeError};

/// Why a shed request never ran.
///
/// Shedding is *admission control*, not a delivery failure — but the two
/// causes have different SLO meanings. A `Displaced` request lost a queue
/// slot to load; a `Retired` one lost its initiator to topology churn.
/// Keeping them distinguishable (instead of one opaque `Shed`) is what
/// lets availability denominators stay honest: neither is a fault
/// casualty, and neither is silently dropped from the ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedCause {
    /// Evicted from a full queue under [`crate::ShedPolicy::DropOldest`]
    /// (or rejected at submission under [`crate::ShedPolicy::Reject`]).
    Displaced,
    /// Its initiator's lane was retired (e.g. the processor left the
    /// topology mid-campaign) with the request still queued or armed.
    Retired,
}

impl ShedCause {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShedCause::Displaced => "displaced",
            ShedCause::Retired => "retired",
        }
    }
}

/// Terminal status of one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The root's `F-action` closed the cycle; the verdicts say whether it
    /// was a *correct* cycle.
    Completed {
        /// Every processor's message register held the payload when the
        /// feedback reached the root.
        pif1: bool,
        /// \[PIF1\] plus: every non-root processor acknowledged.
        pif2: bool,
        /// The aggregated feedback the root collected.
        feedback: Option<i64>,
    },
    /// Never ran: evicted by admission control or lane retirement.
    Shed {
        /// What evicted it.
        cause: ShedCause,
    },
    /// The per-request step budget expired before the root's `F-action`.
    TimedOut,
}

/// The ledger entry of one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// Submission-order id.
    pub id: RequestId,
    /// The request's initiator (the root of its cycle).
    pub initiator: ProcId,
    /// Shard that served it.
    pub shard: usize,
    /// Requested fold.
    pub aggregate: AggregateKind,
    /// Terminal status and verdicts.
    pub outcome: RequestOutcome,
    /// Fault epoch (number of corruption campaigns applied to its lane) in
    /// which the wave's *last* root `B-action` executed. `0` = before any
    /// fault.
    pub initiated_epoch: u32,
    /// Fault epoch when the record was written. A record with
    /// `initiated_epoch < completed_epoch` was in flight when a fault hit.
    pub completed_epoch: u32,
    /// Steps from the root's `B-action` to the last processor's delivery
    /// (the broadcast phase).
    pub broadcast_steps: u64,
    /// Steps from the last delivery to the root's `F-action` (the feedback
    /// phase).
    pub feedback_steps: u64,
    /// Steps from the root's `B-action` to its `F-action` (the paper's PIF
    /// cycle).
    pub cycle_steps: u64,
    /// Rounds from the root's `B-action` to its `F-action`.
    pub cycle_rounds: u64,
    /// Steps from arming to completion — includes the pipelining wait for
    /// the root's own cleaning from the previous cycle.
    pub turnaround_steps: u64,
    /// Height of the broadcast tree the cycle constructed.
    pub height: u32,
}

impl RequestRecord {
    /// Whether the cycle satisfied the full PIF specification.
    pub fn is_correct(&self) -> bool {
        matches!(self.outcome, RequestOutcome::Completed { pif1: true, pif2: true, .. })
    }

    /// Whether the wave ran in a single fault epoch (no corruption hit it
    /// mid-flight).
    pub fn single_epoch(&self) -> bool {
        self.initiated_epoch == self.completed_epoch
    }

    /// Whether the operational snap claim covers this record: its wave was
    /// initiated after at least one fault and no later fault hit it.
    pub fn covered_by_snap_claim(&self) -> bool {
        self.initiated_epoch > 0
            && self.single_epoch()
            && !matches!(self.outcome, RequestOutcome::Shed { .. })
    }

    /// Whether a fault cost this request: it was in flight when a
    /// campaign hit (or starved past its budget *after* a fault) and did
    /// not complete correctly.
    ///
    /// Shed requests are never casualties — they were evicted by
    /// admission control or lane retirement before a wave ran for them
    /// (see [`ShedCause`]). A timeout in a ledger that never saw a fault
    /// (`completed_epoch == 0`) is starvation or a misconfigured step
    /// budget, not a fault casualty; it still fails
    /// [`LedgerSummary::is_clean`], just under the honest label.
    pub fn is_casualty(&self) -> bool {
        match self.outcome {
            RequestOutcome::Shed { .. } => false,
            RequestOutcome::TimedOut => self.completed_epoch > 0,
            RequestOutcome::Completed { .. } => !self.single_epoch() && !self.is_correct(),
        }
    }
}

/// Aggregated ledger verdicts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerSummary {
    /// Records written (completed + shed + timed out).
    pub total: u64,
    /// Requests that completed with \[PIF1\] ∧ \[PIF2\].
    pub completed_ok: u64,
    /// Requests that completed but violated \[PIF1\] or \[PIF2\].
    pub completed_bad: u64,
    /// Requests evicted by the shed policy.
    pub shed: u64,
    /// Requests that exhausted their step budget.
    pub timed_out: u64,
    /// In-flight requests a fault cost (failed and spanning a fault, or
    /// timed out).
    pub casualties: u64,
    /// Requests covered by the snap claim (initiated after a fault, no
    /// fault mid-wave).
    pub post_fault_total: u64,
    /// Of those, the ones that completed correctly — the snap claim is
    /// `post_fault_ok == post_fault_total`.
    pub post_fault_ok: u64,
}

impl LedgerSummary {
    /// Whether every non-shed request completed correctly (the expectation
    /// for fault-free service).
    pub fn is_clean(&self) -> bool {
        self.completed_bad == 0 && self.timed_out == 0 && self.completed_ok + self.shed == self.total
    }

    /// The operational snap-stabilization claim over this ledger.
    pub fn snap_holds(&self) -> bool {
        self.post_fault_ok == self.post_fault_total
    }
}

/// Append-only request ledger for one service.
#[derive(Clone, Debug, Default)]
pub struct DeliveryLedger {
    records: Vec<RequestRecord>,
}

impl DeliveryLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        DeliveryLedger::default()
    }

    /// Appends one record.
    pub fn push(&mut self, record: RequestRecord) {
        self.records.push(record);
    }

    /// All records, in completion order per shard (merged by shard order).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Computes the aggregate verdicts.
    pub fn summary(&self) -> LedgerSummary {
        let mut s = LedgerSummary::default();
        for r in &self.records {
            s.total += 1;
            match &r.outcome {
                RequestOutcome::Completed { pif1: true, pif2: true, .. } => s.completed_ok += 1,
                RequestOutcome::Completed { .. } => s.completed_bad += 1,
                RequestOutcome::Shed { .. } => s.shed += 1,
                RequestOutcome::TimedOut => s.timed_out += 1,
            }
            if r.is_casualty() {
                s.casualties += 1;
            }
            if r.covered_by_snap_claim() {
                s.post_fault_total += 1;
                if r.is_correct() {
                    s.post_fault_ok += 1;
                }
            }
        }
        s
    }

    /// Counts shed records by cause, without touching the (report-stable)
    /// [`LedgerSummary`] field set.
    pub fn shed_by_cause(&self, cause: ShedCause) -> u64 {
        self.records
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Shed { cause })
            .count() as u64
    }

    /// Asserts the operational snap-stabilization claim: every request
    /// initiated after the last fault (and not hit by a later one)
    /// completed correctly.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapViolation`] naming the first offending request.
    pub fn assert_snap(&self) -> Result<(), ServeError> {
        for r in &self.records {
            if r.covered_by_snap_claim() && !r.is_correct() {
                return Err(ServeError::SnapViolation { request: r.id, initiator: r.initiator });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, outcome: RequestOutcome, initiated: u32, completed: u32) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            initiator: ProcId(0),
            shard: 0,
            aggregate: AggregateKind::Ack,
            outcome,
            initiated_epoch: initiated,
            completed_epoch: completed,
            broadcast_steps: 1,
            feedback_steps: 1,
            cycle_steps: 2,
            cycle_rounds: 2,
            turnaround_steps: 3,
            height: 1,
        }
    }

    fn ok() -> RequestOutcome {
        RequestOutcome::Completed { pif1: true, pif2: true, feedback: Some(4) }
    }

    fn bad() -> RequestOutcome {
        RequestOutcome::Completed { pif1: false, pif2: false, feedback: None }
    }

    #[test]
    fn clean_ledger_summary() {
        let mut l = DeliveryLedger::new();
        l.push(record(0, ok(), 0, 0));
        l.push(record(1, ok(), 0, 0));
        let s = l.summary();
        assert!(s.is_clean());
        assert!(s.snap_holds());
        assert_eq!(s.completed_ok, 2);
        assert_eq!(s.casualties, 0);
        assert!(l.assert_snap().is_ok());
    }

    #[test]
    fn in_flight_failure_is_a_casualty_not_a_snap_violation() {
        let mut l = DeliveryLedger::new();
        l.push(record(0, bad(), 0, 1)); // in flight when the fault hit
        l.push(record(1, ok(), 1, 1)); // initiated after the fault
        let s = l.summary();
        assert_eq!(s.casualties, 1);
        assert_eq!(s.post_fault_total, 1);
        assert_eq!(s.post_fault_ok, 1);
        assert!(s.snap_holds());
        assert!(l.assert_snap().is_ok());
        assert!(!s.is_clean(), "a failed completion is never clean");
    }

    #[test]
    fn post_fault_failure_violates_snap() {
        let mut l = DeliveryLedger::new();
        l.push(record(0, bad(), 1, 1));
        assert!(!l.summary().snap_holds());
        assert!(matches!(
            l.assert_snap(),
            Err(ServeError::SnapViolation { request: RequestId(0), .. })
        ));
    }

    #[test]
    fn shed_records_do_not_break_cleanliness() {
        let mut l = DeliveryLedger::new();
        l.push(record(0, ok(), 0, 0));
        l.push(record(1, RequestOutcome::Shed { cause: ShedCause::Displaced }, 0, 0));
        l.push(record(2, RequestOutcome::Shed { cause: ShedCause::Retired }, 0, 0));
        let s = l.summary();
        assert_eq!(s.shed, 2);
        assert_eq!(l.shed_by_cause(ShedCause::Displaced), 1);
        assert_eq!(l.shed_by_cause(ShedCause::Retired), 1);
        assert_eq!(s.casualties, 0, "shedding is admission control, not a fault");
        assert!(s.is_clean());
    }

    #[test]
    fn timeout_after_a_fault_counts_as_casualty() {
        let mut l = DeliveryLedger::new();
        l.push(record(0, RequestOutcome::TimedOut, 0, 1));
        let s = l.summary();
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.casualties, 1);
        assert!(!s.is_clean());
    }

    #[test]
    fn fault_free_timeout_is_starvation_not_a_casualty() {
        // No corruption campaign ever ran (both epochs 0): the timeout
        // still dirties the ledger, but it must not be booked against
        // faults — that would inflate every SLO denominator downstream.
        let mut l = DeliveryLedger::new();
        l.push(record(0, RequestOutcome::TimedOut, 0, 0));
        let s = l.summary();
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.casualties, 0);
        assert!(!s.is_clean());
    }
}
