//! Versioned service throughput/latency reports.
//!
//! A [`ServiceReport`] captures one service run: configuration (enough to
//! replay it), ledger verdicts, per-phase move counts, and sparse
//! power-of-two latency histograms in **deterministic units** (steps and
//! rounds) — so the whole report except the wall-clock throughput figures
//! is a pure function of the recorded seed and can be re-derived bit-for-
//! bit by `pif-serve check`. JSON is emitted/parsed with the workspace's
//! hermetic [`pif_daemon::json`] layer.

use std::fmt::Write as _;

use pif_daemon::json::{self, Json};
use pif_daemon::{PhaseReport, PhaseTag};
use pif_graph::Topology;

use crate::ledger::LedgerSummary;
use crate::service::{Scenario, ServeDaemon};
use crate::{ServeError, WaveService};

/// Report format version (bump on breaking field changes).
pub const REPORT_VERSION: u64 = 1;

/// A sparse power-of-two histogram: `(bucket, count)` pairs where bucket
/// `b` counts values `v` with `2^(b-1) < v <= 2^b` (bucket 0 counts
/// `v <= 1`), ascending by bucket, zero buckets omitted.
pub type SparseHist = Vec<(u32, u64)>;

/// Buckets `values` into a [`SparseHist`].
pub fn sparse_pow2_hist(values: impl Iterator<Item = u64>) -> SparseHist {
    let mut buckets = [0u64; 65];
    for v in values {
        let b = if v <= 1 { 0 } else { 64 - (v - 1).leading_zeros() as usize };
        buckets[b] += 1;
    }
    buckets
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(b, &c)| (b as u32, c))
        .collect()
}

/// One service run's results.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Topology spec in [`Topology::parse`] format.
    pub topology: String,
    /// Network size.
    pub n: usize,
    /// Configured initiators (processor ids).
    pub initiators: Vec<u64>,
    /// Shard count.
    pub shards: usize,
    /// Master seed (replay key).
    pub seed: u64,
    /// Lane daemon name ([`ServeDaemon::name`]).
    pub daemon: String,
    /// Requests submitted (accepted or shed).
    pub requests: u64,
    /// Ledger verdicts.
    pub summary: LedgerSummary,
    /// Fault campaign replay parameters, if one was scheduled:
    /// `(after_completions, registers_per_lane, seed)`.
    pub fault: Option<(u64, usize, u64)>,
    /// Steps executed across all lanes.
    pub total_steps: u64,
    /// Completed rounds across all lanes.
    pub total_rounds: u64,
    /// Executed actions per PIF phase, [`PhaseTag::ALL`] order.
    pub phase_moves: [u64; PhaseTag::COUNT],
    /// Broadcast-phase latency per request (steps, root `B` → last copy).
    pub broadcast_steps: SparseHist,
    /// Feedback-phase latency per request (steps, last copy → root `F`).
    pub feedback_steps: SparseHist,
    /// Full-cycle latency per request (rounds, root `B` → root `F`).
    pub cycle_rounds: SparseHist,
    /// Turnaround per request (steps, arming → completion; includes the
    /// pipelining wait for the root's own cleaning).
    pub turnaround_steps: SparseHist,
    /// Wall-clock seconds spent serving (not deterministic).
    pub elapsed_seconds: f64,
    /// Completed requests per wall-clock second (not deterministic).
    pub requests_per_sec: f64,
}

/// Renders `t` in the [`Topology::parse`] spec format.
pub fn topology_spec(t: &Topology) -> String {
    match *t {
        Topology::Chain { n } => format!("chain:{n}"),
        Topology::Ring { n } => format!("ring:{n}"),
        Topology::Star { n } => format!("star:{n}"),
        Topology::Complete { n } => format!("complete:{n}"),
        Topology::KaryTree { n, k } => format!("tree:{n}:{k}"),
        Topology::RandomTree { n, seed } => format!("randtree:{n}:{seed}"),
        Topology::Grid { w, h } => format!("grid:{w}x{h}"),
        Topology::Torus { w, h } => format!("torus:{w}x{h}"),
        Topology::Hypercube { d } => format!("hypercube:{d}"),
        Topology::Lollipop { clique, tail } => format!("lollipop:{clique}:{tail}"),
        Topology::Caterpillar { spine, legs } => format!("caterpillar:{spine}:{legs}"),
        Topology::Wheel { n } => format!("wheel:{n}"),
        Topology::Bipartite { a, b } => format!("bipartite:{a}x{b}"),
        Topology::Petersen => "petersen".to_string(),
        Topology::Barbell { clique, bridge } => format!("barbell:{clique}:{bridge}"),
        Topology::Random { n, p, seed } => format!("random:{n}:{p}:{seed}"),
        _ => t.to_string(),
    }
}

impl ServiceReport {
    /// Captures the current state of a service (call after
    /// [`WaveService::run`]).
    pub fn capture<M: Clone + PartialEq + std::fmt::Debug + Send>(
        service: &WaveService<M>,
        fault: Option<(u64, usize, u64)>,
    ) -> Self {
        let ledger = service.ledger();
        let summary = ledger.summary();
        let phases: PhaseReport = service.phase_report();
        let completed_records = || {
            ledger.records().iter().filter(|r| {
                matches!(r.outcome, crate::RequestOutcome::Completed { .. })
            })
        };
        let elapsed = service.run_seconds();
        let served = summary.completed_ok + summary.completed_bad;
        ServiceReport {
            topology: topology_spec(&service.config().topology),
            n: service.graph().len(),
            initiators: service.config().initiators.iter().map(|p| u64::from(p.0)).collect(),
            shards: service.config().shards,
            seed: service.config().seed,
            daemon: service.config().daemon.name().to_string(),
            requests: service.submitted(),
            summary,
            fault,
            total_steps: phases.total_steps,
            total_rounds: phases.total_rounds,
            phase_moves: phases.moves,
            broadcast_steps: sparse_pow2_hist(completed_records().map(|r| r.broadcast_steps)),
            feedback_steps: sparse_pow2_hist(completed_records().map(|r| r.feedback_steps)),
            cycle_rounds: sparse_pow2_hist(completed_records().map(|r| r.cycle_rounds)),
            turnaround_steps: sparse_pow2_hist(completed_records().map(|r| r.turnaround_steps)),
            elapsed_seconds: elapsed,
            requests_per_sec: if elapsed > 0.0 { served as f64 / elapsed } else { 0.0 },
        }
    }

    /// Whether the replay-stable fields of two reports coincide (ignores
    /// the wall-clock figures).
    pub fn deterministic_eq(&self, other: &ServiceReport) -> bool {
        self.topology == other.topology
            && self.n == other.n
            && self.initiators == other.initiators
            && self.shards == other.shards
            && self.seed == other.seed
            && self.daemon == other.daemon
            && self.requests == other.requests
            && self.summary == other.summary
            && self.fault == other.fault
            && self.total_steps == other.total_steps
            && self.total_rounds == other.total_rounds
            && self.phase_moves == other.phase_moves
            && self.broadcast_steps == other.broadcast_steps
            && self.feedback_steps == other.feedback_steps
            && self.cycle_rounds == other.cycle_rounds
            && self.turnaround_steps == other.turnaround_steps
    }

    /// Serializes to a JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"topology\": ");
        json::write_string(&self.topology, &mut out);
        let _ = write!(out, ", \"n\": {}", self.n);
        let ids: Vec<String> = self.initiators.iter().map(ToString::to_string).collect();
        let _ = write!(out, ", \"initiators\": [{}]", ids.join(", "));
        let _ = write!(out, ", \"shards\": {}", self.shards);
        let _ = write!(out, ", \"seed\": {}", self.seed);
        let _ = write!(out, ", \"daemon\": ");
        json::write_string(&self.daemon, &mut out);
        let _ = write!(out, ", \"requests\": {}", self.requests);
        let s = &self.summary;
        let _ = write!(
            out,
            ", \"summary\": {{\"total\": {}, \"completed_ok\": {}, \"completed_bad\": {}, \
             \"shed\": {}, \"timed_out\": {}, \"casualties\": {}, \"post_fault_total\": {}, \
             \"post_fault_ok\": {}}}",
            s.total,
            s.completed_ok,
            s.completed_bad,
            s.shed,
            s.timed_out,
            s.casualties,
            s.post_fault_total,
            s.post_fault_ok
        );
        match self.fault {
            Some((after, k, seed)) => {
                let _ = write!(
                    out,
                    ", \"fault\": {{\"after_completions\": {after}, \"registers_per_lane\": {k}, \
                     \"seed\": {seed}}}"
                );
            }
            None => out.push_str(", \"fault\": null"),
        }
        let _ = write!(out, ", \"total_steps\": {}", self.total_steps);
        let _ = write!(out, ", \"total_rounds\": {}", self.total_rounds);
        out.push_str(", \"phase_moves\": {");
        for (i, tag) in PhaseTag::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{:?}\": {}", tag, self.phase_moves[i]);
        }
        out.push('}');
        let hist = |name: &str, h: &SparseHist, out: &mut String| {
            let _ = write!(out, ", \"{name}\": [");
            for (i, (b, c)) in h.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{b}, {c}]");
            }
            out.push(']');
        };
        hist("broadcast_steps_hist", &self.broadcast_steps, &mut out);
        hist("feedback_steps_hist", &self.feedback_steps, &mut out);
        hist("cycle_rounds_hist", &self.cycle_rounds, &mut out);
        hist("turnaround_steps_hist", &self.turnaround_steps, &mut out);
        let _ = write!(out, ", \"elapsed_seconds\": {:.6}", self.elapsed_seconds);
        let _ = write!(out, ", \"requests_per_sec\": {:.3}", self.requests_per_sec);
        out.push('}');
        out
    }

    /// Parses one result object produced by [`ServiceReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Report`] describing the first missing/ill-typed
    /// field.
    pub fn from_json(v: &Json) -> Result<Self, ServeError> {
        fn need<'a>(v: &'a Json, key: &str) -> Result<&'a Json, ServeError> {
            v.get(key).ok_or_else(|| ServeError::Report(format!("missing field {key:?}")))
        }
        fn num(v: &Json, key: &str) -> Result<u64, ServeError> {
            need(v, key)?
                .as_u64()
                .ok_or_else(|| ServeError::Report(format!("field {key:?} is not an integer")))
        }
        fn text(v: &Json, key: &str) -> Result<String, ServeError> {
            Ok(need(v, key)?
                .as_str()
                .ok_or_else(|| ServeError::Report(format!("field {key:?} is not a string")))?
                .to_string())
        }
        fn float(v: &Json, key: &str) -> Result<f64, ServeError> {
            match need(v, key)? {
                Json::Num(s) => s
                    .parse()
                    .map_err(|_| ServeError::Report(format!("field {key:?} is not a number"))),
                _ => Err(ServeError::Report(format!("field {key:?} is not a number"))),
            }
        }
        fn hist(v: &Json, key: &str) -> Result<SparseHist, ServeError> {
            let arr = need(v, key)?
                .as_array()
                .ok_or_else(|| ServeError::Report(format!("field {key:?} is not an array")))?;
            arr.iter()
                .map(|pair| {
                    let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                        ServeError::Report(format!("field {key:?} has a malformed bucket"))
                    })?;
                    let b = items[0].as_u64().and_then(|b| u32::try_from(b).ok());
                    let c = items[1].as_u64();
                    match (b, c) {
                        (Some(b), Some(c)) => Ok((b, c)),
                        _ => Err(ServeError::Report(format!(
                            "field {key:?} has a non-integer bucket"
                        ))),
                    }
                })
                .collect()
        }

        let summary_v = need(v, "summary")?;
        let summary = LedgerSummary {
            total: num(summary_v, "total")?,
            completed_ok: num(summary_v, "completed_ok")?,
            completed_bad: num(summary_v, "completed_bad")?,
            shed: num(summary_v, "shed")?,
            timed_out: num(summary_v, "timed_out")?,
            casualties: num(summary_v, "casualties")?,
            post_fault_total: num(summary_v, "post_fault_total")?,
            post_fault_ok: num(summary_v, "post_fault_ok")?,
        };
        let fault = match need(v, "fault")? {
            Json::Null => None,
            f => Some((
                num(f, "after_completions")?,
                num(f, "registers_per_lane")? as usize,
                num(f, "seed")?,
            )),
        };
        let moves_v = need(v, "phase_moves")?;
        let mut phase_moves = [0u64; PhaseTag::COUNT];
        for (i, tag) in PhaseTag::ALL.iter().enumerate() {
            phase_moves[i] = num(moves_v, &format!("{tag:?}"))?;
        }
        let initiators = need(v, "initiators")?
            .as_array()
            .ok_or_else(|| ServeError::Report("field \"initiators\" is not an array".into()))?
            .iter()
            .map(|j| {
                j.as_u64()
                    .ok_or_else(|| ServeError::Report("non-integer initiator id".into()))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(ServiceReport {
            topology: text(v, "topology")?,
            n: num(v, "n")? as usize,
            initiators,
            shards: num(v, "shards")? as usize,
            seed: num(v, "seed")?,
            daemon: text(v, "daemon")?,
            requests: num(v, "requests")?,
            summary,
            fault,
            total_steps: num(v, "total_steps")?,
            total_rounds: num(v, "total_rounds")?,
            phase_moves,
            broadcast_steps: hist(v, "broadcast_steps_hist")?,
            feedback_steps: hist(v, "feedback_steps_hist")?,
            cycle_rounds: hist(v, "cycle_rounds_hist")?,
            turnaround_steps: hist(v, "turnaround_steps_hist")?,
            elapsed_seconds: float(v, "elapsed_seconds")?,
            requests_per_sec: float(v, "requests_per_sec")?,
        })
    }

    /// The daemon this report was produced under.
    ///
    /// # Errors
    ///
    /// [`ServeError::Report`] on an unknown daemon name.
    pub fn daemon_kind(&self) -> Result<ServeDaemon, ServeError> {
        ServeDaemon::parse(&self.daemon)
    }

    /// Reconstructs the [`Scenario`] that produced this report, for
    /// deterministic replay (`pif-serve check`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Report`] on an unparseable topology or daemon name.
    pub fn scenario(&self) -> Result<Scenario, ServeError> {
        let topology = Topology::parse(&self.topology)
            .map_err(|e| ServeError::Report(format!("bad topology spec: {e}")))?;
        Ok(Scenario {
            topology,
            initiators: self
                .initiators
                .iter()
                .map(|&i| pif_graph::ProcId::from_index(i as usize))
                .collect(),
            shards: self.shards,
            seed: self.seed,
            daemon: self.daemon_kind()?,
            requests: self.requests,
            fault: self.fault,
        })
    }
}

/// Wraps per-configuration reports in the versioned benchmark envelope
/// (`BENCH_service_throughput.json` format).
pub fn envelope(seed: u64, results: &[ServiceReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"service_throughput\",\n");
    let _ = write!(out, "  \"version\": {REPORT_VERSION},\n  \"seed\": {seed},\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a benchmark envelope back into its reports.
///
/// # Errors
///
/// [`ServeError::Report`] on syntax errors, a wrong benchmark name, or an
/// unsupported version.
pub fn parse_envelope(text: &str) -> Result<(u64, Vec<ServiceReport>), ServeError> {
    let v = json::parse(text).map_err(|e| ServeError::Report(e.to_string()))?;
    match v.get("benchmark").and_then(Json::as_str) {
        Some("service_throughput") => {}
        other => {
            return Err(ServeError::Report(format!("unexpected benchmark name {other:?}")));
        }
    }
    match v.get("version").and_then(Json::as_u64) {
        Some(REPORT_VERSION) => {}
        other => return Err(ServeError::Report(format!("unsupported version {other:?}"))),
    }
    let seed = v
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::Report("missing envelope seed".into()))?;
    let results = v
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| ServeError::Report("missing results array".into()))?
        .iter()
        .map(ServiceReport::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((seed, results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_hist_buckets_pow2() {
        let h = sparse_pow2_hist([0u64, 1, 2, 3, 4, 1024].into_iter());
        // 0 and 1 → bucket 0; 2 → bucket 1; 3, 4 → bucket 2; 1024 → bucket 10.
        assert_eq!(h, vec![(0, 2), (1, 1), (2, 2), (10, 1)]);
        assert!(sparse_pow2_hist(std::iter::empty()).is_empty());
    }

    #[test]
    fn topology_specs_round_trip_through_parse() {
        for t in [
            Topology::Chain { n: 16 },
            Topology::Torus { w: 4, h: 4 },
            Topology::Random { n: 16, p: 0.1, seed: 3 },
            Topology::Grid { w: 2, h: 5 },
        ] {
            let spec = topology_spec(&t);
            assert_eq!(Topology::parse(&spec).unwrap(), t, "{spec}");
        }
    }

    fn sample_report() -> ServiceReport {
        ServiceReport {
            topology: "torus:4x4".into(),
            n: 16,
            initiators: vec![0, 5],
            shards: 2,
            seed: 7,
            daemon: "synchronous".into(),
            requests: 100,
            summary: LedgerSummary {
                total: 100,
                completed_ok: 98,
                completed_bad: 1,
                shed: 1,
                timed_out: 0,
                casualties: 1,
                post_fault_total: 50,
                post_fault_ok: 50,
            },
            fault: Some((25, 8, 11)),
            total_steps: 12345,
            total_rounds: 678,
            phase_moves: [10, 2, 9, 8, 1, 0],
            broadcast_steps: vec![(3, 40), (4, 58)],
            feedback_steps: vec![(3, 98)],
            cycle_rounds: vec![(5, 98)],
            turnaround_steps: vec![(6, 90), (7, 8)],
            elapsed_seconds: 0.25,
            requests_per_sec: 396.0,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let text = r.to_json();
        let parsed = ServiceReport::from_json(&json::parse(&text).unwrap()).unwrap();
        assert!(r.deterministic_eq(&parsed));
        assert!((parsed.elapsed_seconds - r.elapsed_seconds).abs() < 1e-9);
    }

    #[test]
    fn envelope_round_trips() {
        let r = sample_report();
        let text = envelope(7, &[r.clone(), r.clone()]);
        let (seed, results) = parse_envelope(&text).unwrap();
        assert_eq!(seed, 7);
        assert_eq!(results.len(), 2);
        assert!(results[0].deterministic_eq(&r));
    }

    #[test]
    fn envelope_rejects_wrong_benchmark() {
        assert!(parse_envelope("{\"benchmark\": \"other\", \"version\": 1}").is_err());
        assert!(parse_envelope("not json").is_err());
    }

    #[test]
    fn deterministic_eq_ignores_wall_clock() {
        let a = sample_report();
        let mut b = a.clone();
        b.elapsed_seconds = 99.0;
        b.requests_per_sec = 1.0;
        assert!(a.deterministic_eq(&b));
        b.total_steps += 1;
        assert!(!a.deterministic_eq(&b));
    }
}
