//! Broadcast requests and the per-request feedback aggregation.

use std::fmt;

use pif_core::wave::Aggregate;
use pif_graph::ProcId;

/// Globally unique identifier of a submitted request (submission order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Which fold the feedback wave applies to the per-processor
/// contributions of this request.
///
/// The contract of [`pif_core::wave::Aggregate`] — associative,
/// commutative folds — restricts the menu; these four cover the
/// applications in `pif-apps` (acknowledgment counting, infimum/supremum,
/// distributed sums).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggregateKind {
    /// Count acknowledging processors (every contribution is 1; the root's
    /// feedback equals `N` exactly when \[PIF2\] holds).
    Ack,
    /// Sum of the per-processor contribution values.
    Sum,
    /// Maximum of the per-processor contribution values.
    Max,
    /// Minimum of the per-processor contribution values.
    Min,
}

impl AggregateKind {
    /// All kinds, for round-robin workload generators.
    pub const ALL: [AggregateKind; 4] =
        [AggregateKind::Ack, AggregateKind::Sum, AggregateKind::Max, AggregateKind::Min];

    /// Stable lowercase name (used in reports).
    pub const fn name(self) -> &'static str {
        match self {
            AggregateKind::Ack => "ack",
            AggregateKind::Sum => "sum",
            AggregateKind::Max => "max",
            AggregateKind::Min => "min",
        }
    }

    /// The feedback value a correct cycle must deliver over
    /// `contributions` (the whole-network fold, root included).
    pub fn expected(self, contributions: &[i64]) -> i64 {
        match self {
            AggregateKind::Ack => contributions.len() as i64,
            AggregateKind::Sum => contributions.iter().sum(),
            AggregateKind::Max => contributions.iter().copied().max().unwrap_or(0),
            AggregateKind::Min => contributions.iter().copied().min().unwrap_or(0),
        }
    }
}

impl fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One broadcast request: deliver `payload` from `initiator` to every
/// processor and fold feedback per `aggregate`.
#[derive(Clone, Debug)]
pub struct Request<M> {
    /// The root of this request's PIF cycle.
    pub initiator: ProcId,
    /// The value every processor must receive.
    pub payload: M,
    /// How the acknowledgment wave folds contributions.
    pub aggregate: AggregateKind,
}

impl<M> Request<M> {
    /// Builds a request.
    pub fn new(initiator: ProcId, payload: M, aggregate: AggregateKind) -> Self {
        Request { initiator, payload, aggregate }
    }
}

/// A kind-switchable [`Aggregate`]: one fixed contribution vector, with
/// the fold selected per request (via
/// [`pif_core::wave::WaveOverlay::aggregate_mut`] just before arming).
#[derive(Clone, Debug)]
pub struct KindAggregate {
    kind: AggregateKind,
    contributions: Vec<i64>,
}

impl KindAggregate {
    /// One contribution per processor, indexed by id.
    pub fn new(contributions: Vec<i64>) -> Self {
        KindAggregate { kind: AggregateKind::Ack, contributions }
    }

    /// Selects the fold for the next cycle.
    pub fn set_kind(&mut self, kind: AggregateKind) {
        self.kind = kind;
    }

    /// The currently selected fold.
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// The contribution vector (e.g. to compute expected feedback).
    pub fn contributions(&self) -> &[i64] {
        &self.contributions
    }
}

impl Aggregate for KindAggregate {
    type Value = i64;

    fn contribution(&self, p: ProcId) -> i64 {
        match self.kind {
            AggregateKind::Ack => 1,
            _ => self.contributions[p.index()],
        }
    }

    fn fold(&self, a: i64, b: i64) -> i64 {
        match self.kind {
            AggregateKind::Ack | AggregateKind::Sum => a + b,
            AggregateKind::Max => a.max(b),
            AggregateKind::Min => a.min(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_values_per_kind() {
        let c = [3i64, -1, 4, 1];
        assert_eq!(AggregateKind::Ack.expected(&c), 4);
        assert_eq!(AggregateKind::Sum.expected(&c), 7);
        assert_eq!(AggregateKind::Max.expected(&c), 4);
        assert_eq!(AggregateKind::Min.expected(&c), -1);
    }

    #[test]
    fn kind_aggregate_folds_match_expected() {
        let c = vec![3i64, -1, 4, 1];
        let mut agg = KindAggregate::new(c.clone());
        for kind in AggregateKind::ALL {
            agg.set_kind(kind);
            let mut acc = agg.contribution(ProcId(0));
            for i in 1..c.len() {
                acc = agg.fold(acc, agg.contribution(ProcId(i as u32)));
            }
            assert_eq!(acc, kind.expected(&c), "{kind}");
        }
    }
}
