//! # pif-serve — a long-lived PIF wave service
//!
//! Definition 2 of the paper is a request/response contract: the root
//! broadcasts a message `m`, every processor receives it (\[PIF1\]), and
//! the root collects an acknowledgment from every processor (\[PIF2\]).
//! Snap-stabilization (Definition 1) extends that contract to *streams* of
//! requests under corruption: every cycle **initiated after** a transient
//! fault is correct, with zero stabilization time. This crate turns the
//! one-shot wave machinery of `pif-core` into exactly that serving layer:
//!
//! * [`WaveService`] accepts a stream of broadcast requests (payload +
//!   initiator + aggregate kind) and multiplexes them over per-initiator
//!   PIF instances — one register set per initiator, as in
//!   [`pif_core::multi::MultiInitiator`], each instance carrying a
//!   [`pif_core::wave::WaveOverlay`];
//! * back-to-back cycles are **pipelined through the cleaning phase**: the
//!   next request is armed the moment the root's `F-action` closes the
//!   previous cycle, so the root re-broadcasts as soon as its *own*
//!   cleaning is done, while distant processors may still be cleaning —
//!   the protocol is built for exactly this overlap, and no per-request
//!   state reconstruction ever happens;
//! * initiators are deterministically assigned to **shards** (ordered by
//!   a seeded splitmix key, dealt round-robin so the load stays
//!   balanced), each shard owning a full topology replica and running
//!   on its own worker thread via [`pif_par`]; shards share nothing, so
//!   the served outcomes are bit-identical regardless of how the OS
//!   schedules the workers;
//! * per-initiator request queues are **bounded**, with an explicit
//!   [`ShedPolicy`] and typed [`ServeError`]s for overload;
//! * every request is scored in a [`ledger::DeliveryLedger`] that records
//!   the \[PIF1\]/\[PIF2\] verdicts per request, and **fault hooks** run
//!   register-corruption campaigns mid-flight
//!   ([`pif_daemon::Simulator::corrupt_many`]) so the ledger can assert
//!   the operational snap-stabilization claim: every request initiated
//!   after the fault completes correctly, while requests in flight *at*
//!   the fault are counted separately as casualties.
//!
//! ## Quick example
//!
//! ```
//! use pif_serve::{AggregateKind, Request, ServeConfig, WaveService};
//! use pif_graph::{ProcId, Topology};
//!
//! # fn main() -> Result<(), pif_serve::ServeError> {
//! let config = ServeConfig::new(Topology::Torus { w: 3, h: 3 })
//!     .initiators(vec![ProcId(0), ProcId(4)])
//!     .shards(2)
//!     .seed(7);
//! let mut service = WaveService::new(config)?;
//! for i in 0..10u64 {
//!     let to = ProcId(if i % 2 == 0 { 0 } else { 4 });
//!     service.submit(Request::new(to, i, AggregateKind::Ack))?;
//! }
//! service.run()?;
//! let summary = service.ledger().summary();
//! assert_eq!(summary.completed_ok, 10);
//! assert!(summary.is_clean());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use pif_daemon::SimError;
use pif_graph::{GraphError, ProcId};
use pif_net::NetError;

pub mod ledger;
mod lane;
pub mod report;
pub mod request;
pub mod service;
mod shard;

pub use ledger::{DeliveryLedger, LedgerSummary, RequestOutcome, RequestRecord, ShedCause};
pub use report::ServiceReport;
pub use request::{AggregateKind, KindAggregate, Request, RequestId};
pub use pif_soa::Engine;
pub use service::{
    run_scenario, run_scenario_net, run_scenario_on, spread_initiators, FaultSpec, NetLaneConfig,
    Scenario,
    ServeConfig, ServeDaemon, ShedPolicy, WaveService,
};

/// Errors of the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The configuration listed no initiators.
    NoInitiators,
    /// An initiator appeared twice in the configuration.
    DuplicateInitiator {
        /// The repeated initiator.
        initiator: ProcId,
    },
    /// A request named a processor that is not a configured initiator.
    UnknownInitiator {
        /// The unconfigured processor.
        initiator: ProcId,
    },
    /// A submission hit a full per-initiator queue under
    /// [`ShedPolicy::Reject`] — the caller's backpressure signal.
    QueueFull {
        /// The overloaded initiator.
        initiator: ProcId,
        /// The configured queue bound.
        capacity: usize,
    },
    /// The configured topology failed to build.
    Graph(GraphError),
    /// A simulator error surfaced from a shard worker.
    Sim(SimError),
    /// A net-transport configuration or run error (lossy lane engine).
    Net(NetError),
    /// The operational snap-stabilization claim failed: a request whose
    /// wave was initiated after the last fault did not complete correctly.
    SnapViolation {
        /// The offending request.
        request: RequestId,
        /// Its initiator.
        initiator: ProcId,
    },
    /// A service benchmark report failed to parse or replay (CLI `check`).
    Report(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoInitiators => write!(f, "at least one initiator is required"),
            ServeError::DuplicateInitiator { initiator } => {
                write!(f, "duplicate initiator {initiator}")
            }
            ServeError::UnknownInitiator { initiator } => {
                write!(f, "processor {initiator} is not a configured initiator")
            }
            ServeError::QueueFull { initiator, capacity } => {
                write!(f, "queue for initiator {initiator} is full (capacity {capacity})")
            }
            ServeError::Graph(e) => write!(f, "topology error: {e}"),
            ServeError::Sim(e) => write!(f, "simulator error: {e}"),
            ServeError::Net(e) => write!(f, "net transport error: {e}"),
            ServeError::SnapViolation { request, initiator } => write!(
                f,
                "snap violation: request {} at initiator {initiator} was initiated after the \
                 fault but did not complete correctly",
                request.0
            ),
            ServeError::Report(msg) => write!(f, "report error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        ServeError::Graph(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

impl From<NetError> for ServeError {
    fn from(e: NetError) -> Self {
        ServeError::Net(e)
    }
}
