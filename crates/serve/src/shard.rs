//! A shard: a share-nothing worker owning a group of lanes.
//!
//! Each shard holds full topology replicas (one simulator per lane), its
//! own seeded RNG for interleaving, its own fault schedule, and its own
//! slice of the ledger. Shards never touch shared state while running, so
//! [`Shard::run`] is freely executable on any worker thread — outcomes
//! are a pure function of the shard's seed and its submitted requests,
//! bit-identical regardless of OS scheduling.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::lane::Lane;
use crate::ledger::{RequestRecord, ShedCause};
use crate::request::{Request, RequestId};
use crate::service::{FaultSpec, ShedPolicy};
use crate::ServeError;

/// Splitmix64 finalizer: the deterministic hash behind shard assignment
/// and per-lane seed derivation.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub(crate) struct Shard<M> {
    index: usize,
    lanes: Vec<Lane<M>>,
    rng: StdRng,
    /// Pending campaigns, sorted by descending trigger (popped from the
    /// end as the completion count crosses each threshold).
    pending_faults: Vec<FaultSpec>,
    completed: u64,
    records: Vec<RequestRecord>,
    error: Option<ServeError>,
}

impl<M: Clone + PartialEq + fmt::Debug> Shard<M> {
    pub(crate) fn new(index: usize, lanes: Vec<Lane<M>>, seed: u64) -> Self {
        Shard {
            index,
            lanes,
            rng: StdRng::seed_from_u64(mix(seed ^ (index as u64).wrapping_mul(0x9E37))),
            pending_faults: Vec::new(),
            completed: 0,
            records: Vec::new(),
            error: None,
        }
    }

    pub(crate) fn lanes(&self) -> &[Lane<M>] {
        &self.lanes
    }

    pub(crate) fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Moves the first error out of the shard (the service reports it).
    pub(crate) fn take_error(&mut self) -> Option<ServeError> {
        self.error.take()
    }

    /// Registers a corruption campaign firing once this shard's completed
    /// count reaches the spec's threshold.
    pub(crate) fn schedule_fault(&mut self, spec: FaultSpec) {
        self.pending_faults.push(spec);
        self.pending_faults.sort_by_key(|f| std::cmp::Reverse(f.after_completions));
    }

    /// Routes a request to lane `lane_idx`, applying the queue bound.
    ///
    /// Returns the shed initiator and capacity on rejection.
    pub(crate) fn submit(
        &mut self,
        lane_idx: usize,
        id: RequestId,
        req: Request<M>,
        capacity: usize,
        policy: ShedPolicy,
    ) -> Result<(), (pif_graph::ProcId, usize)> {
        let lane = &mut self.lanes[lane_idx];
        if lane.queue_len() >= capacity {
            match policy {
                ShedPolicy::Reject => return Err((lane.initiator(), capacity)),
                ShedPolicy::DropOldest => {
                    if let Some((old_id, old_req)) = lane.pop_oldest() {
                        let record = self.lanes[lane_idx].shed_record(
                            old_id,
                            old_req.aggregate,
                            ShedCause::Displaced,
                            0,
                        );
                        self.records.push(record);
                    }
                }
            }
        }
        self.lanes[lane_idx].enqueue(id, req);
        Ok(())
    }

    /// Retires lane `lane_idx` (its initiator left the topology): all its
    /// queued and in-flight work is shed with [`ShedCause::Retired`] into
    /// this shard's ledger slice. Returns the number of requests shed.
    pub(crate) fn retire_lane(&mut self, lane_idx: usize) -> u64 {
        let records = self.lanes[lane_idx].retire();
        let shed = records.len() as u64;
        self.records.extend(records);
        shed
    }

    /// Drains every lane: repeatedly picks a uniformly random live lane
    /// and ticks it once, firing fault campaigns as completion thresholds
    /// are crossed. Terminates when no lane has queued or in-flight work.
    pub(crate) fn run(&mut self) {
        loop {
            self.fire_due_faults();
            let live = self.lanes.iter().filter(|l| l.is_live()).count();
            if live == 0 {
                return;
            }
            let pick = self.rng.random_range(0..live);
            let lane_idx = self
                .lanes
                .iter()
                .enumerate()
                .filter(|(_, l)| l.is_live())
                .nth(pick)
                .map(|(i, _)| i)
                .expect("live lane index");
            match self.lanes[lane_idx].tick() {
                Ok(Some(record)) => {
                    self.completed += 1;
                    self.records.push(record);
                }
                Ok(None) => {}
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        }
    }

    fn fire_due_faults(&mut self) {
        while let Some(spec) = self.pending_faults.last() {
            if spec.after_completions > self.completed {
                return;
            }
            let spec = self.pending_faults.pop().expect("pending fault");
            for (li, lane) in self.lanes.iter_mut().enumerate() {
                let seed = mix(spec.seed ^ ((self.index as u64) << 32 | li as u64));
                lane.apply_fault(spec.registers_per_lane, seed);
            }
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for Shard<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shard")
            .field("index", &self.index)
            .field("lanes", &self.lanes)
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}
