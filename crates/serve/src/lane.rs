//! A lane: one initiator's PIF instance, pipelining back-to-back cycles.
//!
//! Each lane owns a full simulator replica (graph + protocol rooted at its
//! initiator + register states), a [`WaveOverlay`] carrying the payload,
//! and a [`MetricsObserver`] — the two observers are fanned out so every
//! step updates both in lockstep. The lane's job is the *pipelining*: the
//! next request is armed the moment the previous cycle's root `F-action`
//! is observed, **not** after the network globally returns to the normal
//! starting configuration. The root's own `C-action` then re-enables its
//! `B-action` while distant processors are still cleaning — exactly the
//! overlap the protocol's questioning mechanism is built to tolerate.
//!
//! Fault epochs: [`Lane::apply_fault`] corrupts `k` registers in place
//! (one [`pif_daemon::Simulator::corrupt_many`]-style batch) and bumps the
//! epoch counter.
//! The in-flight request's `initiated_epoch` is refreshed whenever the
//! overlay's broadcast marker changes — a corrupted wave that *restarts*
//! (fresh root `B-action`) rebroadcasts the same armed payload and counts
//! as initiated in the new epoch, which is precisely the wave the snap
//! claim covers.

use std::collections::VecDeque;
use std::fmt;

use pif_core::initial;
use pif_core::wave::WaveOverlay;
use pif_core::{PifProtocol, PifState};
use pif_daemon::{Daemon, Fanout, MetricsObserver, Observer, PhaseReport};
use pif_graph::{Graph, ProcId};
use pif_net::{NetSim, Transport};
use pif_soa::{Engine, EngineSim};

use crate::ledger::{RequestOutcome, RequestRecord, ShedCause};
use crate::request::{KindAggregate, Request, RequestId};
use crate::service::NetLaneConfig;
use crate::ServeError;

/// Ticks of the net transport one lane step may burn while waiting for
/// an execution before reporting a dry step (heartbeats and deliveries
/// keep flowing inside the burst; only executions advance the overlay).
const NET_BURST: u32 = 4096;

/// Consecutive dry net steps (zero executions in a whole burst) before a
/// lane declares the in-flight request stuck and times it out.
const NET_DRY_LIMIT: u64 = 64;

/// One lane's step engine: the shared-memory backends behind
/// [`EngineSim`], or the lossy message-passing transport. The lane code
/// is engine-agnostic — both variants expose the same states/observer
/// surface; the net variant replaces the daemon with the transport's own
/// seeded scheduler.
#[allow(clippy::large_enum_variant)] // mirrors EngineSim; one LaneSim per lane
pub(crate) enum LaneSim {
    /// Shared-memory engine (`AoS` or `SoA`), driven by the lane's daemon.
    Mem(EngineSim),
    /// Message-passing transport with its seeded internal scheduler.
    Net(Box<NetSim<PifProtocol>>),
}

impl LaneSim {
    fn graph(&self) -> &Graph {
        match self {
            LaneSim::Mem(s) => s.graph(),
            LaneSim::Net(s) => s.graph(),
        }
    }

    fn protocol(&self) -> &PifProtocol {
        match self {
            LaneSim::Mem(s) => s.protocol(),
            LaneSim::Net(s) => s.protocol(),
        }
    }

    fn states(&self) -> &[PifState] {
        match self {
            LaneSim::Mem(s) => s.states(),
            LaneSim::Net(s) => s.states(),
        }
    }

    /// Completed rounds. The net engine has no round notion (there is no
    /// global schedule to partition); it reports executions divided by
    /// the network size — a proxy on the same scale, documented in the
    /// report schema.
    fn rounds(&self) -> u64 {
        match self {
            LaneSim::Mem(s) => s.rounds(),
            LaneSim::Net(s) => s.executions() / s.graph().len() as u64,
        }
    }

    fn corrupt_many(&mut self, corruptions: &[(ProcId, PifState)]) {
        match self {
            LaneSim::Mem(s) => s.corrupt_many(corruptions),
            LaneSim::Net(s) => s.corrupt_many(corruptions),
        }
    }

    /// One lane step: exactly one observed execution on the mem engines;
    /// on the net engine, ticks (deliveries, heartbeats, rejections)
    /// until one execution lands or the burst budget is spent. Returns
    /// whether an execution was observed.
    fn step_observed(
        &mut self,
        daemon: &mut dyn Daemon<PifState>,
        observer: &mut dyn Observer<PifProtocol>,
    ) -> Result<bool, ServeError> {
        match self {
            LaneSim::Mem(s) => {
                s.step_observed(daemon, observer)?;
                Ok(true)
            }
            LaneSim::Net(s) => {
                for _ in 0..NET_BURST {
                    let outcome = s.tick_observed(observer);
                    if matches!(outcome, pif_net::TickOutcome::Executed { .. }) {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
}

/// Bookkeeping for the request currently occupying the lane's wave.
#[derive(Clone, Debug)]
struct InFlight<M> {
    id: RequestId,
    payload: M,
    aggregate: crate::request::AggregateKind,
    /// Overlay step count at arming (turnaround baseline).
    armed_at: u64,
    /// Fault epoch of the wave's last root `B-action`.
    initiated_epoch: u32,
    /// Last observed broadcast marker (to detect wave (re)starts).
    broadcast_step: Option<u64>,
    /// Simulator round count at the last root `B-action`.
    rounds_at_broadcast: u64,
}

/// One initiator's serving state: simulator replica, overlay, metrics,
/// daemon, and the bounded request queue.
pub(crate) struct Lane<M> {
    initiator: ProcId,
    shard: usize,
    sim: LaneSim,
    overlay: WaveOverlay<M, KindAggregate>,
    metrics: MetricsObserver,
    daemon: Box<dyn Daemon<PifState> + Send>,
    queue: VecDeque<(RequestId, Request<M>)>,
    current: Option<InFlight<M>>,
    fault_epoch: u32,
    step_limit: u64,
    /// Consecutive dry net steps (see [`NET_DRY_LIMIT`]); always 0 on
    /// the mem engines.
    dry_steps: u64,
    /// Retired lanes never step again (their initiator left the
    /// topology); see [`Lane::retire`].
    retired: bool,
}

impl<M: Clone + PartialEq + fmt::Debug> Lane<M> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        graph: Graph,
        initiator: ProcId,
        shard: usize,
        contributions: Vec<i64>,
        daemon: Box<dyn Daemon<PifState> + Send>,
        step_limit: u64,
        engine: Engine,
        net: Option<(&NetLaneConfig, u64)>,
        init_states: Option<Vec<PifState>>,
    ) -> Result<Self, ServeError> {
        let n = graph.len();
        let protocol = PifProtocol::new(initiator, &graph);
        // Churn rebuilds carry the surviving replicas' registers over so
        // the new lane starts mid-stream (an *arbitrary* configuration —
        // exactly what snap-stabilization covers); fresh lanes start from
        // the normal starting configuration.
        let init = init_states.unwrap_or_else(|| initial::normal_starting(&graph));
        let metrics = MetricsObserver::for_protocol(&protocol, n);
        let sim = match net {
            None => LaneSim::Mem(
                EngineSim::builder(engine, graph, protocol).states(init).try_build()?,
            ),
            Some((cfg, lane_seed)) => LaneSim::Net(Box::new(
                NetSim::builder(graph, protocol)
                    .states(init)
                    .fault_plan(cfg.plan)
                    .capacity(cfg.capacity)
                    .heartbeat_every(cfg.heartbeat_every)
                    .delivery_bias(cfg.delivery_bias)
                    .seed(lane_seed)
                    .build()?,
            )),
        };
        Ok(Lane {
            initiator,
            shard,
            sim,
            overlay: WaveOverlay::new(n, initiator, KindAggregate::new(contributions)),
            metrics,
            daemon,
            queue: VecDeque::new(),
            current: None,
            fault_epoch: 0,
            step_limit,
            dry_steps: 0,
            retired: false,
        })
    }

    pub(crate) fn initiator(&self) -> ProcId {
        self.initiator
    }

    /// The lane replica's current register states, indexed by processor.
    pub(crate) fn states(&self) -> &[PifState] {
        self.sim.states()
    }

    /// The lane's current fault epoch (corruption campaigns applied).
    pub(crate) fn fault_epoch(&self) -> u32 {
        self.fault_epoch
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn enqueue(&mut self, id: RequestId, req: Request<M>) {
        self.queue.push_back((id, req));
    }

    pub(crate) fn pop_oldest(&mut self) -> Option<(RequestId, Request<M>)> {
        self.queue.pop_front()
    }

    /// A ledger record for a request evicted before ever being armed.
    pub(crate) fn shed_record(
        &self,
        id: RequestId,
        aggregate: crate::request::AggregateKind,
        cause: ShedCause,
        turnaround_steps: u64,
    ) -> RequestRecord {
        RequestRecord {
            id,
            initiator: self.initiator,
            shard: self.shard,
            aggregate,
            outcome: RequestOutcome::Shed { cause },
            initiated_epoch: self.fault_epoch,
            completed_epoch: self.fault_epoch,
            broadcast_steps: 0,
            feedback_steps: 0,
            cycle_steps: 0,
            cycle_rounds: 0,
            turnaround_steps,
            height: 0,
        }
    }

    /// Retires the lane: its initiator is leaving the topology. Every
    /// queued request — and the armed in-flight one, if any — is shed
    /// with [`ShedCause::Retired`] so churn losses stay distinguishable
    /// from fault casualties in the ledger. The lane never steps again.
    pub(crate) fn retire(&mut self) -> Vec<RequestRecord> {
        self.retired = true;
        let mut records = Vec::new();
        if let Some(cur) = self.current.take() {
            let waited = self.overlay.observed_steps().saturating_sub(cur.armed_at);
            records.push(self.shed_record(cur.id, cur.aggregate, ShedCause::Retired, waited));
        }
        while let Some((id, req)) = self.queue.pop_front() {
            records.push(self.shed_record(id, req.aggregate, ShedCause::Retired, 0));
        }
        records
    }

    /// Whether the lane still has work: a wave in flight or queued
    /// requests. Idle lanes are simply not stepped (the simulator keeps
    /// whatever cleaning-phase residue the last cycle left — the next
    /// cycle's wave is built to start from exactly such configurations).
    /// Retired lanes are never live.
    pub(crate) fn is_live(&self) -> bool {
        !self.retired && (self.current.is_some() || !self.queue.is_empty())
    }

    /// Deterministic per-phase metrics accumulated by this lane.
    pub(crate) fn phase_report(&self) -> PhaseReport {
        self.metrics.report()
    }

    /// Corrupts `k` uniformly chosen registers of this lane's replica in
    /// one batch (a transient fault), and opens a new fault epoch.
    pub(crate) fn apply_fault(&mut self, k: usize, seed: u64) {
        let corruptions: Vec<(ProcId, PifState)> = {
            let mut copy = self.sim.states().to_vec();
            initial::corrupt_registers(&mut copy, self.sim.graph(), self.sim.protocol(), k, seed);
            self.sim
                .graph()
                .procs()
                .filter(|p| copy[p.index()] != self.sim.states()[p.index()])
                .map(|p| (p, copy[p.index()]))
                .collect()
        };
        self.sim.corrupt_many(&corruptions);
        self.fault_epoch += 1;
    }

    /// Executes one computation step of this lane, arming the next queued
    /// request first if the lane is idle. Returns a record when the step
    /// closed a request (root `F-action` observed, or budget exhausted).
    pub(crate) fn tick(&mut self) -> Result<Option<RequestRecord>, ServeError> {
        if self.current.is_none() {
            let Some((id, req)) = self.queue.pop_front() else {
                return Ok(None);
            };
            self.dry_steps = 0;
            // Arm immediately — this is the pipelining: the previous
            // cycle's cleaning wave may still be draining through the
            // network, and the root will re-broadcast as soon as its own
            // registers are clean.
            self.overlay.aggregate_mut().set_kind(req.aggregate);
            self.overlay.arm(req.payload.clone());
            self.current = Some(InFlight {
                id,
                payload: req.payload,
                aggregate: req.aggregate,
                armed_at: self.overlay.observed_steps(),
                initiated_epoch: self.fault_epoch,
                broadcast_step: None,
                rounds_at_broadcast: 0,
            });
        }

        let mut fanout = Fanout::new(&mut self.overlay, &mut self.metrics);
        let progressed = self.sim.step_observed(&mut *self.daemon, &mut fanout)?;
        if progressed {
            self.dry_steps = 0;
        } else {
            self.dry_steps += 1;
        }

        let mut cur = self.current.take().expect("in-flight request");

        // A changed broadcast marker means the root (re-)executed its
        // B-action: the wave now in the network was initiated in the
        // current fault epoch (a post-fault restart rebroadcasts the same
        // armed payload — `arm` is not consumed by the B-action).
        if self.overlay.broadcast_step() != cur.broadcast_step {
            cur.broadcast_step = self.overlay.broadcast_step();
            if cur.broadcast_step.is_some() {
                cur.initiated_epoch = self.fault_epoch;
                cur.rounds_at_broadcast = self.sim.rounds();
            }
        }

        // Completion requires both markers: a feedback marker without a
        // broadcast marker is a corruption-induced spurious root F-action,
        // not a cycle (the real B-action will clear it).
        if let (Some(bstep), Some(fstep)) = (cur.broadcast_step, self.overlay.feedback_step()) {
            self.dry_steps = 0;
            return Ok(Some(self.complete(&cur, bstep, fstep)));
        }

        if self.overlay.observed_steps().saturating_sub(cur.armed_at) >= self.step_limit
            || self.dry_steps >= NET_DRY_LIMIT
        {
            self.dry_steps = 0;
            return Ok(Some(RequestRecord {
                id: cur.id,
                initiator: self.initiator,
                shard: self.shard,
                aggregate: cur.aggregate,
                outcome: RequestOutcome::TimedOut,
                initiated_epoch: cur.initiated_epoch,
                completed_epoch: self.fault_epoch,
                broadcast_steps: 0,
                feedback_steps: 0,
                cycle_steps: 0,
                cycle_rounds: 0,
                turnaround_steps: self.overlay.observed_steps().saturating_sub(cur.armed_at),
                height: 0,
            }));
        }

        self.current = Some(cur);
        Ok(None)
    }

    fn complete(&self, cur: &InFlight<M>, bstep: u64, fstep: u64) -> RequestRecord {
        let pif1 = self
            .sim
            .graph()
            .procs()
            .all(|p| self.overlay.message_of(p) == Some(&cur.payload));
        let pif2 = pif1 && self.overlay.all_acknowledged();
        let feedback = self.overlay.root_feedback().copied();
        let max_delivered = self
            .sim
            .graph()
            .procs()
            .filter_map(|p| self.overlay.delivered_step(p))
            .max()
            .unwrap_or(bstep);
        RequestRecord {
            id: cur.id,
            initiator: self.initiator,
            shard: self.shard,
            aggregate: cur.aggregate,
            outcome: RequestOutcome::Completed { pif1, pif2, feedback },
            initiated_epoch: cur.initiated_epoch,
            completed_epoch: self.fault_epoch,
            broadcast_steps: max_delivered.saturating_sub(bstep),
            feedback_steps: fstep.saturating_sub(max_delivered),
            cycle_steps: fstep.saturating_sub(bstep),
            cycle_rounds: self.sim.rounds().saturating_sub(cur.rounds_at_broadcast),
            turnaround_steps: self.overlay.observed_steps().saturating_sub(cur.armed_at),
            height: self.overlay.observed_height(self.sim.states()),
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for Lane<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lane")
            .field("initiator", &self.initiator)
            .field("shard", &self.shard)
            .field("queued", &self.queue.len())
            .field("in_flight", &self.current.is_some())
            .field("fault_epoch", &self.fault_epoch)
            .finish_non_exhaustive()
    }
}
