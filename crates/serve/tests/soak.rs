//! Bounded soak and fault-campaign tests for the wave service.
//!
//! The headline acceptance checks of the serving layer:
//!
//! * a clean soak of ≥ 10 000 requests across ≥ 4 initiators and ≥ 2
//!   shards finishes with a spotless ledger and correct feedback values
//!   for every aggregate kind;
//! * under mid-flight register-corruption campaigns, every request whose
//!   wave was initiated after a fault completes correctly (operational
//!   snap-stabilization), with in-flight casualties counted separately;
//! * backpressure: a full queue rejects (or sheds, per policy) with the
//!   ledger keeping the books;
//! * determinism: same seed ⇒ bit-identical deterministic report fields,
//!   regardless of worker scheduling.

use pif_graph::{ProcId, Topology};
use pif_net::FaultPlan;
use pif_serve::{
    run_scenario, run_scenario_net, run_scenario_on, spread_initiators, AggregateKind, Engine,
    FaultSpec, NetLaneConfig, Request, Scenario, ServeDaemon, ServeConfig, ServeError,
    ServiceReport, ShedPolicy, WaveService,
};

/// 10 000 requests, 4 initiators, 2 shards, pipelined back-to-back: the
/// ledger must be spotless and every feedback value exact.
#[test]
fn clean_soak_ten_thousand_requests() {
    let topology = Topology::Torus { w: 4, h: 4 };
    let n = 16usize;
    let initiators = spread_initiators(n, 4);
    assert_eq!(initiators.len(), 4);
    let config = ServeConfig::new(topology)
        .initiators(initiators.clone())
        .shards(2)
        .seed(11)
        .queue_capacity(10_000);
    let mut service: WaveService<u64> = WaveService::new(config).unwrap();
    let kinds = AggregateKind::ALL;
    for i in 0..10_000u64 {
        let initiator = initiators[(i as usize) % initiators.len()];
        service
            .submit(Request::new(initiator, i, kinds[(i as usize) % kinds.len()]))
            .unwrap();
    }
    service.run().unwrap();

    let ledger = service.ledger();
    let summary = ledger.summary();
    assert_eq!(summary.total, 10_000);
    assert_eq!(summary.completed_ok, 10_000);
    assert!(summary.is_clean(), "{summary:?}");
    assert_eq!(summary.casualties, 0);

    // Spot-check feedback correctness for every kind (contributions
    // default to index + 1).
    let contributions: Vec<i64> = (0..n).map(|i| (i + 1) as i64).collect();
    for record in ledger.records() {
        let pif_serve::RequestOutcome::Completed { feedback, .. } = &record.outcome else {
            panic!("non-completed record in clean soak: {record:?}");
        };
        assert_eq!(
            *feedback,
            Some(record.aggregate.expected(&contributions)),
            "wrong feedback for {record:?}"
        );
    }

    // Both shards actually served work.
    let mut shards_used: Vec<usize> = ledger.records().iter().map(|r| r.shard).collect();
    shards_used.sort_unstable();
    shards_used.dedup();
    assert!(shards_used.len() >= 2, "initiators all hashed to one shard");
}

/// Mid-flight corruption campaigns: the snap claim must hold for every
/// post-fault wave, and nothing may be silently dropped.
#[test]
fn corruption_campaigns_preserve_snap_for_post_fault_requests() {
    for seed in [3u64, 17, 40] {
        let scenario = Scenario {
            topology: Topology::Torus { w: 3, h: 3 },
            initiators: spread_initiators(9, 3),
            shards: 2,
            seed,
            daemon: ServeDaemon::CentralRandom,
            requests: 120,
            fault: Some((20, 10, seed ^ 0xBEEF)),
        };
        let service = run_scenario(&scenario).unwrap();
        let ledger = service.ledger();
        let summary = ledger.summary();
        assert_eq!(summary.total, 120, "seed {seed}");
        assert_eq!(summary.shed, 0);
        // Every record is accounted: ok + bad + timeouts = total.
        assert_eq!(
            summary.completed_ok + summary.completed_bad + summary.timed_out,
            summary.total
        );
        // The operational snap-stabilization claim (Definition 1): every
        // wave initiated after the campaign completed correctly.
        assert!(summary.post_fault_total > 0, "seed {seed}: campaign never fired");
        ledger.assert_snap().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Casualties are possible but bounded by the in-flight population
        // (at most one wave per lane spans the fault, plus timeouts).
        assert!(
            summary.casualties <= 6,
            "seed {seed}: implausibly many casualties ({summary:?})"
        );
    }
}

/// Repeated campaigns (every 15 completions) still leave the post-fault
/// requests of *each* epoch correct.
#[test]
fn repeated_faults_each_epoch_stays_snap() {
    let mut scenario = Scenario {
        topology: Topology::Random { n: 12, p: 0.2, seed: 5 },
        initiators: vec![ProcId(0), ProcId(6)],
        shards: 1,
        seed: 23,
        daemon: ServeDaemon::CentralRandom,
        requests: 90,
        fault: None,
    };
    let config = ServeConfig::new(scenario.topology.clone())
        .initiators(scenario.initiators.clone())
        .shards(scenario.shards)
        .seed(scenario.seed)
        .daemon(scenario.daemon)
        .queue_capacity(100);
    let mut service: WaveService<u64> = WaveService::new(config).unwrap();
    for trigger in [15u64, 30, 45, 60] {
        service.schedule_fault(FaultSpec {
            after_completions: trigger,
            registers_per_lane: 6,
            seed: trigger ^ 0xF00D,
        });
    }
    for i in 0..scenario.requests {
        let to = scenario.initiators[(i as usize) % 2];
        service.submit(Request::new(to, i, AggregateKind::Sum)).unwrap();
    }
    service.run().unwrap();
    scenario.fault = Some((15, 6, 0));
    let ledger = service.ledger();
    ledger.assert_snap().unwrap();
    let summary = ledger.summary();
    assert_eq!(summary.total, 90);
    assert!(summary.post_fault_total > 0);
}

/// Reject policy: the queue bound is a hard backpressure signal.
#[test]
fn full_queue_rejects_with_typed_error() {
    let config = ServeConfig::new(Topology::Chain { n: 4 })
        .initiators(vec![ProcId(0)])
        .queue_capacity(3);
    let mut service: WaveService<u64> = WaveService::new(config).unwrap();
    for i in 0..3 {
        service.submit(Request::new(ProcId(0), i, AggregateKind::Ack)).unwrap();
    }
    match service.submit(Request::new(ProcId(0), 99, AggregateKind::Ack)) {
        Err(ServeError::QueueFull { initiator, capacity }) => {
            assert_eq!(initiator, ProcId(0));
            assert_eq!(capacity, 3);
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // The three accepted requests still serve fine.
    service.run().unwrap();
    assert_eq!(service.ledger().summary().completed_ok, 3);
}

/// `DropOldest` policy: evictions are recorded as shed, newest work wins.
#[test]
fn drop_oldest_sheds_into_the_ledger() {
    let config = ServeConfig::new(Topology::Chain { n: 4 })
        .initiators(vec![ProcId(0)])
        .queue_capacity(2)
        .shed_policy(ShedPolicy::DropOldest);
    let mut service: WaveService<u64> = WaveService::new(config).unwrap();
    for i in 0..5 {
        service.submit(Request::new(ProcId(0), i, AggregateKind::Ack)).unwrap();
    }
    service.run().unwrap();
    let summary = service.ledger().summary();
    assert_eq!(summary.total, 5);
    assert_eq!(summary.shed, 3);
    assert_eq!(summary.completed_ok, 2);
    assert!(summary.is_clean());
    // The survivors are the two newest submissions.
    let survivors: Vec<u64> = service
        .ledger()
        .records()
        .iter()
        .filter(|r| r.is_correct())
        .map(|r| r.id.0)
        .collect();
    assert_eq!(survivors, vec![3, 4]);
}

/// Unknown and duplicate initiators are rejected at the right layer.
#[test]
fn config_validation_errors() {
    let base = || ServeConfig::new(Topology::Chain { n: 4 });
    assert!(matches!(
        WaveService::<u64>::new(base()),
        Err(ServeError::NoInitiators)
    ));
    assert!(matches!(
        WaveService::<u64>::new(base().initiators(vec![ProcId(1), ProcId(1)])),
        Err(ServeError::DuplicateInitiator { initiator: ProcId(1) })
    ));
    assert!(matches!(
        WaveService::<u64>::new(base().initiators(vec![ProcId(9)])),
        Err(ServeError::UnknownInitiator { initiator: ProcId(9) })
    ));
    let mut svc = WaveService::<u64>::new(base().initiators(vec![ProcId(0)])).unwrap();
    assert!(matches!(
        svc.submit(Request::new(ProcId(2), 0, AggregateKind::Ack)),
        Err(ServeError::UnknownInitiator { initiator: ProcId(2) })
    ));
}

/// Same seed ⇒ bit-identical deterministic report fields; different seed
/// ⇒ (with randomized daemons) different trajectories.
#[test]
fn reports_replay_deterministically_from_their_seed() {
    let scenario = |seed: u64| Scenario {
        topology: Topology::Torus { w: 3, h: 3 },
        initiators: spread_initiators(9, 3),
        shards: 2,
        seed,
        daemon: ServeDaemon::CentralRandom,
        requests: 60,
        fault: Some((12, 6, seed)),
    };
    let run = |s: &Scenario| ServiceReport::capture(&run_scenario(s).unwrap(), s.fault);
    let a = run(&scenario(7));
    let b = run(&scenario(7));
    assert!(a.deterministic_eq(&b));
    // Round-trip through the recorded envelope, then replay from the
    // reconstructed scenario — the `pif-serve check` path.
    let text = pif_serve::report::envelope(7, std::slice::from_ref(&a));
    let (_, parsed) = pif_serve::report::parse_envelope(&text).unwrap();
    let replayed = run(&parsed[0].scenario().unwrap());
    assert!(replayed.deterministic_eq(&a));
    let c = run(&scenario(8));
    assert!(!c.deterministic_eq(&a), "different seeds should diverge");
}

/// Both step engines serve the same scenario bit-identically: the `SoA`
/// backend must be observably indistinguishable from the `AoS` one all the
/// way up through lanes, shards, the ledger, and fault campaigns.
#[test]
fn soa_engine_serves_identically_to_aos() {
    for (daemon, fault) in [
        (ServeDaemon::Synchronous, None),
        (ServeDaemon::CentralRandom, Some((12u64, 6usize, 0x5EED_u64))),
        (ServeDaemon::DistributedRandom, None),
    ] {
        let scenario = Scenario {
            topology: Topology::Torus { w: 3, h: 3 },
            initiators: spread_initiators(9, 3),
            shards: 2,
            seed: 19,
            daemon,
            requests: 60,
            fault,
        };
        let aos = run_scenario_on(&scenario, Engine::Aos).unwrap();
        let soa = run_scenario_on(&scenario, Engine::Soa).unwrap();
        let ra = ServiceReport::capture(&aos, scenario.fault);
        let rs = ServiceReport::capture(&soa, scenario.fault);
        assert!(
            ra.deterministic_eq(&rs),
            "{daemon:?}: engines diverged\naos: {ra:?}\nsoa: {rs:?}"
        );
        assert_eq!(aos.ledger().records(), soa.ledger().records(), "{daemon:?}");
        soa.ledger().assert_snap().unwrap();
    }
}

/// Fault-free net transport: the serving contract is unchanged when
/// every lane runs over `pif_net::NetSim` instead of shared memory.
#[test]
fn net_transport_serves_cleanly_fault_free() {
    let scenario = Scenario {
        topology: Topology::Torus { w: 3, h: 3 },
        initiators: spread_initiators(9, 3),
        shards: 2,
        seed: 41,
        daemon: ServeDaemon::CentralRandom,
        requests: 60,
        fault: None,
    };
    let service = run_scenario_net(&scenario, NetLaneConfig::default()).unwrap();
    let summary = service.ledger().summary();
    assert_eq!(summary.total, 60);
    assert_eq!(summary.completed_ok, 60);
    assert!(summary.is_clean(), "{summary:?}");
}

/// Lossy net transport: drops, duplicates, reorders, and corrupt frames
/// on every link — every request must still complete correctly (the
/// heartbeat resend masks losses; CRC masks corruption), and same seed
/// must replay bit-identically.
#[test]
fn net_transport_serves_under_lossy_links_and_replays() {
    let plan = FaultPlan::fault_free()
        .drop_rate(0.10)
        .duplicate_rate(0.05)
        .reorder_rate(0.20)
        .corrupt_rate(0.02);
    let net = NetLaneConfig { plan, ..NetLaneConfig::default() };
    let scenario = Scenario {
        topology: Topology::Torus { w: 3, h: 3 },
        initiators: spread_initiators(9, 3),
        shards: 2,
        seed: 43,
        daemon: ServeDaemon::CentralRandom,
        requests: 40,
        fault: None,
    };
    let run = || ServiceReport::capture(&run_scenario_net(&scenario, net).unwrap(), None);
    let a = run();
    assert_eq!(a.summary.completed_ok, 40, "{:?}", a.summary);
    assert!(a.summary.is_clean(), "{:?}", a.summary);
    let b = run();
    assert!(a.deterministic_eq(&b), "lossy net runs must replay from the seed");
}

/// Register-corruption campaigns over the lossy transport: the snap
/// claim still holds for every post-fault wave.
#[test]
fn net_transport_register_faults_stay_snap() {
    let plan = FaultPlan::fault_free().drop_rate(0.05).reorder_rate(0.10);
    let net = NetLaneConfig { plan, ..NetLaneConfig::default() };
    let scenario = Scenario {
        topology: Topology::Torus { w: 3, h: 3 },
        initiators: spread_initiators(9, 3),
        shards: 2,
        seed: 47,
        daemon: ServeDaemon::CentralRandom,
        requests: 60,
        fault: Some((12, 8, 0xD00D)),
    };
    let service = run_scenario_net(&scenario, net).unwrap();
    let ledger = service.ledger();
    let summary = ledger.summary();
    assert_eq!(summary.total, 60);
    assert!(summary.post_fault_total > 0, "campaign never fired");
    ledger.assert_snap().unwrap();
}

/// An invalid fault plan surfaces as a typed `ServeError::Net` at
/// construction instead of a panic inside a worker.
#[test]
fn net_transport_invalid_plan_is_a_typed_error() {
    let net = NetLaneConfig {
        plan: FaultPlan::fault_free().drop_rate(1.5),
        ..NetLaneConfig::default()
    };
    let scenario = Scenario {
        topology: Topology::Chain { n: 4 },
        initiators: vec![ProcId(0)],
        shards: 1,
        seed: 1,
        daemon: ServeDaemon::CentralRandom,
        requests: 1,
        fault: None,
    };
    match run_scenario_net(&scenario, net) {
        Err(ServeError::Net(e)) => {
            assert!(e.to_string().contains("drop"), "unexpected net error: {e}");
        }
        other => panic!("expected ServeError::Net, got {other:?}"),
    }
}

/// The distributed-random daemon (a true distributed schedule) also
/// serves correctly.
#[test]
fn distributed_daemon_serves_correctly() {
    let scenario = Scenario {
        topology: Topology::Ring { n: 8 },
        initiators: vec![ProcId(0), ProcId(4)],
        shards: 2,
        seed: 31,
        daemon: ServeDaemon::DistributedRandom,
        requests: 40,
        fault: None,
    };
    let service = run_scenario(&scenario).unwrap();
    let summary = service.ledger().summary();
    assert_eq!(summary.completed_ok, 40);
    assert!(summary.is_clean());
}
