//! Cross-checks between the *declared* interference graph and the
//! *dynamic* locality the rest of the workspace relies on.
//!
//! Two consumers bake the same assumption into their hot paths: the
//! simulator's incremental enabled-set bookkeeping (re-evaluating only
//! `p ∪ N(p)` after `p` moves) and the exhaustive checker's guard memo
//! (`pif-verify`'s `EnabledMemo` keys guard verdicts by configuration
//! and fills successors incrementally). Both are sound exactly when a
//! move at `p` cannot change any enabled set outside `p`'s closed
//! neighborhood — which is the graph-theoretic content of the
//! interference graph having only self and one-link edges. Here we (a)
//! pin the declared graph's shape and (b) hammer the dynamic invariant
//! directly over fuzzed configurations.

use pif_analyze::{analyze, DomainModel, InterferenceGraph};
use pif_core::{initial, protocol as pif_actions, PifProtocol};
use pif_daemon::{ActionId, Protocol, View};
use pif_graph::{generators, Graph, ProcId};

#[test]
fn pif_interference_graph_has_the_paper_shape() {
    let g = generators::chain(2).unwrap();
    let proto = PifProtocol::new(ProcId(0), &g);
    let graph = InterferenceGraph::from_protocol(&proto, proto.registers());

    // Every guard except B-action's evaluates Normal(p) over the entire
    // neighbor state (declared as the wildcard read), and every action
    // writes at least one register some neighbor guard reads: all 7 × 7
    // ordered action pairs interfere across a link.
    assert!(graph.neighbor_complete(7));

    // Own-processor interference is sparser and pins the guard
    // structure: Fok-action writes only `fok`, which B-action's own
    // reads (just `phase`) do not include...
    assert!(!graph.has_edge("Fok-action", "B-action", false));
    // ...while every phase-writing action feeds every guard that
    // dispatches on the own phase.
    for writer in ["B-action", "F-action", "C-action", "B-correction"] {
        assert!(
            graph.has_edge(writer, "B-action", false),
            "{writer} writes `phase`, which B-action's guard reads"
        );
    }
    // Count-action writes count+fok: no own edge into B-action either.
    assert!(!graph.has_edge("Count-action", "B-action", false));
}

/// Asserts that executing `action` at `p` leaves the enabled sets of all
/// processors outside `p ∪ N(p)` untouched.
fn assert_move_is_local(
    graph: &Graph,
    proto: &PifProtocol,
    states: &mut [pif_core::PifState],
    p: ProcId,
    action: ActionId,
) {
    let enabled_of = |states: &[pif_core::PifState], q: ProcId| {
        let mut out = Vec::new();
        proto.enabled_actions(View::new(graph, states, q), &mut out);
        out
    };
    let before: Vec<_> = graph.procs().map(|q| enabled_of(states, q)).collect();
    let new_state = proto.execute(View::new(graph, states, p), action);
    let old_state = std::mem::replace(&mut states[p.index()], new_state);
    for q in graph.procs() {
        let in_nbhd = q == p || graph.neighbor_slice(p).contains(&q);
        if !in_nbhd {
            assert_eq!(
                before[q.index()],
                enabled_of(states, q),
                "move {action} at {p} changed the enabled set of {q}, which is \
                 outside the closed neighborhood — the simulator's incremental \
                 bookkeeping and the verify memo would both be unsound"
            );
        }
    }
    states[p.index()] = old_state;
}

#[test]
fn moves_only_disturb_the_closed_neighborhood() {
    // chain(4) and ring(4) both have processors at distance 2, so a
    // locality violation has somewhere to show up.
    for g in [generators::chain(4).unwrap(), generators::ring(4).unwrap()] {
        let proto = PifProtocol::new(ProcId(0), &g);
        let mut checked = 0u32;
        for seed in 0..200 {
            let mut states = initial::random_config(&g, &proto, seed);
            for p in g.procs() {
                let mut enabled = Vec::new();
                proto.enabled_actions(View::new(&g, &states, p), &mut enabled);
                for action in enabled {
                    assert_move_is_local(&g, &proto, &mut states, p, action);
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "fuzz must actually exercise moves on {g}");
    }
}

#[test]
fn declared_graph_predicts_the_dynamic_locality_radius() {
    // The dynamic invariant above is implied by the declared graph as
    // long as AN003/AN006 hold (declared ⊇ observed, reads are local).
    // Analyze certifies those premises on the same protocol family, so
    // the two tests together close the loop: spec shape → memo safety.
    let g = generators::chain(2).unwrap();
    let proto = PifProtocol::new(ProcId(0), &g);
    let a = analyze(&proto, &g, "pif", "chain2");
    assert!(a.clean(), "premises for the locality argument: {:#?}", a.diagnostics);
    assert!(a.interference.edges.iter().all(|e| {
        // Only self-edges and one-link edges exist by construction; the
        // claim with content is that nothing forced us to add more.
        !e.registers.is_empty()
    }));
}

#[test]
fn correction_actions_feed_the_wave_restart_guards() {
    // The paper's error-correction argument needs corrections to
    // *unblock* the wave: both corrections write `phase`, which every
    // wave guard reads at the neighbor scope. Pin those edges.
    let g = generators::chain(2).unwrap();
    let proto = PifProtocol::new(ProcId(0), &g);
    let graph = InterferenceGraph::from_protocol(&proto, proto.registers());
    let b_correction = proto.action_names()[pif_actions::B_CORRECTION.index()];
    let f_correction = proto.action_names()[pif_actions::F_CORRECTION.index()];
    for correction in [b_correction, f_correction] {
        for wave in ["B-action", "F-action", "C-action"] {
            assert!(
                graph.has_edge(correction, wave, true),
                "{correction} must interfere with {wave} across a link"
            );
        }
    }
}
