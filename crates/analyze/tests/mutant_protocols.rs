//! Negative tests: the analyzer must flag each mutant protocol with the
//! diagnostic code matching its injected bug class — and with *only*
//! findings attributable to that bug, so a diagnostic is evidence, not
//! noise.

use pif_analyze::mutants::{NeighborWriteSpecPif, UnderReadEcho, WidenedFeedbackPif};
use pif_analyze::{analyze, report, Code};
use pif_graph::{generators, ProcId};

#[test]
fn widened_feedback_breaks_priority_determinism() {
    let g = generators::chain(2).unwrap();
    let mutant = WidenedFeedbackPif::new(ProcId(0), &g);
    let a = analyze(&mutant, &g, "pif-widened-feedback", "chain2");
    let an002: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN002).collect();
    assert!(
        !an002.is_empty(),
        "widened F-guard must be caught as guard nondeterminism: {:#?}",
        a.diagnostics
    );
    // The witness pair is the broadened F-action against a same-class
    // (priority 1) wave action.
    for d in &an002 {
        let pair = (d.action.as_str(), d.other_action.as_deref());
        assert!(
            pair.0 == "F-action" || pair.1 == Some("F-action"),
            "unexpected AN002 pair: {pair:?}"
        );
        assert!(d.witness.is_some(), "AN002 must carry a witness view");
    }
    // The mutation widens one guard; it does not misdeclare writes or
    // reads, so no other code may fire.
    assert!(
        a.diagnostics.iter().all(|d| d.code == Code::AN002),
        "only AN002 expected: {:#?}",
        a.diagnostics
    );
}

#[test]
fn neighbor_write_spec_violates_write_locality() {
    let g = generators::chain(2).unwrap();
    let mutant = NeighborWriteSpecPif::new(ProcId(0), &g);
    let a = analyze(&mutant, &g, "pif-neighbor-write-spec", "chain2");
    let an001: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN001).collect();
    assert_eq!(an001.len(), 1, "diagnostics: {:#?}", a.diagnostics);
    let d = an001[0];
    assert_eq!(d.action, "Count-action");
    assert_eq!(d.register.as_deref(), Some("neighbor.count"));
    // The check is static: the mutant's behavior is identical to the
    // correct protocol, so nothing dynamic may fire.
    assert!(a.diagnostics.iter().all(|d| d.code == Code::AN001));
}

#[test]
fn under_read_echo_is_caught_by_differential_probing() {
    let g = generators::chain(2).unwrap();
    let mutant = UnderReadEcho::new(ProcId(0), 7);
    let a = analyze(&mutant, &g, "echo-under-read", "chain2");
    let an003: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN003).collect();
    assert!(!an003.is_empty(), "diagnostics: {:#?}", a.diagnostics);
    for d in &an003 {
        assert_eq!(d.action, "B-action");
        assert_eq!(
            d.register.as_deref(),
            Some("neighbor.val"),
            "the hidden read is the parent's value register"
        );
    }
    assert!(a.diagnostics.iter().all(|d| d.code == Code::AN003));
}

#[test]
fn hidden_read_shrinks_the_declared_interference_graph() {
    // The point of AN003: an under-declared read-set makes the static
    // interference graph lose a real write→read edge. Demonstrate the
    // lost edge so the soundness direction (declared ⊇ observed) is
    // visibly load-bearing.
    use pif_analyze::InterferenceGraph;
    use pif_baselines::echo::EchoProtocol;

    let honest = EchoProtocol::new(ProcId(0), 7);
    let lying = UnderReadEcho::new(ProcId(0), 7);
    let regs = ["phase", "par", "val"];
    let honest_graph = InterferenceGraph::from_protocol(&honest, &regs);
    let lying_graph = InterferenceGraph::from_protocol(&lying, &regs);
    let carries_val = |g: &InterferenceGraph| {
        g.edges.iter().any(|e| {
            e.src == "B-action"
                && e.dst == "B-action"
                && e.across_link
                && e.registers.iter().any(|r| r == "val")
        })
    };
    assert!(carries_val(&honest_graph));
    assert!(
        !carries_val(&lying_graph),
        "the under-declared spec must lose the val-carrying dependence \
         (the edge survives only through `phase`)"
    );
}

#[test]
fn mutant_report_carries_codes_and_exit_contract() {
    // The gate consumes this exact shape: every mutant run must carry at
    // least one diagnostic, with its code string in the report.
    let g = generators::chain(2).unwrap();
    let runs = vec![
        analyze(
            &WidenedFeedbackPif::new(ProcId(0), &g),
            &g,
            "pif-widened-feedback",
            "chain2",
        ),
        analyze(
            &NeighborWriteSpecPif::new(ProcId(0), &g),
            &g,
            "pif-neighbor-write-spec",
            "chain2",
        ),
        analyze(&UnderReadEcho::new(ProcId(0), 7), &g, "echo-under-read", "chain2"),
    ];
    let text = report::render(&runs);
    let doc = pif_daemon::json::parse(&text).unwrap();
    assert!(doc.get("total_diagnostics").and_then(pif_daemon::json::Json::as_u64).unwrap() >= 3);
    let expected = ["AN002", "AN001", "AN003"];
    let parsed_runs = doc.get("runs").and_then(|j| j.as_array()).unwrap();
    assert_eq!(parsed_runs.len(), 3);
    for (run, code) in parsed_runs.iter().zip(expected) {
        let diags = run.get("diagnostics").and_then(|j| j.as_array()).unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.get("code").and_then(|j| j.as_str()) == Some(code)),
            "run {:?} missing {code}",
            run.get("protocol")
        );
    }
}
