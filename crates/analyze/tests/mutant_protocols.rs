//! Negative tests: the analyzer must flag each mutant protocol with the
//! diagnostic code matching its injected bug class — and with *only*
//! findings attributable to that bug, so a diagnostic is evidence, not
//! noise. One mutant per check: AN001–AN003 for the per-view stage,
//! AN008–AN011 for the abstract/derived stage.

use pif_analyze::mutants::{
    CyclicCorrectionPif, DisabledFokPif, NeighborWriteSpecPif, OverclaimedInterferencePif,
    SkipCleaningPif, UnderReadEcho, WidenedCorrectionPif,
};
use pif_analyze::{analyze, report, Code};
use pif_graph::{generators, ProcId};

#[test]
fn widened_correction_breaks_priority_determinism() {
    let g = generators::chain(2).unwrap();
    let mutant = WidenedCorrectionPif::new(ProcId(0), &g);
    let a = analyze(&mutant, &g, "pif-widened-correction", "chain2");
    let an002: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN002).collect();
    assert!(
        !an002.is_empty(),
        "widened F-correction guard must be caught as guard nondeterminism: {:#?}",
        a.diagnostics
    );
    // The witness pair is the broadened F-correction against the
    // same-class (priority 0) B-correction.
    for d in &an002 {
        let pair = (d.action.as_str(), d.other_action.as_deref());
        assert!(
            pair.0 == "F-correction" || pair.1 == Some("F-correction"),
            "unexpected AN002 pair: {pair:?}"
        );
        assert!(d.witness.is_some(), "AN002 must carry a witness view");
    }
    // The mutation widens one guard; it does not misdeclare writes or
    // reads, and the extra correction edge B → C is phase-legal and only
    // shortens correction paths, so no other code may fire.
    assert!(
        a.diagnostics.iter().all(|d| d.code == Code::AN002),
        "only AN002 expected: {:#?}",
        a.diagnostics
    );
}

#[test]
fn neighbor_write_spec_violates_write_locality() {
    let g = generators::chain(2).unwrap();
    let mutant = NeighborWriteSpecPif::new(ProcId(0), &g);
    let a = analyze(&mutant, &g, "pif-neighbor-write-spec", "chain2");
    let an001: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN001).collect();
    assert_eq!(an001.len(), 1, "diagnostics: {:#?}", a.diagnostics);
    let d = an001[0];
    assert_eq!(d.action, "Count-action");
    assert_eq!(d.register.as_deref(), Some("neighbor.count"));
    // The check is static: the mutant's behavior is identical to the
    // correct protocol, so nothing dynamic may fire.
    assert!(a.diagnostics.iter().all(|d| d.code == Code::AN001));
}

#[test]
fn under_read_echo_is_caught_by_differential_probing() {
    let g = generators::chain(2).unwrap();
    let mutant = UnderReadEcho::new(ProcId(0), 7);
    let a = analyze(&mutant, &g, "echo-under-read", "chain2");
    let an003: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN003).collect();
    assert!(!an003.is_empty(), "diagnostics: {:#?}", a.diagnostics);
    for d in &an003 {
        assert_eq!(d.action, "B-action");
        assert_eq!(
            d.register.as_deref(),
            Some("neighbor.val"),
            "the hidden read is the parent's value register"
        );
    }
    // AN010's observed-coverage stage must NOT echo the same root cause:
    // once AN003 establishes the declarations are unsound, the derived
    // graph is known-bad for that same reason and stays un-reported.
    assert!(
        a.diagnostics.iter().all(|d| d.code == Code::AN003),
        "only AN003 expected: {:#?}",
        a.diagnostics
    );
}

#[test]
fn hidden_read_shrinks_the_declared_interference_graph() {
    // The point of AN003: an under-declared read-set makes the static
    // interference graph lose a real write→read edge. Demonstrate the
    // lost edge so the soundness direction (declared ⊇ observed) is
    // visibly load-bearing.
    use pif_analyze::InterferenceGraph;
    use pif_baselines::echo::EchoProtocol;

    let honest = EchoProtocol::new(ProcId(0), 7);
    let lying = UnderReadEcho::new(ProcId(0), 7);
    let regs = ["phase", "par", "val"];
    let honest_graph = InterferenceGraph::from_protocol(&honest, &regs);
    let lying_graph = InterferenceGraph::from_protocol(&lying, &regs);
    let carries_val = |g: &InterferenceGraph| {
        g.edges.iter().any(|e| {
            e.src == "B-action"
                && e.dst == "B-action"
                && e.across_link
                && e.registers.iter().any(|r| r == "val")
        })
    };
    assert!(carries_val(&honest_graph));
    assert!(
        !carries_val(&lying_graph),
        "the under-declared spec must lose the val-carrying dependence \
         (the edge survives only through `phase`)"
    );
}

#[test]
fn skip_cleaning_breaks_phase_order() {
    let g = generators::chain(2).unwrap();
    let mutant = SkipCleaningPif::new(ProcId(0), &g);
    let a = analyze(&mutant, &g, "pif-skip-cleaning", "chain2");
    let an008: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN008).collect();
    assert!(
        !an008.is_empty(),
        "re-broadcasting C-action must violate the B→F→C order: {:#?}",
        a.diagnostics
    );
    for d in &an008 {
        assert_eq!(d.action, "C-action");
        assert!(d.witness.is_some(), "AN008 must carry the abstract edge");
    }
    // Only the statement changed — guards, specs and corrections are the
    // paper's, so no other code may fire.
    assert!(
        a.diagnostics.iter().all(|d| d.code == Code::AN008),
        "only AN008 expected: {:#?}",
        a.diagnostics
    );
}

#[test]
fn cyclic_correction_defeats_the_ranking_certificate() {
    let g = generators::chain(2).unwrap();
    let mutant = CyclicCorrectionPif::new(ProcId(0), &g);
    let a = analyze(&mutant, &g, "pif-cyclic-correction", "chain2");
    let an009: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN009).collect();
    assert!(
        !an009.is_empty(),
        "fok-flipping correction must be caught as a correction livelock: {:#?}",
        a.diagnostics
    );
    assert!(
        an009.iter().any(|d| d.message.contains("cycle")),
        "the finding must name the cycle: {an009:#?}"
    );
    // The flipped register is declared, the B → B edge is phase-legal
    // for a correction, and guards are untouched: only AN009 may fire.
    assert!(
        a.diagnostics.iter().all(|d| d.code == Code::AN009),
        "only AN009 expected: {:#?}",
        a.diagnostics
    );
    assert!(!a.ranking.certified, "no ranking certificate may be synthesized");
}

#[test]
fn overclaimed_premise_fails_derived_containment() {
    let g = generators::chain(2).unwrap();
    let mutant = OverclaimedInterferencePif::new(ProcId(0), &g);
    let a = analyze(&mutant, &g, "pif-overclaimed-interference", "chain2");
    let an010: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN010).collect();
    assert_eq!(an010.len(), 1, "diagnostics: {:#?}", a.diagnostics);
    let d = an010[0];
    assert_eq!(d.action, "Fok-action");
    assert_eq!(d.other_action.as_deref(), Some("B-action"));
    // The runnable protocol is the unmodified PIF — the lie lives purely
    // in the advertised premise, so nothing else may fire.
    assert!(a.diagnostics.iter().all(|d| d.code == Code::AN010));
}

#[test]
fn disabled_fok_is_reported_as_dead_action() {
    let g = generators::chain(2).unwrap();
    let mutant = DisabledFokPif::new(ProcId(0), &g);
    let a = analyze(&mutant, &g, "pif-disabled-fok", "chain2");
    let an011: Vec<_> =
        a.diagnostics.iter().filter(|d| d.code == Code::AN011).collect();
    assert_eq!(an011.len(), 1, "diagnostics: {:#?}", a.diagnostics);
    assert_eq!(an011[0].action, "Fok-action");
    // An action that never fires cannot trip any dynamic check: only
    // AN011 may fire.
    assert!(a.diagnostics.iter().all(|d| d.code == Code::AN011));
}

#[test]
fn mutant_report_carries_codes_and_exit_contract() {
    // The gate consumes this exact shape: every mutant run must carry at
    // least one diagnostic, with its code string in the report.
    let g = generators::chain(2).unwrap();
    let runs = vec![
        analyze(
            &WidenedCorrectionPif::new(ProcId(0), &g),
            &g,
            "pif-widened-correction",
            "chain2",
        ),
        analyze(
            &NeighborWriteSpecPif::new(ProcId(0), &g),
            &g,
            "pif-neighbor-write-spec",
            "chain2",
        ),
        analyze(&UnderReadEcho::new(ProcId(0), 7), &g, "echo-under-read", "chain2"),
        analyze(&SkipCleaningPif::new(ProcId(0), &g), &g, "pif-skip-cleaning", "chain2"),
        analyze(
            &CyclicCorrectionPif::new(ProcId(0), &g),
            &g,
            "pif-cyclic-correction",
            "chain2",
        ),
        analyze(
            &OverclaimedInterferencePif::new(ProcId(0), &g),
            &g,
            "pif-overclaimed-interference",
            "chain2",
        ),
        analyze(&DisabledFokPif::new(ProcId(0), &g), &g, "pif-disabled-fok", "chain2"),
    ];
    let text = report::render(&runs);
    let doc = pif_daemon::json::parse(&text).unwrap();
    assert!(doc.get("total_diagnostics").and_then(pif_daemon::json::Json::as_u64).unwrap() >= 7);
    let expected = ["AN002", "AN001", "AN003", "AN008", "AN009", "AN010", "AN011"];
    let parsed_runs = doc.get("runs").and_then(|j| j.as_array()).unwrap();
    assert_eq!(parsed_runs.len(), 7);
    for (run, code) in parsed_runs.iter().zip(expected) {
        let diags = run.get("diagnostics").and_then(|j| j.as_array()).unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.get("code").and_then(|j| j.as_str()) == Some(code)),
            "run {:?} missing {code}",
            run.get("protocol")
        );
    }
}
