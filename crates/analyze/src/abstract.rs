//! Abstract phase-machine extraction (the substrate of AN008, AN009 and
//! AN011).
//!
//! For each processor role — root, internal (degree ≥ 2), leaf
//! (degree 1) — the builder enumerates every closed-neighborhood view
//! over the declared register domains (the same "any initial
//! configuration" quantification the per-view checks use) and collapses
//! each local state to a finite **abstract state**:
//!
//! * the projected `phase` register (the B→F→C wave position),
//! * the values of every *small-domain* register (at most two distinct
//!   projected values across all processors — boolean predicates like
//!   PIF's `Fok` flag; value-carrying registers are abstracted away),
//! * the [`locally_normal`](pif_daemon::Protocol::locally_normal) bit of
//!   the witnessing view (a relational predicate: the same local state
//!   can be normal in one environment and abnormal in another — the
//!   abstraction keeps both).
//!
//! Every enabled action contributes an abstract transition labeled with
//! its [`ActionId`]; the result is an existential (may) abstraction:
//! every concrete transition of the analyzed instance has an abstract
//! counterpart, so a property checked over **all** abstract edges holds
//! of all concrete ones. The two checks here consume exactly that
//! direction: AN008 constrains every wave edge to the paper's phase
//! cycle, and AN011 flags actions labeling no edge at all (never
//! enabled in any reachable abstract state). AN009 lives in
//! [`crate::ranking`], which walks the correction-labeled edges.

use std::collections::HashMap;
use std::collections::HashSet;

use pif_daemon::{ActionId, PhaseTag, View};
use pif_graph::{Graph, ProcId};

use crate::{Code, Diagnostic, DomainModel};

/// Projected phase values, fixed by the [`DomainModel::project`]
/// convention all analyzable protocols share: `phase` maps B→0, F→1,
/// C→2.
pub const PHASE_B: u64 = 0;
/// Feedback phase projection value.
pub const PHASE_F: u64 = 1;
/// Cleaning (clean) phase projection value.
pub const PHASE_C: u64 = 2;

/// Human-readable name of a projected phase value.
pub fn phase_name(v: u64) -> &'static str {
    match v {
        PHASE_B => "B",
        PHASE_F => "F",
        PHASE_C => "C",
        _ => "?",
    }
}

/// A processor role; the abstract machine is extracted once per role
/// actually present on the analyzed topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// The distinguished root processor.
    Root,
    /// A non-root processor of degree ≥ 2.
    Internal,
    /// A non-root processor of degree 1.
    Leaf,
}

impl Role {
    /// Stable lowercase name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            Role::Root => "root",
            Role::Internal => "internal",
            Role::Leaf => "leaf",
        }
    }
}

/// One abstract state: phase × small-domain registers × normality.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AbsState {
    /// Projected `phase` value ([`PHASE_B`]/[`PHASE_F`]/[`PHASE_C`]).
    pub phase: u64,
    /// Values of the retained small-domain registers, in
    /// [`AbstractMachine::kept`] order.
    pub regs: Vec<u64>,
    /// Whether `locally_normal` held in the witnessing view.
    pub normal: bool,
}

/// One abstract transition, labeled by the concrete action.
#[derive(Clone, Debug)]
pub struct AbsEdge {
    /// Source abstract state (index into [`RoleMachine::states`]).
    pub from: usize,
    /// Target abstract state (index into [`RoleMachine::states`]).
    pub to: usize,
    /// The action whose execution witnessed the transition.
    pub action: ActionId,
    /// A processor at which the transition was witnessed.
    pub witness_proc: ProcId,
}

/// The abstract transition system of one processor role.
#[derive(Clone, Debug)]
pub struct RoleMachine {
    /// The role this machine abstracts.
    pub role: Role,
    /// Abstract states, in first-witnessed order (deterministic).
    pub states: Vec<AbsState>,
    /// Abstract transitions (deduplicated on `(from, action, to)`).
    pub edges: Vec<AbsEdge>,
}

/// Per-role machine sizes for the JSON report.
#[derive(Clone, Debug)]
pub struct RoleSummary {
    /// The role.
    pub role: Role,
    /// Number of abstract states.
    pub states: usize,
    /// Number of abstract transitions.
    pub edges: usize,
}

/// The full abstraction of one protocol instance: one machine per role
/// present on the topology, plus the liveness ledger for AN011.
#[derive(Clone, Debug)]
pub struct AbstractMachine {
    /// Machines in role order (root, internal, leaf; absent roles
    /// omitted).
    pub machines: Vec<RoleMachine>,
    /// Indices (into `registers()`) of the retained small-domain
    /// registers, excluding `phase`.
    pub kept: Vec<usize>,
    /// Index of the `phase` register in the projection.
    pub phase_reg: usize,
    /// `live[a]` — action `a` was enabled in at least one enumerated
    /// view at some processor.
    pub live: Vec<bool>,
    /// Total concrete views enumerated while building.
    pub views: u64,
}

impl AbstractMachine {
    /// Per-role size summaries, in machine order.
    pub fn summaries(&self) -> Vec<RoleSummary> {
        self.machines
            .iter()
            .map(|m| RoleSummary { role: m.role, states: m.states.len(), edges: m.edges.len() })
            .collect()
    }

    /// The machine for `role`, if that role exists on the topology.
    pub fn machine(&self, role: Role) -> Option<&RoleMachine> {
        self.machines.iter().find(|m| m.role == role)
    }
}

/// Extracts the abstract machine, or `None` when the protocol's
/// projection has no `phase` register (the abstraction is only defined
/// for wave protocols).
pub fn build<P: DomainModel>(protocol: &P, graph: &Graph) -> Option<AbstractMachine> {
    struct Builder {
        role: Role,
        index: HashMap<AbsState, usize>,
        states: Vec<AbsState>,
        edge_set: HashSet<(usize, usize, usize)>,
        edges: Vec<AbsEdge>,
    }
    impl Builder {
        fn intern(&mut self, s: AbsState) -> usize {
            if let Some(&id) = self.index.get(&s) {
                return id;
            }
            let id = self.states.len();
            self.states.push(s.clone());
            self.index.insert(s, id);
            id
        }
    }

    let registers = protocol.registers();
    let phase_reg = registers.iter().position(|r| *r == "phase")?;

    let domains: Vec<Vec<P::State>> =
        graph.procs().map(|p| protocol.domain(graph, p)).collect();
    let projections: Vec<Vec<Vec<u64>>> = domains
        .iter()
        .map(|d| d.iter().map(|s| protocol.project(s)).collect())
        .collect();

    // Small-domain predicate registers: ≤ 2 distinct projected values
    // across every processor's domain. Wider registers carry values the
    // phase argument does not depend on; collapsing them keeps the
    // machine finite and small.
    let kept: Vec<usize> = (0..registers.len())
        .filter(|&ri| {
            if ri == phase_reg {
                return false;
            }
            let mut values: HashSet<u64> = HashSet::new();
            for projs in &projections {
                for proj in projs {
                    values.insert(proj[ri]);
                    if values.len() > 2 {
                        return false;
                    }
                }
            }
            true
        })
        .collect();

    let root = protocol.analysis_root();
    let mut live = vec![false; protocol.action_names().len()];
    let mut views = 0u64;

    let mut builders: Vec<Builder> = Vec::new();
    let mut builder_of: Vec<usize> = Vec::new();
    for p in graph.procs() {
        let role = if root == Some(p) {
            Role::Root
        } else if graph.neighbor_slice(p).len() == 1 {
            Role::Leaf
        } else {
            Role::Internal
        };
        let bi = builders.iter().position(|b| b.role == role).unwrap_or_else(|| {
            builders.push(Builder {
                role,
                index: HashMap::new(),
                states: Vec::new(),
                edge_set: HashSet::new(),
                edges: Vec::new(),
            });
            builders.len() - 1
        });
        builder_of.push(bi);
    }

    let abs_of = |proj: &[u64], normal: bool| AbsState {
        phase: proj[phase_reg],
        regs: kept.iter().map(|&ri| proj[ri]).collect(),
        normal,
    };

    let mut states: Vec<P::State> = domains.iter().map(|d| d[0].clone()).collect();
    let mut enabled: Vec<ActionId> = Vec::new();
    for p in graph.procs() {
        let bi = builder_of[p.index()];
        let nbhd: Vec<ProcId> = std::iter::once(p).chain(graph.neighbors(p)).collect();
        let mut idx = vec![0usize; nbhd.len()];
        loop {
            for (i, &q) in nbhd.iter().enumerate() {
                states[q.index()] = domains[q.index()][idx[i]].clone();
            }
            views += 1;

            let normal = protocol.locally_normal(View::new(graph, &states, p));
            let from = builders[bi].intern(abs_of(&projections[p.index()][idx[0]], normal));

            enabled.clear();
            protocol.enabled_actions(View::new(graph, &states, p), &mut enabled);
            for &a in &enabled {
                live[a.index()] = true;
                let succ = protocol.execute(View::new(graph, &states, p), a);
                let proj2 = protocol.project(&succ);
                // The successor's normality is evaluated in the *same*
                // environment: only p moved.
                let saved = std::mem::replace(&mut states[p.index()], succ);
                let normal2 = protocol.locally_normal(View::new(graph, &states, p));
                states[p.index()] = saved;
                let to = builders[bi].intern(abs_of(&proj2, normal2));
                let b = &mut builders[bi];
                if b.edge_set.insert((from, a.index(), to)) {
                    b.edges.push(AbsEdge { from, to, action: a, witness_proc: p });
                }
            }

            // Mixed-radix increment over the neighborhood domains.
            let mut carry = 0;
            loop {
                if carry == nbhd.len() {
                    // restore base states for the next processor
                    for &q in &nbhd {
                        states[q.index()] = domains[q.index()][0].clone();
                    }
                    break;
                }
                idx[carry] += 1;
                if idx[carry] < domains[nbhd[carry].index()].len() {
                    break;
                }
                idx[carry] = 0;
                carry += 1;
            }
            if idx.iter().all(|&i| i == 0) {
                break;
            }
        }
    }

    // Stable role order for reports: root, internal, leaf.
    let order = |r: Role| match r {
        Role::Root => 0,
        Role::Internal => 1,
        Role::Leaf => 2,
    };
    builders.sort_by_key(|b| order(b.role));
    let machines = builders
        .into_iter()
        .map(|b| RoleMachine { role: b.role, states: b.states, edges: b.edges })
        .collect();
    Some(AbstractMachine { machines, kept, phase_reg, live, views })
}

fn class_of(root: Option<ProcId>, p: ProcId) -> &'static str {
    if root == Some(p) {
        "root"
    } else {
        "non-root"
    }
}

/// **AN008** — phase-order conformance. Every abstract edge of a wave
/// action must follow the paper's cycle: broadcast enters B only from C
/// (or refreshes within B, like PIF's `Count`-action), the Fok wave
/// stays within B, feedback moves B→F, cleaning moves F→C. Correction
/// edges may move freely *toward* C but must never (re-)enter B — the
/// "broadcast is never re-entered without passing cleaning" half of the
/// property.
pub fn check_phase_order<P: DomainModel>(
    machine: &AbstractMachine,
    protocol: &P,
    out: &mut Vec<Diagnostic>,
) {
    let names = protocol.action_names();
    let root = protocol.analysis_root();
    let mut seen: HashSet<(usize, u64, u64, Role)> = HashSet::new();
    for m in &machine.machines {
        for e in &m.edges {
            let from = m.states[e.from].phase;
            let to = m.states[e.to].phase;
            let tag = protocol.classify(e.action);
            let ok = match tag {
                PhaseTag::Broadcast => (from, to) == (PHASE_C, PHASE_B) || (from, to) == (PHASE_B, PHASE_B),
                PhaseTag::Fok => (from, to) == (PHASE_B, PHASE_B),
                PhaseTag::Feedback => (from, to) == (PHASE_B, PHASE_F),
                PhaseTag::Cleaning => (from, to) == (PHASE_F, PHASE_C),
                PhaseTag::Correction => to != PHASE_B || from == PHASE_B,
                PhaseTag::Other => true,
            };
            if !ok && seen.insert((e.action.index(), from, to, m.role)) {
                out.push(Diagnostic {
                    code: Code::AN008,
                    action: names.get(e.action.index()).copied().unwrap_or("?").to_string(),
                    other_action: None,
                    proc: e.witness_proc,
                    processor_class: class_of(root, e.witness_proc),
                    register: None,
                    witness: Some(format!(
                        "{}: {:?} -> {:?}",
                        m.role.name(),
                        m.states[e.from],
                        m.states[e.to]
                    )),
                    message: format!(
                        "abstract {tag} transition moves phase {} -> {} , violating the \
                         B→F→C cycle (phase B is only entered from C via a broadcast action)",
                        phase_name(from),
                        phase_name(to)
                    ),
                });
            }
        }
    }
}

/// **AN011** — dead-action detection: an action enabled in no
/// enumerated view of any processor labels no abstract edge and can
/// never fire on this instance.
pub fn check_dead_actions<P: DomainModel>(
    machine: &AbstractMachine,
    protocol: &P,
    out: &mut Vec<Diagnostic>,
) {
    let names = protocol.action_names();
    let root = protocol.analysis_root();
    for (ai, &alive) in machine.live.iter().enumerate() {
        if !alive {
            let p = root.unwrap_or(ProcId(0));
            out.push(Diagnostic {
                code: Code::AN011,
                action: names.get(ai).copied().unwrap_or("?").to_string(),
                other_action: None,
                proc: p,
                processor_class: class_of(root, p),
                register: None,
                witness: None,
                message: "action is enabled in no reachable abstract state of any \
                          processor role — dead code on this instance"
                    .to_string(),
            });
        }
    }
}
