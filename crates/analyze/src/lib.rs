//! Static action-interference and model-conformance analyzer for
//! guarded-action protocols (`pif-analyze`).
//!
//! The paper's correctness argument rests on structural facts about
//! Algorithms 1 & 2 that the simulator and checker only witness
//! dynamically: actions write *only their own* registers (the locally
//! shared memory model), guards are prioritized so at most one action
//! class fires per processor, every action belongs to exactly one PIF
//! phase, and correction actions are disabled in normal configurations.
//! This crate checks those facts against the per-action metadata a
//! protocol declares via [`pif_daemon::Protocol::action_spec`]:
//!
//! * **AN001 write-locality / write-set conformance** — no declared
//!   neighbor-register write (model conformance), and no *observed* write
//!   outside the declared write-set;
//! * **AN002 guard determinism** — enumerating all small-domain views
//!   (reusing `pif-verify`'s per-processor register domains), two actions
//!   of the same declared priority class are never simultaneously
//!   enabled;
//! * **AN003 read-set soundness** — the declared read-set
//!   over-approximates the *observed* reads, established by differential
//!   probing: flip one register of one processor in the closed
//!   neighborhood and watch whether the enabled set or any written value
//!   changes;
//! * **AN004 classify conformance** — `action_spec().phase` agrees with
//!   [`pif_daemon::Protocol::classify`] and no annotated action is
//!   [`PhaseTag::Other`];
//! * **AN005 correction quiescence** — in every view satisfying
//!   [`pif_daemon::Protocol::locally_normal`], all
//!   [`PhaseTag::Correction`] actions are disabled;
//! * **AN006 read locality** — an instrumented spy [`View`] records which
//!   processors' registers guard evaluation and execution actually touch;
//!   touching anything outside the closed neighborhood breaks the model;
//! * **AN007 applicability** — actions declared root-only (or
//!   non-root-only) are never enabled at the wrong processor class.
//!
//! On top of the per-view checks, an abstract-interpretation layer
//! ([`abstraction`]) extracts a finite abstract transition system per
//! processor role (root / internal / leaf) over (phase × small-domain
//! predicate registers × local normality) and checks:
//!
//! * **AN008 phase-order conformance** — every abstract wave transition
//!   follows the paper's B→F→C cycle, and phase B is never re-entered
//!   except from C (broadcast never restarts without passing cleaning);
//! * **AN009 correction convergence** — every abnormal abstract state
//!   outside the clean phase has a correction exit, the correction
//!   relation is cycle-free, and a synthesized lexicographic ranking
//!   function ([`ranking`]) bounds every correction path by the
//!   Theorem 1 window (one correction per non-clean phase);
//! * **AN010 derived-interference completeness** — the interference
//!   graph compiled from the specs contains the hand-declared paper
//!   premise *and* everything differential pairwise probing observes
//!   ([`mod@derive`]), so the `interference_radius` that `pif-verify`'s
//!   partial-order reduction consumes is machine-checked end-to-end;
//! * **AN011 dead-action detection** — every action is enabled in at
//!   least one reachable abstract state.
//!
//! The analyzer also derives the **action-interference graph** (which
//! actions' writes can change which actions' guards, at the writer's own
//! processor and across one link) — the static justification for the
//! simulator's incremental enabled-set bookkeeping and the guard memo's
//! locality assumption in `pif-verify` (a move at `p` can only change
//! enabled sets inside `p ∪ N(p)`).
//!
//! ## Soundness of the dynamic stages
//!
//! The view enumeration is exhaustive over the closed neighborhood's
//! register domains (the rest of the network pinned to a base state), so
//! for guards that read only the local view — which AN006 independently
//! enforces — the witness search is complete on the analyzed topology:
//! a clean AN002/AN005 verdict is a proof for that instance, not a
//! sample. Observed reads under-approximate true data dependence
//! (flipping a register can leave a dependent guard coincidentally
//! unchanged), which is the safe direction: AN003 never reports a false
//! under-declaration, and declared ⊇ observed is exactly the contract
//! the interference graph needs to be an over-approximation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

use pif_daemon::{ActionId, PhaseTag, Protocol, ReadProbe, Scope, View};
use pif_graph::{Graph, ProcId};

// The file is named after the concept (the issue tracker and DESIGN.md
// call it the abstract layer); `abstract` is a reserved word, so the
// module takes the pronounceable name.
#[path = "abstract.rs"]
pub mod abstraction;
pub mod derive;
pub mod domains;
pub mod mutants;
pub mod ranking;
pub mod report;

pub use pif_daemon::{InterferenceEdge, InterferenceGraph};

use abstraction::RoleSummary;
use derive::DerivedSummary;
use ranking::RankingCertificate;

/// A protocol whose per-processor register state ranges over a small
/// enumerable domain, making exhaustive view enumeration possible.
///
/// Implementations must keep [`DomainModel::registers`] consistent with
/// the register names used in the protocol's
/// [`pif_daemon::ActionSpec`] declarations, and
/// [`DomainModel::project`] must map a state to one `u64` per register
/// in that order (two states are "equal on register `r`" iff their
/// projections agree at `r`'s index).
pub trait DomainModel: Protocol {
    /// Register names, in projection order. The default delegates to
    /// [`Protocol::register_names`], so protocols that declare their
    /// spec surface once need not repeat it here.
    fn registers(&self) -> &'static [&'static str] {
        Protocol::register_names(self)
    }

    /// All in-domain register states of processor `p` on `graph`.
    /// Value-carrying registers may be collapsed to two representative
    /// values: the analyzer only needs to *distinguish* values, never to
    /// cover them.
    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<Self::State>;

    /// Projects a state to one `u64` per register of
    /// [`DomainModel::registers`].
    fn project(&self, s: &Self::State) -> Vec<u64>;

    /// The distinguished root processor, if the protocol has one (used
    /// by the AN007 applicability check).
    fn analysis_root(&self) -> Option<ProcId> {
        None
    }

    /// The interference premise the protocol *advertises* to consumers —
    /// the hand-declared shape the partial-order reduction's soundness
    /// argument cites (for PIF, the paper's 7×7 neighbor-complete
    /// matrix). AN010 checks the spec-derived graph contains every
    /// advertised edge, so an advertised premise can never claim more
    /// than the machine derivation supports. The default advertises
    /// exactly the derived graph, which is trivially consistent.
    fn advertised_interference(&self) -> InterferenceGraph
    where
        Self: Sized,
    {
        InterferenceGraph::from_protocol(self, self.registers())
    }
}

/// Diagnostic codes emitted by the analyzer. Stable strings (`AN001`…)
/// are part of the JSON report format.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Code {
    /// Write-locality / write-set conformance violation.
    AN001,
    /// Guard nondeterminism: two same-priority actions co-enabled.
    AN002,
    /// Declared read-set under-approximates observed reads.
    AN003,
    /// `action_spec().phase` disagrees with `classify`, or is `Other`.
    AN004,
    /// A correction action is enabled in a locally normal view.
    AN005,
    /// Guard or statement read a processor outside the closed
    /// neighborhood.
    AN006,
    /// Action enabled at a processor class it does not apply to.
    AN007,
    /// Abstract transition violates the B→F→C phase order.
    AN008,
    /// Correction relation does not converge (cycle, stuck abnormal
    /// state, or path longer than the Theorem 1 window).
    AN009,
    /// Derived interference graph misses an advertised or observed
    /// dependence (the POR premise would be unsound).
    AN010,
    /// Action never enabled in any reachable abstract state.
    AN011,
}

impl Code {
    /// The stable code string (`"AN001"`…).
    pub const fn as_str(self) -> &'static str {
        match self {
            Code::AN001 => "AN001",
            Code::AN002 => "AN002",
            Code::AN003 => "AN003",
            Code::AN004 => "AN004",
            Code::AN005 => "AN005",
            Code::AN006 => "AN006",
            Code::AN007 => "AN007",
            Code::AN008 => "AN008",
            Code::AN009 => "AN009",
            Code::AN010 => "AN010",
            Code::AN011 => "AN011",
        }
    }

    /// Short human-readable title.
    pub const fn title(self) -> &'static str {
        match self {
            Code::AN001 => "write-locality violation",
            Code::AN002 => "guard nondeterminism",
            Code::AN003 => "under-declared read-set",
            Code::AN004 => "classify/spec phase mismatch",
            Code::AN005 => "correction enabled in normal view",
            Code::AN006 => "non-local read",
            Code::AN007 => "applicability violation",
            Code::AN008 => "phase-order violation",
            Code::AN009 => "correction non-convergence",
            Code::AN010 => "incomplete derived interference",
            Code::AN011 => "dead action",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The diagnostic code.
    pub code: Code,
    /// Name of the offending action.
    pub action: String,
    /// The second action of a conflicting pair (AN002).
    pub other_action: Option<String>,
    /// The processor at which the finding was witnessed.
    pub proc: ProcId,
    /// `"root"` or `"non-root"` — the processor class of the witness.
    pub processor_class: &'static str,
    /// The register involved, as `scope.name` (AN001/AN003).
    pub register: Option<String>,
    /// Debug-formatted closed-neighborhood states of the witness view.
    pub witness: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

/// The result of analyzing one protocol instance on one topology.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Protocol name (report key).
    pub protocol: String,
    /// Topology name (report key).
    pub topology: String,
    /// Network size.
    pub processors: usize,
    /// Action names, by [`ActionId`] index.
    pub actions: Vec<String>,
    /// Local views exhaustively enumerated.
    pub views_checked: u64,
    /// Differential register flips evaluated.
    pub probes: u64,
    /// Findings (empty = certified on this instance).
    pub diagnostics: Vec<Diagnostic>,
    /// The spec-derived action-interference graph.
    pub interference: InterferenceGraph,
    /// Per-role abstract machine sizes (AN008/AN009/AN011 substrate).
    pub abstract_roles: Vec<RoleSummary>,
    /// The synthesized correction-convergence certificate (AN009).
    pub ranking: RankingCertificate,
    /// Derived-vs-observed interference summary (AN010).
    pub derived: DerivedSummary,
}

impl Analysis {
    /// Whether the protocol passed every check on this instance.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Deduplication key so each distinct finding is reported once per
/// processor class rather than once per witnessing view.
type DiagKey = (Code, usize, usize, bool, usize);

struct Ctx<'a, P: DomainModel> {
    protocol: &'a P,
    graph: &'a Graph,
    registers: &'static [&'static str],
    specs: Vec<pif_daemon::ActionSpec>,
    names: &'static [&'static str],
    root: Option<ProcId>,
    diagnostics: Vec<Diagnostic>,
    seen: HashSet<DiagKey>,
    views_checked: u64,
    probes: u64,
}

/// Debug-formats the closed-neighborhood slice of a witness view.
fn witness_of<S: std::fmt::Debug>(nbhd: &[ProcId], states: &[S]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &q in nbhd {
        if !out.is_empty() {
            out.push_str("; ");
        }
        let _ = write!(out, "{q}={:?}", states[q.index()]);
    }
    out
}

impl<P: DomainModel> Ctx<'_, P> {
    // One call site per diagnostic code; a parameter struct would only
    // re-spell the Diagnostic fields.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        code: Code,
        action: usize,
        other: Option<usize>,
        p: ProcId,
        register: Option<(Scope, usize)>,
        witness: Option<String>,
        message: String,
    ) {
        let is_root = self.root == Some(p);
        let key: DiagKey = (
            code,
            action,
            other.unwrap_or(usize::MAX),
            is_root,
            register.map_or(usize::MAX, |(s, r)| r * 2 + usize::from(s == Scope::Neighbor)),
        );
        if !self.seen.insert(key) {
            return;
        }
        self.diagnostics.push(Diagnostic {
            code,
            action: self.names.get(action).copied().unwrap_or("?").to_string(),
            other_action: other.map(|o| self.names.get(o).copied().unwrap_or("?").to_string()),
            proc: p,
            processor_class: if is_root { "root" } else { "non-root" },
            register: register.map(|(s, r)| format!("{s}.{}", self.registers[r])),
            witness,
            message,
        });
    }

    /// Static checks that need no view enumeration.
    fn check_static(&mut self) {
        for (ai, _) in self.names.iter().enumerate() {
            let spec = self.specs[ai];
            for w in spec.writes {
                if w.scope == Scope::Neighbor {
                    let reg_idx = self
                        .registers
                        .iter()
                        .position(|r| *r == w.reg)
                        .unwrap_or(usize::MAX - 1);
                    self.emit(
                        Code::AN001,
                        ai,
                        None,
                        self.root.unwrap_or(ProcId(0)),
                        Some((Scope::Neighbor, reg_idx.min(self.registers.len() - 1))),
                        None,
                        format!(
                            "action declares a write to neighbor register `{}`: the locally \
                             shared memory model only permits writing own registers",
                            w.reg
                        ),
                    );
                }
            }
            let tag = self.protocol.classify(ActionId(ai));
            if spec.phase != tag {
                self.emit(
                    Code::AN004,
                    ai,
                    None,
                    self.root.unwrap_or(ProcId(0)),
                    None,
                    None,
                    format!(
                        "action_spec().phase is {} but classify() says {tag}",
                        spec.phase
                    ),
                );
            } else if tag == PhaseTag::Other {
                self.emit(
                    Code::AN004,
                    ai,
                    None,
                    self.root.unwrap_or(ProcId(0)),
                    None,
                    None,
                    "annotated protocols must attribute every action to a PIF phase \
                     (classify() returned `other`)"
                        .to_string(),
                );
            }
        }
    }

    /// Exhaustive per-processor dynamic checks.
    fn check_proc(&mut self, p: ProcId) {
        let nbhd: Vec<ProcId> =
            std::iter::once(p).chain(self.graph.neighbors(p)).collect();
        let nbhd_mask: u64 = nbhd.iter().map(|q| 1u64 << q.index()).sum();
        let is_root = self.root == Some(p);

        // Base configuration: everything pinned to its first domain state.
        let mut states: Vec<P::State> = self
            .graph
            .procs()
            .map(|q| self.protocol.domain(self.graph, q).swap_remove(0))
            .collect();

        let domains: Vec<Vec<P::State>> =
            nbhd.iter().map(|&q| self.protocol.domain(self.graph, q)).collect();
        let projections: Vec<Vec<Vec<u64>>> = domains
            .iter()
            .map(|d| d.iter().map(|s| self.protocol.project(s)).collect())
            .collect();

        // variants[i][reg][di] = domain indices differing from di only at
        // `reg` — the flip targets of the differential read probe.
        let variants: Vec<Vec<Vec<Vec<u32>>>> = projections
            .iter()
            .map(|projs| {
                (0..self.registers.len())
                    .map(|reg| {
                        let mut groups: HashMap<Vec<u64>, Vec<u32>> = HashMap::new();
                        for (di, proj) in projs.iter().enumerate() {
                            let mut key = proj.clone();
                            key[reg] = 0;
                            groups.entry(key).or_default().push(di as u32);
                        }
                        projs
                            .iter()
                            .enumerate()
                            .map(|(di, proj)| {
                                let mut key = proj.clone();
                                key[reg] = 0;
                                groups[&key]
                                    .iter()
                                    .copied()
                                    .filter(|&dj| dj as usize != di)
                                    .collect()
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Actions whose declaration does NOT cover (scope, reg): the only
        // ones the differential probe needs to watch for that flip.
        let narrow: Vec<Vec<Vec<usize>>> = [Scope::Own, Scope::Neighbor]
            .iter()
            .map(|&scope| {
                (0..self.registers.len())
                    .map(|reg| {
                        (0..self.names.len())
                            .filter(|&ai| {
                                !self.specs[ai].reads_reg(scope, self.registers[reg])
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let probe = ReadProbe::new();
        let mut enabled: Vec<ActionId> = Vec::new();
        let mut enabled2: Vec<ActionId> = Vec::new();
        let correction_actions: Vec<usize> = (0..self.names.len())
            .filter(|&ai| self.specs[ai].phase == PhaseTag::Correction)
            .collect();

        let mut idx = vec![0usize; nbhd.len()];
        loop {
            for (i, &q) in nbhd.iter().enumerate() {
                states[q.index()] = domains[i][idx[i]].clone();
            }
            self.views_checked += 1;

            probe.clear();
            let view = View::spied(self.graph, &states, p, &probe);
            enabled.clear();
            self.protocol.enabled_actions(view, &mut enabled);

            // AN002: two co-enabled actions in the same priority class.
            for (k, &a) in enabled.iter().enumerate() {
                for &b in &enabled[k + 1..] {
                    if self.specs[a.index()].priority == self.specs[b.index()].priority {
                        let w = witness_of(&nbhd, &states);
                        self.emit(
                            Code::AN002,
                            a.index(),
                            Some(b.index()),
                            p,
                            None,
                            Some(w),
                            format!(
                                "actions `{}` and `{}` share priority class {} but are \
                                 simultaneously enabled — same-class guards must be disjoint",
                                self.names[a.index()],
                                self.names[b.index()],
                                self.specs[a.index()].priority
                            ),
                        );
                    }
                }
            }

            // AN007: enabled at a processor class the spec excludes.
            for &a in &enabled {
                if !self.specs[a.index()].applicability.covers(is_root) {
                    let w = witness_of(&nbhd, &states);
                    self.emit(
                        Code::AN007,
                        a.index(),
                        None,
                        p,
                        None,
                        Some(w),
                        format!(
                            "action declared {} but enabled at a {} processor",
                            self.specs[a.index()].applicability.name(),
                            if is_root { "root" } else { "non-root" }
                        ),
                    );
                }
            }

            // AN005: correction quiescence.
            if self.protocol.locally_normal(view) {
                for &ai in &correction_actions {
                    if enabled.contains(&ActionId(ai)) {
                        let w = witness_of(&nbhd, &states);
                        self.emit(
                            Code::AN005,
                            ai,
                            None,
                            p,
                            None,
                            Some(w),
                            "correction action enabled in a locally normal view — \
                             corrections must be statically unreachable from normal states"
                                .to_string(),
                        );
                    }
                }
            }

            // AN001 (dynamic): observed writes outside the declared set.
            let me_proj = self.protocol.project(view.me());
            let mut results: Vec<Option<Vec<u64>>> = vec![None; self.names.len()];
            for &a in &enabled {
                let out = self.protocol.execute(view, a);
                let proj = self.protocol.project(&out);
                for (ri, reg) in self.registers.iter().enumerate() {
                    if proj[ri] != me_proj[ri]
                        && !self.specs[a.index()].writes_reg(Scope::Own, reg)
                    {
                        let w = witness_of(&nbhd, &states);
                        self.emit(
                            Code::AN001,
                            a.index(),
                            None,
                            p,
                            Some((Scope::Own, ri)),
                            Some(w),
                            format!(
                                "execution modified register `{reg}` which the action \
                                 does not declare in its write-set"
                            ),
                        );
                    }
                }
                results[a.index()] = Some(proj);
            }

            // AN006: any register read outside the closed neighborhood.
            if probe.mask() & !nbhd_mask != 0 {
                let w = witness_of(&nbhd, &states);
                let a = enabled.first().map_or(0, |a| a.index());
                self.emit(
                    Code::AN006,
                    a,
                    None,
                    p,
                    None,
                    Some(w),
                    "guard evaluation or execution read a processor outside the \
                     closed neighborhood — not expressible in the locally shared \
                     memory model"
                        .to_string(),
                );
            }

            // AN003: differential probing for undeclared read dependence.
            for (i, &q) in nbhd.iter().enumerate() {
                let scope_idx = usize::from(q != p);
                let scope = if q == p { Scope::Own } else { Scope::Neighbor };
                for ri in 0..self.registers.len() {
                    if narrow[scope_idx][ri].is_empty() {
                        continue;
                    }
                    let flips = variants[i][ri][idx[i]].clone();
                    for dj in flips {
                        let saved = states[q.index()].clone();
                        states[q.index()] = domains[i][dj as usize].clone();
                        self.probes += 1;
                        let view2 = View::new(self.graph, &states, p);
                        enabled2.clear();
                        self.protocol.enabled_actions(view2, &mut enabled2);
                        let me2_proj = self.protocol.project(view2.me());
                        for &ai in &narrow[scope_idx][ri] {
                            let a = ActionId(ai);
                            let in1 = results[ai].is_some();
                            let in2 = enabled2.contains(&a);
                            let mut depends = in1 != in2;
                            if in1 && in2 {
                                let proj2 = self.protocol.project(&self.protocol.execute(view2, a));
                                let proj1 = results[ai].as_ref().unwrap();
                                for f in 0..self.registers.len() {
                                    // A field only counts as a *write*
                                    // when it departs from the processor's
                                    // current value; copied-through
                                    // registers are non-writes, not reads.
                                    let wrote1 = proj1[f] != me_proj[f];
                                    let wrote2 = proj2[f] != me2_proj[f];
                                    if (wrote1 || wrote2) && proj1[f] != proj2[f] {
                                        depends = true;
                                    }
                                }
                            }
                            if depends {
                                let w = witness_of(&nbhd, &states);
                                self.emit(
                                    Code::AN003,
                                    ai,
                                    None,
                                    p,
                                    Some((scope, ri)),
                                    Some(w),
                                    format!(
                                        "guard or statement observably depends on {scope} \
                                         register `{}` which the action does not declare \
                                         in its read-set",
                                        self.registers[ri]
                                    ),
                                );
                            }
                        }
                        states[q.index()] = saved;
                    }
                }
            }

            // Mixed-radix increment over the neighborhood domains.
            let mut carry = 0;
            loop {
                if carry == nbhd.len() {
                    return;
                }
                idx[carry] += 1;
                if idx[carry] < domains[carry].len() {
                    break;
                }
                idx[carry] = 0;
                carry += 1;
            }
        }
    }
}

/// Analyzes `protocol` on `graph`, running every static and dynamic
/// check, and returns the findings plus the derived interference graph.
///
/// # Panics
///
/// Panics if the protocol has not opted into static analysis
/// ([`Protocol::has_action_specs`] is `false`) — the conservative default
/// specs would make every verdict vacuous — or if the network exceeds 64
/// processors (the spy view's probe capacity).
pub fn analyze<P: DomainModel>(
    protocol: &P,
    graph: &Graph,
    protocol_name: &str,
    topology: &str,
) -> Analysis {
    assert!(
        protocol.has_action_specs(),
        "protocol `{protocol_name}` has no action specs; the analyzer refuses to certify \
         the conservative defaults"
    );
    let names = protocol.action_names();
    let specs: Vec<_> = (0..names.len()).map(|i| protocol.action_spec(ActionId(i))).collect();
    let mut ctx = Ctx {
        protocol,
        graph,
        registers: protocol.registers(),
        specs,
        names,
        root: protocol.analysis_root(),
        diagnostics: Vec::new(),
        seen: HashSet::new(),
        views_checked: 0,
        probes: 0,
    };
    ctx.check_static();
    for p in graph.procs() {
        ctx.check_proc(p);
    }
    let mut diagnostics = ctx.diagnostics;

    // Abstract-interpretation layer: phase machine per processor role.
    let machine = abstraction::build(protocol, graph);
    let (abstract_roles, ranking) = match &machine {
        Some(m) => {
            abstraction::check_phase_order(m, protocol, &mut diagnostics);
            abstraction::check_dead_actions(m, protocol, &mut diagnostics);
            let cert = ranking::check_convergence(m, protocol, &mut diagnostics);
            (m.summaries(), cert)
        }
        None => (Vec::new(), RankingCertificate::unavailable()),
    };

    // Derived interference: specs vs advertised premise vs probing.
    let interference = InterferenceGraph::from_protocol(protocol, protocol.registers());
    let derived = derive::derive_and_check(protocol, graph, &interference, &mut diagnostics);

    Analysis {
        protocol: protocol_name.to_string(),
        topology: topology.to_string(),
        processors: graph.len(),
        actions: names.iter().map(std::string::ToString::to_string).collect(),
        views_checked: ctx.views_checked,
        probes: ctx.probes,
        diagnostics,
        interference,
        abstract_roles,
        ranking,
        derived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_core::PifProtocol;
    use pif_graph::generators;

    #[test]
    fn pif_is_clean_on_chain2() {
        let g = generators::chain(2).unwrap();
        let proto = PifProtocol::new(ProcId(0), &g);
        let a = analyze(&proto, &g, "pif", "chain2");
        assert!(a.clean(), "diagnostics: {:#?}", a.diagnostics);
        assert!(a.views_checked > 0 && a.probes > 0);
    }

    #[test]
    fn pif_interference_graph_is_neighbor_complete() {
        let g = generators::chain(2).unwrap();
        let proto = PifProtocol::new(ProcId(0), &g);
        let a = analyze(&proto, &g, "pif", "chain2");
        // Every guard but Broadcast evaluates Normal(p) over the full
        // neighbor state, and every action writes a register some guard
        // reads: all 7 x 7 ordered pairs interfere across a link.
        assert!(a.interference.neighbor_complete(7));
        // But not at the writer's own processor: Fok-action writes only
        // `fok`, which B-action's own-scope reads (just `phase`) miss.
        assert!(!a.interference.has_edge("Fok-action", "B-action", false));
        assert!(a.interference.has_edge("Fok-action", "B-action", true));
    }

    #[test]
    #[should_panic(expected = "no action specs")]
    fn refuses_unannotated_protocols() {
        struct Bare;
        impl Protocol for Bare {
            type State = u8;
            fn action_names(&self) -> &'static [&'static str] {
                &["noop"]
            }
            fn enabled_actions(&self, _: View<'_, u8>, _: &mut Vec<ActionId>) {}
            fn execute(&self, v: View<'_, u8>, _: ActionId) -> u8 {
                *v.me()
            }
        }
        impl DomainModel for Bare {
            fn registers(&self) -> &'static [&'static str] {
                &["x"]
            }
            fn domain(&self, _: &Graph, _: ProcId) -> Vec<u8> {
                vec![0]
            }
            fn project(&self, s: &u8) -> Vec<u64> {
                vec![u64::from(*s)]
            }
        }
        let g = generators::chain(2).unwrap();
        let _ = analyze(&Bare, &g, "bare", "chain2");
    }
}
