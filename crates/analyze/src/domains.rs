//! [`DomainModel`] implementations for the analyzable protocols: the
//! paper's PIF plus the three baselines.
//!
//! Each model enumerates the *reachable-or-corrupted* register domain of
//! one processor — exactly the domains the paper's proofs quantify over
//! (any initial configuration assigns registers arbitrary in-domain
//! values). Value-carrying registers (`val`) are collapsed to `{0, 1}`:
//! the analyzer only needs to distinguish values to detect reads and
//! writes, never to cover the payload space.

use pif_baselines::echo::{EchoPhase, EchoProtocol, EchoState};
use pif_baselines::ss_pif::{SsPhase, SsPifProtocol, SsState};
use pif_baselines::tree_pif::{TreePhase, TreePifProtocol, TreeState};
use pif_core::{Phase, PifProtocol, PifState};
use pif_daemon::Protocol;
use pif_graph::{Graph, ProcId};
use pif_verify::StateSpace;

use crate::{DomainModel, InterferenceEdge, InterferenceGraph};

impl DomainModel for PifProtocol {
    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<PifState> {
        // Reuse the exhaustive checker's per-processor domain enumeration
        // so the analyzer and the reachability checker agree on what "any
        // initial configuration" means.
        let space = StateSpace::try_new(graph.clone(), self.clone())
            .expect("analysis topology must fit the exhaustive checker");
        space.proc_domain(p).to_vec()
    }

    fn project(&self, s: &PifState) -> Vec<u64> {
        vec![
            match s.phase {
                Phase::B => 0,
                Phase::F => 1,
                Phase::C => 2,
            },
            s.par.index() as u64,
            u64::from(s.level),
            u64::from(s.count),
            u64::from(s.fok),
        ]
    }

    fn analysis_root(&self) -> Option<ProcId> {
        Some(self.root())
    }

    fn advertised_interference(&self) -> InterferenceGraph {
        // The paper's premise, declared by hand rather than compiled from
        // specs: every guard evaluates `Normal(p)` over the full closed
        // neighborhood, so *every* ordered action pair may interfere
        // across a link — the neighbor-complete 7×7 matrix. AN010 proves
        // the spec-derived graph contains it (shape-only edges, no
        // register annotations).
        let edges = self
            .action_names()
            .iter()
            .flat_map(|&src| {
                self.action_names().iter().map(move |&dst| InterferenceEdge {
                    src: src.to_string(),
                    dst: dst.to_string(),
                    across_link: true,
                    registers: Vec::new(),
                })
            })
            .collect();
        InterferenceGraph { edges }
    }
}

impl DomainModel for EchoProtocol {
    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<EchoState> {
        let pars: Vec<ProcId> = if graph.neighbor_slice(p).is_empty() {
            vec![p]
        } else {
            graph.neighbor_slice(p).to_vec()
        };
        let mut out = Vec::new();
        for phase in [EchoPhase::B, EchoPhase::F, EchoPhase::C] {
            for &par in &pars {
                for val in 0..2u64 {
                    out.push(EchoState { phase, par, val });
                }
            }
        }
        out
    }

    fn project(&self, s: &EchoState) -> Vec<u64> {
        vec![
            match s.phase {
                EchoPhase::B => 0,
                EchoPhase::F => 1,
                EchoPhase::C => 2,
            },
            s.par.index() as u64,
            s.val,
        ]
    }

    fn analysis_root(&self) -> Option<ProcId> {
        Some(self.root())
    }
}

impl DomainModel for SsPifProtocol {
    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<SsState> {
        let root = self.root();
        // Mirrors `random_config`: the root's parent register is itself
        // and its distance is pinned to 0; everyone else ranges over all
        // neighbors and 1..=dist_max.
        let pars: Vec<ProcId> = if p == root || graph.neighbor_slice(p).is_empty() {
            vec![p]
        } else {
            graph.neighbor_slice(p).to_vec()
        };
        let dists: Vec<u16> =
            if p == root { vec![0] } else { (1..=self.dist_max()).collect() };
        let mut out = Vec::new();
        for phase in [SsPhase::B, SsPhase::F, SsPhase::C] {
            for &par in &pars {
                for &dist in &dists {
                    for val in 0..2u64 {
                        out.push(SsState { phase, par, dist, val });
                    }
                }
            }
        }
        out
    }

    fn project(&self, s: &SsState) -> Vec<u64> {
        vec![
            match s.phase {
                SsPhase::B => 0,
                SsPhase::F => 1,
                SsPhase::C => 2,
            },
            s.par.index() as u64,
            u64::from(s.dist),
            s.val,
        ]
    }

    fn analysis_root(&self) -> Option<ProcId> {
        Some(self.root())
    }
}

impl DomainModel for TreePifProtocol {
    fn domain(&self, _graph: &Graph, _p: ProcId) -> Vec<TreeState> {
        let mut out = Vec::new();
        for phase in [TreePhase::B, TreePhase::F, TreePhase::C] {
            for val in 0..2u64 {
                out.push(TreeState { phase, val });
            }
        }
        out
    }

    fn project(&self, s: &TreeState) -> Vec<u64> {
        vec![
            match s.phase {
                TreePhase::B => 0,
                TreePhase::F => 1,
                TreePhase::C => 2,
            },
            s.val,
        ]
    }

    fn analysis_root(&self) -> Option<ProcId> {
        Some(self.root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pif_graph::generators;

    #[test]
    fn projections_are_injective_on_domains() {
        let g = generators::chain(3).unwrap();
        let proto = EchoProtocol::new(ProcId(0), 7);
        for p in g.procs() {
            let dom = proto.domain(&g, p);
            let mut seen = std::collections::HashSet::new();
            for s in &dom {
                assert!(seen.insert(proto.project(s)), "projection collision at {p}");
            }
        }
    }

    #[test]
    fn ss_root_domain_pins_dist_and_par() {
        let g = generators::chain(3).unwrap();
        let proto = SsPifProtocol::new(ProcId(0), 3, 7);
        for s in proto.domain(&g, ProcId(0)) {
            assert_eq!(s.dist, 0);
            assert_eq!(s.par, ProcId(0));
        }
        assert!(proto.domain(&g, ProcId(1)).len() > proto.domain(&g, ProcId(0)).len());
    }
}
