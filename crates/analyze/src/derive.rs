//! Machine-derived interference (AN010): the spec-compiled graph,
//! cross-checked against the hand-declared premise and against
//! differential pairwise probing.
//!
//! Three interference graphs are in play:
//!
//! * **derived** — compiled from the declared read/write sets by
//!   [`InterferenceGraph::from_protocol`]; this is the graph whose
//!   [`interference_radius`](InterferenceGraph::interference_radius)
//!   `pif-verify`'s partial-order reduction consumes
//!   (`por_premise_radius`);
//! * **advertised** — the hand-declared premise
//!   ([`DomainModel::advertised_interference`]; for PIF, the paper's
//!   7×7 neighbor-complete matrix). AN010 requires derived ⊇
//!   advertised, so the documented premise never claims interference
//!   the machine derivation cannot account for;
//! * **observed** — what differential probing actually sees: for every
//!   ordered processor pair `(w, p)` at graph distance ≤ 2, enumerate
//!   (or deterministically sample, past a budget) the joint register
//!   domain of `N[w] ∪ N[p]`, execute each enabled action at `w`, and
//!   watch whether any action's guard verdict or written effect at `p`
//!   changes. AN010 requires derived ⊇ observed — the soundness
//!   direction: the reduction premise must over-approximate the real
//!   dependence — and in particular flags any observed interference at
//!   distance 2, which would break the radius bound itself.
//!
//! Effect changes use the same write discipline as AN003: a register
//! counts as written only when it departs from the processor's current
//! value, so copied-through registers are non-writes (otherwise every
//! action would appear to depend on every register it copies).
//!
//! The observed-coverage direction presupposes declaration soundness:
//! derived ⊇ observed holds *because* declared reads over-approximate
//! observed reads (AN003) and declared writes the observed ones (AN001).
//! When those checks have already fired, the derived graph is known-bad
//! for the same root cause, so the observed comparison still runs (and
//! is reported in the summary) but emits no AN010 — one defect, one
//! code.

use std::collections::HashSet;

use pif_daemon::{ActionId, View};
use pif_graph::{Graph, ProcId};

use crate::{Code, Diagnostic, DomainModel, InterferenceGraph};

/// Probing budget per ordered processor pair: joint domains up to this
/// size are enumerated exhaustively; larger ones are sampled with this
/// many deterministic (seeded) draws and the run is marked `sampled`.
pub const PAIR_BUDGET: u64 = 50_000;

/// One observed interference: executing `src` at a writer changed
/// `dst`'s guard verdict or effect at a processor `distance` links away.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObservedEdge {
    /// Writer action name.
    pub src: String,
    /// Affected action name.
    pub dst: String,
    /// Graph distance from writer to affected processor (0 = same).
    pub distance: usize,
}

/// Summary of the derived-vs-advertised-vs-observed comparison.
#[derive(Clone, Debug)]
pub struct DerivedSummary {
    /// Edge count of the spec-derived graph.
    pub derived_edges: usize,
    /// Radius of the spec-derived graph (the POR premise).
    pub derived_radius: usize,
    /// Edge count of the advertised (hand-declared) premise.
    pub advertised_edges: usize,
    /// Distinct observed interferences, sorted.
    pub observed: Vec<ObservedEdge>,
    /// Maximum distance over observed interferences (0 when none).
    pub observed_radius: usize,
    /// Number of (assignment × source-action) probes executed.
    pub pair_probes: u64,
    /// Whether any pair's joint domain exceeded [`PAIR_BUDGET`] and was
    /// sampled rather than enumerated.
    pub sampled: bool,
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// BFS distances from `start` (`usize::MAX` = unreachable).
fn distances(graph: &Graph, start: ProcId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.len()];
    dist[start.index()] = 0;
    let mut queue = vec![start];
    let mut head = 0;
    while head < queue.len() {
        let q = queue[head];
        head += 1;
        for w in graph.neighbors(q) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[q.index()] + 1;
                queue.push(w);
            }
        }
    }
    dist
}

/// **AN010** — derives, compares and probes; emits diagnostics into
/// `out` and returns the report summary. `derived` is the
/// already-compiled spec graph (shared with the `Analysis` field).
pub fn derive_and_check<P: DomainModel>(
    protocol: &P,
    graph: &Graph,
    derived: &InterferenceGraph,
    out: &mut Vec<Diagnostic>,
) -> DerivedSummary {
    let names = protocol.action_names();
    let root = protocol.analysis_root();
    let class = |p: ProcId| if root == Some(p) { "root" } else { "non-root" };
    // See the module docs: observed-coverage AN010 only means "derived
    // graph misses real dependence" when the declarations themselves are
    // sound; otherwise AN001/AN003 already name the root cause.
    let declarations_sound =
        !out.iter().any(|d| matches!(d.code, Code::AN001 | Code::AN003));

    // Advertised premise: derived must contain it.
    let advertised = protocol.advertised_interference();
    for e in &advertised.edges {
        if !derived.has_edge(&e.src, &e.dst, e.across_link) {
            out.push(Diagnostic {
                code: Code::AN010,
                action: e.src.clone(),
                other_action: Some(e.dst.clone()),
                proc: root.unwrap_or(ProcId(0)),
                processor_class: class(root.unwrap_or(ProcId(0))),
                register: None,
                witness: None,
                message: format!(
                    "advertised interference premise claims `{}` -> `{}` ({}) but the \
                     spec-derived graph has no such edge — the hand declaration \
                     over-claims what the machine derivation supports",
                    e.src,
                    e.dst,
                    if e.across_link { "across a link" } else { "own processor" }
                ),
            });
        }
    }

    // Differential pairwise probing.
    let domains: Vec<Vec<P::State>> =
        graph.procs().map(|p| protocol.domain(graph, p)).collect();
    let base: Vec<P::State> = domains.iter().map(|d| d[0].clone()).collect();
    let all_dist: Vec<Vec<usize>> = graph.procs().map(|p| distances(graph, p)).collect();

    let mut observed: HashSet<(usize, usize, usize)> = HashSet::new();
    let mut pair_probes = 0u64;
    let mut sampled = false;
    let mut states = base.clone();
    let mut enabled_w: Vec<ActionId> = Vec::new();
    let mut enabled_p1: Vec<ActionId> = Vec::new();
    let mut enabled_p2: Vec<ActionId> = Vec::new();

    for w in graph.procs() {
        for p in graph.procs() {
            let d = all_dist[w.index()][p.index()];
            if d > 2 {
                continue;
            }
            // Joint support: both closed neighborhoods (guards and
            // effects at w and p read nothing else, per AN006).
            let mut support: Vec<ProcId> = std::iter::once(w)
                .chain(graph.neighbors(w))
                .chain(std::iter::once(p))
                .chain(graph.neighbors(p))
                .collect();
            support.sort_unstable();
            support.dedup();
            let sizes: Vec<u64> =
                support.iter().map(|q| domains[q.index()].len() as u64).collect();
            let product: u64 = sizes.iter().product();
            let exhaustive = product <= PAIR_BUDGET;
            sampled |= !exhaustive;
            let draws = product.min(PAIR_BUDGET);
            let mut rng = 0xA11C_E000u64
                ^ ((w.index() as u64) << 32)
                ^ ((p.index() as u64) << 16);

            for draw in 0..draws {
                let mut assignment = if exhaustive { draw } else { splitmix(&mut rng) % product };
                for (k, &q) in support.iter().enumerate() {
                    let di = (assignment % sizes[k]) as usize;
                    assignment /= sizes[k];
                    states[q.index()] = domains[q.index()][di].clone();
                }

                enabled_w.clear();
                protocol.enabled_actions(View::new(graph, &states, w), &mut enabled_w);
                enabled_p1.clear();
                protocol.enabled_actions(View::new(graph, &states, p), &mut enabled_p1);
                let me_proj1 = protocol.project(&states[p.index()]);
                let results1: Vec<Option<Vec<u64>>> = (0..names.len())
                    .map(|ai| {
                        enabled_p1.contains(&ActionId(ai)).then(|| {
                            protocol
                                .project(&protocol.execute(View::new(graph, &states, p), ActionId(ai)))
                        })
                    })
                    .collect();

                for &src in &enabled_w {
                    let succ = protocol.execute(View::new(graph, &states, w), src);
                    if succ == states[w.index()] {
                        continue; // no-op move: nothing to observe
                    }
                    pair_probes += 1;
                    let saved = std::mem::replace(&mut states[w.index()], succ);
                    enabled_p2.clear();
                    protocol.enabled_actions(View::new(graph, &states, p), &mut enabled_p2);
                    let me_proj2 = protocol.project(&states[p.index()]);
                    for (ai, r1) in results1.iter().enumerate() {
                        let in1 = r1.is_some();
                        let in2 = enabled_p2.contains(&ActionId(ai));
                        let mut depends = in1 != in2;
                        if in1 && in2 {
                            let proj1 = r1.as_ref().unwrap();
                            let proj2 = protocol
                                .project(&protocol.execute(View::new(graph, &states, p), ActionId(ai)));
                            for f in 0..proj1.len() {
                                let wrote1 = proj1[f] != me_proj1[f];
                                let wrote2 = proj2[f] != me_proj2[f];
                                if (wrote1 || wrote2) && proj1[f] != proj2[f] {
                                    depends = true;
                                }
                            }
                        }
                        if depends {
                            observed.insert((src.index(), ai, d));
                        }
                    }
                    states[w.index()] = saved;
                }
            }
            // Restore the support slice to base for the next pair.
            for &q in &support {
                states[q.index()] = base[q.index()].clone();
            }
        }
    }

    let mut observed: Vec<ObservedEdge> = observed
        .into_iter()
        .map(|(si, di, d)| ObservedEdge {
            src: names[si].to_string(),
            dst: names[di].to_string(),
            distance: d,
        })
        .collect();
    observed.sort();
    let observed_radius = observed.iter().map(|e| e.distance).max().unwrap_or(0);

    for e in observed.iter().filter(|_| declarations_sound) {
        let covered = match e.distance {
            0 => derived.has_edge(&e.src, &e.dst, false),
            1 => derived.has_edge(&e.src, &e.dst, true),
            _ => false,
        };
        if !covered {
            out.push(Diagnostic {
                code: Code::AN010,
                action: e.src.clone(),
                other_action: Some(e.dst.clone()),
                proc: root.unwrap_or(ProcId(0)),
                processor_class: class(root.unwrap_or(ProcId(0))),
                register: None,
                witness: None,
                message: if e.distance > 1 {
                    format!(
                        "probing observed `{}` -> `{}` interference at distance {} — \
                         beyond the structural radius bound the partial-order \
                         reduction's soundness rests on",
                        e.src, e.dst, e.distance
                    )
                } else {
                    format!(
                        "probing observed `{}` -> `{}` interference ({}) that the \
                         spec-derived graph misses — the derived POR premise would \
                         under-approximate real dependence",
                        e.src,
                        e.dst,
                        if e.distance == 1 { "across a link" } else { "own processor" }
                    )
                },
            });
        }
    }

    DerivedSummary {
        derived_edges: derived.edges.len(),
        derived_radius: derived.interference_radius(),
        advertised_edges: advertised.edges.len(),
        observed,
        observed_radius,
        pair_probes,
        sampled,
    }
}
