//! `pif-analyze` — static action-interference & model-conformance
//! analyzer CLI.
//!
//! Analyzes the paper's PIF protocol and the three baselines on small
//! topologies, printing a machine-readable JSON report to stdout (shape
//! documented in `pif_analyze::report`). Exit status: `0` when every
//! verdict matches expectations, `2` when a certified-clean protocol
//! produced diagnostics (or a mutant failed to), `1` on usage errors.
//!
//! ```text
//! pif-analyze [--protocol pif|echo|ss|tree|all] [--mutants] [--list]
//! ```

use std::process::ExitCode;

use pif_analyze::mutants::{
    CyclicCorrectionPif, DisabledFokPif, NeighborWriteSpecPif, OverclaimedInterferencePif,
    SkipCleaningPif, UnderReadEcho, WidenedCorrectionPif,
};
use pif_analyze::{analyze, report, Analysis, Code};
use pif_baselines::echo::EchoProtocol;
use pif_baselines::ss_pif::SsPifProtocol;
use pif_baselines::tree_pif::TreePifProtocol;
use pif_core::PifProtocol;
use pif_graph::{generators, Graph, ProcId};

const USAGE: &str = "usage: pif-analyze [--protocol pif|echo|ss|tree|all] [--mutants] [--list]

  --protocol NAME   analyze a single protocol (default: all)
  --mutants         analyze the mutant suite instead; expects diagnostics
  --list            list protocol/topology pairs and exit";

struct Opts {
    protocol: String,
    mutants: bool,
    list: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts { protocol: "all".to_string(), mutants: false, list: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--protocol" => {
                opts.protocol = args.next().ok_or("--protocol needs a value")?;
            }
            "--mutants" => opts.mutants = true,
            "--list" => opts.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn topology(name: &str) -> Graph {
    match name {
        "chain2" => generators::chain(2),
        "chain3" => generators::chain(3),
        "triangle" => generators::ring(3),
        "star4" => generators::star(4),
        other => panic!("unknown topology {other}"),
    }
    .expect("builtin topology must construct")
}

/// The certified suite: every pair must analyze with zero diagnostics.
fn clean_suite(which: &str) -> Vec<(&'static str, &'static str)> {
    let all = [
        ("pif", "chain2"),
        ("pif", "chain3"),
        ("pif", "triangle"),
        ("echo", "chain2"),
        ("echo", "chain3"),
        ("echo", "triangle"),
        ("ss", "chain2"),
        ("ss", "chain3"),
        ("ss", "triangle"),
        ("tree", "chain2"),
        ("tree", "chain3"),
        ("tree", "star4"),
    ];
    all.iter().copied().filter(|(p, _)| which == "all" || which == *p).collect()
}

fn run_clean(protocol: &str, topo: &str) -> Analysis {
    let g = topology(topo);
    let root = ProcId(0);
    match protocol {
        "pif" => analyze(&PifProtocol::new(root, &g), &g, protocol, topo),
        "echo" => analyze(&EchoProtocol::new(root, 7), &g, protocol, topo),
        "ss" => analyze(&SsPifProtocol::new(root, g.len(), 7), &g, protocol, topo),
        "tree" => analyze(&TreePifProtocol::on_tree(&g, root, 7), &g, protocol, topo),
        other => panic!("unknown protocol {other}"),
    }
}

/// The mutant suite: each entry must produce its expected code — and
/// *only* that code (each mutant is a negative control for exactly one
/// check).
fn run_mutants() -> Vec<(Analysis, Code)> {
    let g = topology("chain2");
    let root = ProcId(0);
    vec![
        (
            analyze(&WidenedCorrectionPif::new(root, &g), &g, "pif-widened-correction", "chain2"),
            Code::AN002,
        ),
        (
            analyze(
                &NeighborWriteSpecPif::new(root, &g),
                &g,
                "pif-neighbor-write-spec",
                "chain2",
            ),
            Code::AN001,
        ),
        (
            analyze(&UnderReadEcho::new(root, 7), &g, "echo-under-read", "chain2"),
            Code::AN003,
        ),
        (
            analyze(&SkipCleaningPif::new(root, &g), &g, "pif-skip-cleaning", "chain2"),
            Code::AN008,
        ),
        (
            analyze(&CyclicCorrectionPif::new(root, &g), &g, "pif-cyclic-correction", "chain2"),
            Code::AN009,
        ),
        (
            analyze(
                &OverclaimedInterferencePif::new(root, &g),
                &g,
                "pif-overclaimed-interference",
                "chain2",
            ),
            Code::AN010,
        ),
        (
            analyze(&DisabledFokPif::new(root, &g), &g, "pif-disabled-fok", "chain2"),
            Code::AN011,
        ),
    ]
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("pif-analyze: {msg}\n{USAGE}");
            return ExitCode::from(1);
        }
    };

    if opts.list {
        for (p, t) in clean_suite(&opts.protocol) {
            println!("{p} {t}");
        }
        return ExitCode::SUCCESS;
    }

    if opts.mutants {
        let runs = run_mutants();
        let mut ok = true;
        for (a, expected) in &runs {
            let hit = a.diagnostics.iter().any(|d| d.code == *expected);
            let exclusive = a.diagnostics.iter().all(|d| d.code == *expected);
            if !hit {
                eprintln!(
                    "pif-analyze: mutant `{}` did not trigger {expected}",
                    a.protocol
                );
                ok = false;
            } else if !exclusive {
                let stray: Vec<&str> = a
                    .diagnostics
                    .iter()
                    .filter(|d| d.code != *expected)
                    .map(|d| d.code.as_str())
                    .collect();
                eprintln!(
                    "pif-analyze: mutant `{}` fired stray codes {stray:?} besides {expected}",
                    a.protocol
                );
                ok = false;
            }
        }
        let analyses: Vec<Analysis> = runs.into_iter().map(|(a, _)| a).collect();
        println!("{}", report::render(&analyses));
        return if ok { ExitCode::SUCCESS } else { ExitCode::from(2) };
    }

    let suite = clean_suite(&opts.protocol);
    if suite.is_empty() {
        eprintln!("pif-analyze: unknown protocol `{}`\n{USAGE}", opts.protocol);
        return ExitCode::from(1);
    }
    let analyses: Vec<Analysis> = suite.iter().map(|(p, t)| run_clean(p, t)).collect();
    let mut ok = true;
    for a in &analyses {
        if !a.clean() {
            for d in &a.diagnostics {
                eprintln!(
                    "pif-analyze: {}/{}: {} {} at action `{}`: {}",
                    a.protocol,
                    a.topology,
                    d.code,
                    d.code.title(),
                    d.action,
                    d.message
                );
            }
            ok = false;
        }
    }
    println!("{}", report::render(&analyses));
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
