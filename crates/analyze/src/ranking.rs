//! Correction-convergence certificates (AN009): synthesized
//! lexicographic ranking functions over the abstract correction
//! relation.
//!
//! The paper's Theorem 1 charges the repair of an arbitrary initial
//! configuration to a bounded window: each processor performs at most
//! one correction per non-clean phase (an abnormal broadcast is demoted
//! to feedback, an abnormal feedback to cleaning) before its wave state
//! is clean. This module re-derives that argument mechanically from the
//! [abstract machine](crate::abstraction):
//!
//! 1. the **abnormal domain** `D` is every abstract state that is not
//!    locally normal and not already in the clean phase `C`;
//! 2. every state of `D` must have at least one outgoing
//!    correction-labeled edge (no abnormal state is stuck);
//! 3. the correction edges internal to `D` must be **acyclic** — a
//!    cycle is a correction livelock and no ranking function exists;
//! 4. on the resulting DAG, the longest correction path out of `D` must
//!    fit the [`CORRECTION_WINDOW`] — the Theorem 1 bound of one
//!    correction per non-clean phase;
//! 5. a lexicographic ranking certificate is synthesized: the
//!    *phase-order* component (potential B=2 > F=1 > C=0) alone when it
//!    strictly decreases on every internal edge (the PIF case:
//!    B-correction demotes B→F, F-correction F→C), with a
//!    *correction-depth* component (longest remaining path, which
//!    strictly decreases on any DAG) appended or substituted otherwise.
//!
//! Abnormal states already in phase `C` (e.g. the ss baseline's
//! BFS-inconsistent states, whose `Dist`-correction repairs the spanning
//! tree while the wave stays clean) are *outside* `D`: their repair is a
//! tree-layer argument, not a wave-phase one, and the wave-phase
//! certificate neither needs nor constrains it.

use std::collections::HashSet;

use pif_daemon::PhaseTag;

use crate::abstraction::{phase_name, AbstractMachine, RoleMachine, PHASE_C};
use crate::{Code, Diagnostic, DomainModel};

/// The Theorem 1 correction window: at most one correction per
/// non-clean phase (B and F), so any correction path of one processor
/// has length ≤ 2 before its wave state is clean.
pub const CORRECTION_WINDOW: usize = 2;

/// A synthesized convergence certificate for the correction relation.
#[derive(Clone, Debug)]
pub struct RankingCertificate {
    /// Lexicographic components, outermost first (`"phase-order"`,
    /// `"correction-depth"`). Empty when the abstraction was
    /// unavailable.
    pub components: Vec<&'static str>,
    /// Longest correction path out of the abnormal domain, over all
    /// roles.
    pub max_depth: usize,
    /// Number of abnormal non-clean abstract states ranked.
    pub abnormal_states: usize,
    /// The window `max_depth` is checked against.
    pub window: usize,
    /// Whether the certificate is valid (no AN009 was emitted).
    pub certified: bool,
}

impl RankingCertificate {
    /// The placeholder certificate for protocols without a phase
    /// register (no abstraction, nothing certified).
    pub fn unavailable() -> Self {
        RankingCertificate {
            components: Vec::new(),
            max_depth: 0,
            abnormal_states: 0,
            window: CORRECTION_WINDOW,
            certified: false,
        }
    }
}

/// The phase potential the certificate's first component uses:
/// B=2 > F=1 > C=0 (corrections move toward C).
fn potential(phase: u64) -> u64 {
    PHASE_C - phase.min(PHASE_C)
}

struct MachineVerdict {
    abnormal: usize,
    max_depth: usize,
    /// Some internal edge keeps the phase potential equal (needs the
    /// depth component as a tiebreaker).
    pot_tie: bool,
    /// Some internal edge *increases* the phase potential (phase-order
    /// cannot be a lexicographic component at all).
    pot_increase: bool,
}

/// Three-color DFS marks for the acyclicity pass.
const WHITE: u8 = 0;
const GRAY: u8 = 1;
const BLACK: u8 = 2;

/// Longest correction path out of D from `si` (each edge counts 1),
/// memoized over the acyclic internal relation. `exits` ⊇ `internal`,
/// so a state with any correction edge has depth ≥ 1.
fn depth_of(
    si: usize,
    exits: &[Vec<usize>],
    internal: &[Vec<usize>],
    edges: &[crate::abstraction::AbsEdge],
    depth: &mut Vec<Option<usize>>,
) -> usize {
    if let Some(d) = depth[si] {
        return d;
    }
    let mut d = usize::from(!exits[si].is_empty());
    for &ei in &internal[si] {
        let sub = 1 + depth_of(edges[ei].to, exits, internal, edges, depth);
        d = d.max(sub);
    }
    depth[si] = Some(d);
    d
}

fn check_machine<P: DomainModel>(
    m: &RoleMachine,
    protocol: &P,
    out: &mut Vec<Diagnostic>,
) -> MachineVerdict {
    let names = protocol.action_names();
    let root = protocol.analysis_root();
    let class = |p| if root == Some(p) { "root" } else { "non-root" };

    let in_domain: Vec<bool> =
        m.states.iter().map(|s| !s.normal && s.phase != PHASE_C).collect();
    let abnormal = in_domain.iter().filter(|&&d| d).count();

    // Correction edges leaving each domain state; `internal` keeps only
    // edges staying inside D.
    let mut exits: Vec<Vec<usize>> = vec![Vec::new(); m.states.len()];
    let mut internal: Vec<Vec<usize>> = vec![Vec::new(); m.states.len()];
    for (ei, e) in m.edges.iter().enumerate() {
        if protocol.classify(e.action) == PhaseTag::Correction && in_domain[e.from] {
            exits[e.from].push(ei);
            if in_domain[e.to] {
                internal[e.from].push(ei);
            }
        }
    }

    let mut verdict =
        MachineVerdict { abnormal, max_depth: 0, pot_tie: false, pot_increase: false };

    // (2) no stuck abnormal state.
    for (si, s) in m.states.iter().enumerate() {
        if in_domain[si] && exits[si].is_empty() {
            out.push(Diagnostic {
                code: Code::AN009,
                action: String::from("-"),
                other_action: None,
                proc: root.unwrap_or(pif_graph::ProcId(0)),
                processor_class: class(root.unwrap_or(pif_graph::ProcId(0))),
                register: None,
                witness: Some(format!("{}: {s:?}", m.role.name())),
                message: format!(
                    "abnormal abstract state in phase {} has no enabled correction — \
                     it can never reach the clean phase",
                    phase_name(s.phase)
                ),
            });
        }
    }

    // (3) acyclicity via iterative three-color DFS over internal edges.
    let mut color = vec![WHITE; m.states.len()];
    let mut cycle: Option<usize> = None;
    for start in 0..m.states.len() {
        if !in_domain[start] || color[start] != WHITE {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(&ei) = internal[node].get(*next) {
                *next += 1;
                let to = m.edges[ei].to;
                match color[to] {
                    WHITE => {
                        color[to] = GRAY;
                        stack.push((to, 0));
                    }
                    GRAY => {
                        cycle = Some(ei);
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
            if cycle.is_some() {
                break;
            }
        }
        if cycle.is_some() {
            break;
        }
    }
    if let Some(ei) = cycle {
        let e = &m.edges[ei];
        out.push(Diagnostic {
            code: Code::AN009,
            action: names.get(e.action.index()).copied().unwrap_or("?").to_string(),
            other_action: None,
            proc: e.witness_proc,
            processor_class: class(e.witness_proc),
            register: None,
            witness: Some(format!(
                "{}: {:?} -> {:?}",
                m.role.name(),
                m.states[e.from],
                m.states[e.to]
            )),
            message: "correction relation has a cycle among abnormal states — no \
                      ranking function exists and corrections can livelock"
                .to_string(),
        });
        // Depth is undefined on a cyclic relation; the cycle finding
        // subsumes the window check.
        return verdict;
    }

    // (4) longest path out of D (each exit edge counts 1), memoized over
    // the DAG; (5) component synthesis flags.
    let mut depth: Vec<Option<usize>> = vec![None; m.states.len()];
    for (si, &ind) in in_domain.iter().enumerate() {
        if ind {
            let d = depth_of(si, &exits, &internal, &m.edges, &mut depth);
            verdict.max_depth = verdict.max_depth.max(d);
            if d > CORRECTION_WINDOW {
                out.push(Diagnostic {
                    code: Code::AN009,
                    action: String::from("-"),
                    other_action: None,
                    proc: root.unwrap_or(pif_graph::ProcId(0)),
                    processor_class: class(root.unwrap_or(pif_graph::ProcId(0))),
                    register: None,
                    witness: Some(format!("{}: {:?}", m.role.name(), m.states[si])),
                    message: format!(
                        "correction path of length {d} exceeds the Theorem 1 window \
                         ({CORRECTION_WINDOW})"
                    ),
                });
            }
        }
    }
    for ints in &internal {
        for &ei in ints {
            let e = &m.edges[ei];
            let (pf, pt) =
                (potential(m.states[e.from].phase), potential(m.states[e.to].phase));
            if pf == pt {
                verdict.pot_tie = true;
            }
            if pf < pt {
                verdict.pot_increase = true;
            }
        }
    }
    verdict
}

/// **AN009** — checks correction convergence over every role machine
/// and synthesizes the lexicographic ranking certificate described in
/// the module docs. Emits a diagnostic per stuck state, per cycle, and
/// per window overflow; the returned certificate reports
/// `certified = false` whenever any was emitted.
pub fn check_convergence<P: DomainModel>(
    machine: &AbstractMachine,
    protocol: &P,
    out: &mut Vec<Diagnostic>,
) -> RankingCertificate {
    let before = out.len();
    let mut cert = RankingCertificate {
        components: Vec::new(),
        max_depth: 0,
        abnormal_states: 0,
        window: CORRECTION_WINDOW,
        certified: false,
    };
    let mut pot_tie = false;
    let mut pot_increase = false;
    for m in &machine.machines {
        let v = check_machine(m, protocol, out);
        cert.abnormal_states += v.abnormal;
        cert.max_depth = cert.max_depth.max(v.max_depth);
        pot_tie |= v.pot_tie;
        pot_increase |= v.pot_increase;
    }
    // Smallest lexicographic certificate that strictly decreases on
    // every internal correction edge: phase potential alone when it
    // always drops, with the longest-remaining-path layer appended (or
    // substituted, if the potential ever climbs) otherwise — the depth
    // component strictly decreases on any DAG by construction.
    let mut components: Vec<&'static str> = Vec::new();
    if !pot_increase {
        components.push("phase-order");
    }
    if pot_tie || pot_increase {
        components.push("correction-depth");
    }
    cert.components = components;
    cert.certified = out.len() == before;
    // Deduplicate identical findings across roles sharing a witness.
    let mut seen: HashSet<String> = HashSet::new();
    let mut keep = before;
    for i in before..out.len() {
        let key = format!(
            "{:?}|{}|{}|{}",
            out[i].code,
            out[i].action,
            out[i].message,
            out[i].witness.as_deref().unwrap_or_default()
        );
        if seen.insert(key) {
            out.swap(keep, i);
            keep += 1;
        }
    }
    out.truncate(keep);
    cert
}
