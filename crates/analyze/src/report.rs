//! Machine-readable JSON report for analyzer runs.
//!
//! The report is hand-rolled on top of `pif_daemon::json` (the same
//! dependency-free module the trace replayer uses): [`render`] emits the
//! document and the daemon's [`pif_daemon::json::parse`] reads it back,
//! which is exactly how the gate script and the round-trip test validate
//! the shape.
//!
//! Top-level shape:
//!
//! ```json
//! {
//!   "analyzer": "pif-analyze",
//!   "version": 1,
//!   "total_diagnostics": 0,
//!   "runs": [
//!     {
//!       "protocol": "pif", "topology": "chain2", "processors": 2,
//!       "actions": ["B-action", ...],
//!       "views_checked": 288, "probes": 1930,
//!       "diagnostics": [
//!         {"code": "AN002", "title": "...", "action": "...",
//!          "other_action": "...", "proc": 1,
//!          "processor_class": "non-root", "register": null,
//!          "witness": "...", "message": "..."}
//!       ],
//!       "interference": {"edges": [
//!         {"src": "B-action", "dst": "F-action",
//!          "across_link": true, "registers": ["phase"]}
//!       ]},
//!       "abstract": [
//!         {"role": "root", "states": 12, "edges": 30}
//!       ],
//!       "ranking": {"components": ["phase-order"], "max_depth": 1,
//!                   "abnormal_states": 4, "window": 2,
//!                   "certified": true},
//!       "derived": {"derived_edges": 77, "derived_radius": 1,
//!                   "advertised_edges": 49, "observed_edges": 40,
//!                   "observed_radius": 1, "pair_probes": 120000,
//!                   "sampled": false}
//!     }
//!   ]
//! }
//! ```
//!
//! Version history: v1 carried `diagnostics` + `interference`; v2 (this
//! PR) adds the `abstract`, `ranking` and `derived` sections for the
//! AN008–AN011 checks.

use std::fmt::Write as _;

use pif_daemon::json::write_string;

use crate::{Analysis, Diagnostic, InterferenceEdge};

/// Report format version, bumped on any shape change.
pub const REPORT_VERSION: u64 = 2;

fn push_str_field(out: &mut String, key: &str, value: &str) {
    write_string(key, out);
    out.push(':');
    write_string(value, out);
}

fn push_opt_field(out: &mut String, key: &str, value: Option<&str>) {
    write_string(key, out);
    out.push(':');
    match value {
        Some(v) => write_string(v, out),
        None => out.push_str("null"),
    }
}

fn render_diagnostic(d: &Diagnostic, out: &mut String) {
    out.push('{');
    push_str_field(out, "code", d.code.as_str());
    out.push(',');
    push_str_field(out, "title", d.code.title());
    out.push(',');
    push_str_field(out, "action", &d.action);
    out.push(',');
    push_opt_field(out, "other_action", d.other_action.as_deref());
    out.push(',');
    let _ = write!(out, "\"proc\":{},", d.proc.index());
    push_str_field(out, "processor_class", d.processor_class);
    out.push(',');
    push_opt_field(out, "register", d.register.as_deref());
    out.push(',');
    push_opt_field(out, "witness", d.witness.as_deref());
    out.push(',');
    push_str_field(out, "message", &d.message);
    out.push('}');
}

fn render_edge(e: &InterferenceEdge, out: &mut String) {
    out.push('{');
    push_str_field(out, "src", &e.src);
    out.push(',');
    push_str_field(out, "dst", &e.dst);
    out.push(',');
    let _ = write!(out, "\"across_link\":{},", e.across_link);
    out.push_str("\"registers\":[");
    for (i, r) in e.registers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(r, out);
    }
    out.push_str("]}");
}

fn render_run(a: &Analysis, out: &mut String) {
    out.push('{');
    push_str_field(out, "protocol", &a.protocol);
    out.push(',');
    push_str_field(out, "topology", &a.topology);
    out.push(',');
    let _ = write!(out, "\"processors\":{},", a.processors);
    out.push_str("\"actions\":[");
    for (i, name) in a.actions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(name, out);
    }
    out.push_str("],");
    let _ = write!(out, "\"views_checked\":{},\"probes\":{},", a.views_checked, a.probes);
    out.push_str("\"diagnostics\":[");
    for (i, d) in a.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_diagnostic(d, out);
    }
    out.push_str("],");
    out.push_str("\"interference\":{\"edges\":[");
    for (i, e) in a.interference.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_edge(e, out);
    }
    out.push_str("]},");
    out.push_str("\"abstract\":[");
    for (i, r) in a.abstract_roles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(out, "role", r.role.name());
        let _ = write!(out, ",\"states\":{},\"edges\":{}}}", r.states, r.edges);
    }
    out.push_str("],");
    out.push_str("\"ranking\":{\"components\":[");
    for (i, c) in a.ranking.components.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(c, out);
    }
    let _ = write!(
        out,
        "],\"max_depth\":{},\"abnormal_states\":{},\"window\":{},\"certified\":{}}},",
        a.ranking.max_depth, a.ranking.abnormal_states, a.ranking.window, a.ranking.certified
    );
    let _ = write!(
        out,
        "\"derived\":{{\"derived_edges\":{},\"derived_radius\":{},\
         \"advertised_edges\":{},\"observed_edges\":{},\"observed_radius\":{},\
         \"pair_probes\":{},\"sampled\":{}}}",
        a.derived.derived_edges,
        a.derived.derived_radius,
        a.derived.advertised_edges,
        a.derived.observed.len(),
        a.derived.observed_radius,
        a.derived.pair_probes,
        a.derived.sampled
    );
    out.push('}');
}

/// Renders the full report document for a batch of analyses.
pub fn render(analyses: &[Analysis]) -> String {
    let total: usize = analyses.iter().map(|a| a.diagnostics.len()).sum();
    let mut out = String::new();
    out.push('{');
    push_str_field(&mut out, "analyzer", "pif-analyze");
    out.push(',');
    let _ = write!(out, "\"version\":{REPORT_VERSION},\"total_diagnostics\":{total},");
    out.push_str("\"runs\":[");
    for (i, a) in analyses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_run(a, &mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use pif_core::PifProtocol;
    use pif_graph::{generators, ProcId};

    #[test]
    fn report_round_trips_through_daemon_json_parser() {
        let g = generators::chain(2).unwrap();
        let proto = PifProtocol::new(ProcId(0), &g);
        let a = analyze(&proto, &g, "pif", "chain2");
        let text = render(std::slice::from_ref(&a));
        let doc = pif_daemon::json::parse(&text).expect("report must be valid JSON");
        assert_eq!(doc.get("analyzer").and_then(|j| j.as_str()), Some("pif-analyze"));
        assert_eq!(doc.get("version").and_then(pif_daemon::json::Json::as_u64), Some(REPORT_VERSION));
        assert_eq!(doc.get("total_diagnostics").and_then(pif_daemon::json::Json::as_u64), Some(0));
        let runs = doc.get("runs").and_then(|j| j.as_array()).unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.get("protocol").and_then(|j| j.as_str()), Some("pif"));
        assert_eq!(run.get("processors").and_then(pif_daemon::json::Json::as_u64), Some(2));
        assert_eq!(
            run.get("actions").and_then(|j| j.as_array()).map(<[_]>::len),
            Some(7)
        );
        let edges = run
            .get("interference")
            .and_then(|j| j.get("edges"))
            .and_then(|j| j.as_array())
            .unwrap();
        assert!(!edges.is_empty());
        for e in edges {
            assert!(e.get("src").and_then(|j| j.as_str()).is_some());
            assert!(e.get("dst").and_then(|j| j.as_str()).is_some());
            assert!(e.get("across_link").is_some());
        }
        let roles = run.get("abstract").and_then(|j| j.as_array()).unwrap();
        assert!(!roles.is_empty(), "PIF must yield at least the root role machine");
        for r in roles {
            assert!(r.get("role").and_then(|j| j.as_str()).is_some());
            assert!(r.get("states").and_then(pif_daemon::json::Json::as_u64).unwrap() > 0);
        }
        let ranking = run.get("ranking").unwrap();
        assert_eq!(ranking.get("certified").and_then(pif_daemon::json::Json::as_bool), Some(true));
        assert!(ranking.get("components").and_then(|j| j.as_array()).map(<[_]>::len).unwrap() > 0);
        let derived = run.get("derived").unwrap();
        assert_eq!(
            derived.get("derived_radius").and_then(pif_daemon::json::Json::as_u64),
            Some(1)
        );
        assert!(
            derived.get("pair_probes").and_then(pif_daemon::json::Json::as_u64).unwrap() > 0
        );
    }

    #[test]
    fn witness_strings_are_escaped() {
        // Witness strings come from Debug formatting and contain quotes
        // in pathological cases; write_string must keep the document
        // parseable. Build a synthetic diagnostic to exercise escaping.
        let mut a = analyze(
            &PifProtocol::new(ProcId(0), &generators::chain(2).unwrap()),
            &generators::chain(2).unwrap(),
            "pif\"quoted",
            "chain\\2",
        );
        a.protocol = "pif\"quoted".to_string();
        let text = render(std::slice::from_ref(&a));
        let doc = pif_daemon::json::parse(&text).unwrap();
        let runs = doc.get("runs").and_then(|j| j.as_array()).unwrap();
        assert_eq!(
            runs[0].get("protocol").and_then(|j| j.as_str()),
            Some("pif\"quoted")
        );
    }
}
