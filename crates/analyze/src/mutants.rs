//! Deliberately broken protocol variants used to prove the analyzer's
//! checks have teeth.
//!
//! Each mutant wraps a correct protocol and re-introduces a bug class the
//! paper's design rules out: a widened guard that destroys priority
//! determinism ([`WidenedCorrectionPif`] → `AN002`), a declared write to a
//! neighbor register that escapes the locally shared memory model
//! ([`NeighborWriteSpecPif`] → `AN001`), an action spec that hides a
//! real read dependence ([`UnderReadEcho`] → `AN003`), a cleaning that
//! re-broadcasts ([`SkipCleaningPif`] → `AN008`), a correction that
//! livelocks ([`CyclicCorrectionPif`] → `AN009`), a hand premise claiming
//! interference the specs cannot support ([`OverclaimedInterferencePif`]
//! → `AN010`), and a guard that can never fire ([`DisabledFokPif`] →
//! `AN011`). Each mutant is constructed to trip *only* its own check —
//! the exclusivity the `mutant_protocols` integration tests pin down.

use pif_baselines::echo::{EchoProtocol, EchoState, ECHO_B};
use pif_core::protocol::{B_CORRECTION, C_ACTION, COUNT_ACTION, FOK_ACTION, F_CORRECTION};
use pif_core::{Phase, PifProtocol, PifState};
use pif_daemon::{ActionId, ActionSpec, PhaseTag, Protocol, RegAccess, View};
use pif_graph::{Graph, ProcId};

use crate::DomainModel;

/// Delegates the constructor and the [`DomainModel`] surface to an inner
/// [`PifProtocol`], keeping the PIF-based mutants below down to their
/// actual deviation.
macro_rules! delegate_pif_mutant {
    ($name:ident) => {
        impl $name {
            /// Wraps the correct protocol for `graph` rooted at `root`.
            pub fn new(root: ProcId, graph: &Graph) -> Self {
                $name { inner: PifProtocol::new(root, graph) }
            }
        }

        impl DomainModel for $name {
            fn registers(&self) -> &'static [&'static str] {
                self.inner.registers()
            }

            fn domain(&self, graph: &Graph, p: ProcId) -> Vec<PifState> {
                self.inner.domain(graph, p)
            }

            fn project(&self, s: &PifState) -> Vec<u64> {
                self.inner.project(s)
            }

            fn analysis_root(&self) -> Option<ProcId> {
                self.inner.analysis_root()
            }
        }
    };
}

/// A PIF variant whose `F-correction` guard drops the paper's
/// `Pif_p = F` precondition: the correction fires from *any* abnormal
/// non-root phase. An abnormal broadcast-phase processor is then
/// simultaneously `B-correction`- and `F-correction`-enabled — both
/// priority class 0 — so the prioritized-guard determinism argument
/// (Lemma "at most one action per class per processor") collapses. The
/// widened edge itself stays phase-legal (`B → C` is a permitted
/// correction target, and the extra exit only shortens correction
/// paths), so the analyzer must flag `AN002` and nothing else.
#[derive(Clone, Debug)]
pub struct WidenedCorrectionPif {
    inner: PifProtocol,
}

delegate_pif_mutant!(WidenedCorrectionPif);

impl Protocol for WidenedCorrectionPif {
    type State = PifState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, PifState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
        // The mutation: `Pif_p = F` dropped from the F-correction guard —
        // it now also fires from an abnormal broadcast phase.
        if view.pid() != self.inner.root()
            && !self.inner.normal(view)
            && view.me().phase == Phase::B
        {
            out.push(F_CORRECTION);
        }
    }

    fn execute(&self, view: View<'_, PifState>, action: ActionId) -> PifState {
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        self.inner.action_spec(action)
    }

    fn has_action_specs(&self) -> bool {
        true
    }

    fn locally_normal(&self, view: View<'_, PifState>) -> bool {
        self.inner.locally_normal(view)
    }
}

/// A PIF variant whose `Count`-action spec *declares* a write to the
/// neighbors' `count` registers — the kind of shared-variable shortcut
/// the locally shared memory model forbids (a processor may read
/// neighbor registers but write only its own). The behavior is
/// unchanged (the simulator cannot even express a neighbor write); the
/// analyzer must reject the declaration statically with `AN001`.
#[derive(Clone, Debug)]
pub struct NeighborWriteSpecPif {
    inner: PifProtocol,
}

impl NeighborWriteSpecPif {
    /// Wraps the correct protocol for `graph` rooted at `root`.
    pub fn new(root: ProcId, graph: &Graph) -> Self {
        NeighborWriteSpecPif { inner: PifProtocol::new(root, graph) }
    }
}

impl Protocol for NeighborWriteSpecPif {
    type State = PifState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, PifState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
    }

    fn execute(&self, view: View<'_, PifState>, action: ActionId) -> PifState {
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        const WRITES_BAD: &[RegAccess] = &[
            RegAccess::own("count"),
            RegAccess::own("fok"),
            RegAccess::neighbor("count"),
        ];
        let spec = self.inner.action_spec(action);
        if action == COUNT_ACTION {
            ActionSpec { writes: WRITES_BAD, ..spec }
        } else {
            spec
        }
    }

    fn has_action_specs(&self) -> bool {
        true
    }

    fn locally_normal(&self, view: View<'_, PifState>) -> bool {
        self.inner.locally_normal(view)
    }
}

impl DomainModel for NeighborWriteSpecPif {
    fn registers(&self) -> &'static [&'static str] {
        self.inner.registers()
    }

    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<PifState> {
        self.inner.domain(graph, p)
    }

    fn project(&self, s: &PifState) -> Vec<u64> {
        self.inner.project(s)
    }

    fn analysis_root(&self) -> Option<ProcId> {
        self.inner.analysis_root()
    }
}

/// An echo variant whose `B-action` spec omits the `neighbor.val` read —
/// but the statement still copies the broadcasting parent's value
/// register. The declared read-set under-approximates the observed one,
/// so the interference graph built from it would silently miss a real
/// write→read edge. Differential probing must catch it: `AN003`.
#[derive(Clone, Debug)]
pub struct UnderReadEcho {
    inner: EchoProtocol,
}

impl UnderReadEcho {
    /// Wraps the correct echo protocol rooted at `root`.
    pub fn new(root: ProcId, broadcast_val: u64) -> Self {
        UnderReadEcho { inner: EchoProtocol::new(root, broadcast_val) }
    }
}

impl Protocol for UnderReadEcho {
    type State = EchoState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, EchoState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
    }

    fn execute(&self, view: View<'_, EchoState>, action: ActionId) -> EchoState {
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        const READS_HIDDEN: &[RegAccess] =
            &[RegAccess::own("phase"), RegAccess::neighbor("phase")];
        let spec = self.inner.action_spec(action);
        if action == ECHO_B {
            ActionSpec { reads: READS_HIDDEN, ..spec }
        } else {
            spec
        }
    }

    fn has_action_specs(&self) -> bool {
        true
    }
}

impl DomainModel for UnderReadEcho {
    fn registers(&self) -> &'static [&'static str] {
        self.inner.registers()
    }

    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<EchoState> {
        self.inner.domain(graph, p)
    }

    fn project(&self, s: &EchoState) -> Vec<u64> {
        self.inner.project(s)
    }

    fn analysis_root(&self) -> Option<ProcId> {
        self.inner.analysis_root()
    }
}

/// A PIF variant whose `C-action` *statement* re-broadcasts: cleaning
/// sets `Pif := B` instead of `C`. The guard, spec, and declared write
/// set are untouched (`phase` is still the only register written), so
/// the static and differential checks stay silent — but the abstract
/// phase machine now carries a `Cleaning`-tagged edge `F → B`, broadcast
/// is re-entered without ever passing the clean phase, and the B→F→C
/// cycle discipline of Section 3 is gone. The analyzer must flag
/// `AN008`.
#[derive(Clone, Debug)]
pub struct SkipCleaningPif {
    inner: PifProtocol,
}

delegate_pif_mutant!(SkipCleaningPif);

impl Protocol for SkipCleaningPif {
    type State = PifState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, PifState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
    }

    fn execute(&self, view: View<'_, PifState>, action: ActionId) -> PifState {
        let mut s = self.inner.execute(view, action);
        if action == C_ACTION {
            // The mutation: cleaning re-enters the broadcast phase.
            s.phase = Phase::B;
        }
        s
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        self.inner.action_spec(action)
    }

    fn has_action_specs(&self) -> bool {
        true
    }

    fn locally_normal(&self, view: View<'_, PifState>) -> bool {
        self.inner.locally_normal(view)
    }
}

/// A PIF variant whose non-root `B-correction` no longer demotes the
/// phase: it flips the `Fok` flag and *stays in `B`*. The correction
/// edge `B → B` keeps the phase-order rules happy (corrections may stay
/// outside `B`-entry), the flipped register is declared in the write
/// set, and guards are untouched — but an abnormal broadcast state now
/// corrects into another abnormal broadcast state and back, a correction
/// livelock. No ranking function exists and the Theorem 1 window is
/// unreachable: the analyzer must flag `AN009`.
#[derive(Clone, Debug)]
pub struct CyclicCorrectionPif {
    inner: PifProtocol,
}

delegate_pif_mutant!(CyclicCorrectionPif);

impl Protocol for CyclicCorrectionPif {
    type State = PifState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, PifState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
    }

    fn execute(&self, view: View<'_, PifState>, action: ActionId) -> PifState {
        if action == B_CORRECTION && view.pid() != self.inner.root() {
            // The mutation: flip `Fok`, keep broadcasting.
            let mut s = *view.me();
            s.fok = !s.fok;
            return s;
        }
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        // The flipped flag is declared, so write-set conformance (AN001)
        // holds; over-declaring `phase` for the root's unchanged branch
        // is the safe direction AN003 permits.
        const WRITES_CYCLE: &[RegAccess] =
            &[RegAccess::own("phase"), RegAccess::own("fok")];
        let spec = self.inner.action_spec(action);
        if action == B_CORRECTION {
            ActionSpec { writes: WRITES_CYCLE, ..spec }
        } else {
            spec
        }
    }

    fn has_action_specs(&self) -> bool {
        true
    }

    fn locally_normal(&self, view: View<'_, PifState>) -> bool {
        self.inner.locally_normal(view)
    }
}

/// A behaviorally *correct* PIF whose hand-declared interference premise
/// over-claims: it advertises an own-processor `Fok-action → B-action`
/// edge, but `Fok-action` writes only `fok` and `B-action`'s own-scope
/// reads are limited to `phase` — the spec-derived graph has no such
/// edge, so the machine derivation cannot account for the claim. The
/// derived-vs-advertised containment check must flag `AN010` (and
/// nothing else: the runnable protocol is the unmodified PIF).
#[derive(Clone, Debug)]
pub struct OverclaimedInterferencePif {
    inner: PifProtocol,
}

impl OverclaimedInterferencePif {
    /// Wraps the correct protocol for `graph` rooted at `root`.
    pub fn new(root: ProcId, graph: &Graph) -> Self {
        OverclaimedInterferencePif { inner: PifProtocol::new(root, graph) }
    }
}

impl DomainModel for OverclaimedInterferencePif {
    fn registers(&self) -> &'static [&'static str] {
        self.inner.registers()
    }

    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<PifState> {
        self.inner.domain(graph, p)
    }

    fn project(&self, s: &PifState) -> Vec<u64> {
        self.inner.project(s)
    }

    fn analysis_root(&self) -> Option<ProcId> {
        self.inner.analysis_root()
    }

    fn advertised_interference(&self) -> crate::InterferenceGraph {
        // The mutation lives here, not in the transition system: one
        // own-scope edge the declared read/write sets cannot produce.
        let mut g = crate::InterferenceGraph::from_protocol(self, self.registers());
        g.edges.push(crate::InterferenceEdge {
            src: "Fok-action".to_string(),
            dst: "B-action".to_string(),
            across_link: false,
            registers: Vec::new(),
        });
        g
    }
}

impl Protocol for OverclaimedInterferencePif {
    type State = PifState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, PifState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
    }

    fn execute(&self, view: View<'_, PifState>, action: ActionId) -> PifState {
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        self.inner.action_spec(action)
    }

    fn has_action_specs(&self) -> bool {
        true
    }

    fn locally_normal(&self, view: View<'_, PifState>) -> bool {
        self.inner.locally_normal(view)
    }
}

/// A PIF variant whose `Fok-action` guard is pinned false: the action is
/// still named, classified, and fully spec'd, but no view ever enables
/// it. Nothing dynamic can go wrong with an action that never fires —
/// every other check stays silent — yet the abstract machine proves the
/// action unreachable in *any* configuration, which is exactly the
/// dead-code finding `AN011` exists for.
#[derive(Clone, Debug)]
pub struct DisabledFokPif {
    inner: PifProtocol,
}

delegate_pif_mutant!(DisabledFokPif);

impl Protocol for DisabledFokPif {
    type State = PifState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, PifState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
        // The mutation: the Fok guard never holds.
        out.retain(|&a| a != FOK_ACTION);
    }

    fn execute(&self, view: View<'_, PifState>, action: ActionId) -> PifState {
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        self.inner.action_spec(action)
    }

    fn has_action_specs(&self) -> bool {
        true
    }

    fn locally_normal(&self, view: View<'_, PifState>) -> bool {
        self.inner.locally_normal(view)
    }
}
