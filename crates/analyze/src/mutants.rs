//! Deliberately broken protocol variants used to prove the analyzer's
//! checks have teeth.
//!
//! Each mutant wraps a correct protocol and re-introduces a bug class the
//! paper's design rules out: a widened guard that destroys priority
//! determinism ([`WidenedFeedbackPif`] → `AN002`), a declared write to a
//! neighbor register that escapes the locally shared memory model
//! ([`NeighborWriteSpecPif`] → `AN001`), and an action spec that hides a
//! real read dependence ([`UnderReadEcho`] → `AN003`).

use pif_baselines::echo::{EchoProtocol, EchoState, ECHO_B};
use pif_core::protocol::{COUNT_ACTION, F_ACTION};
use pif_core::{Phase, PifProtocol, PifState};
use pif_daemon::{ActionId, ActionSpec, PhaseTag, Protocol, RegAccess, View};
use pif_graph::{Graph, ProcId};

use crate::DomainModel;

/// A PIF variant whose `F-action` guard drops the paper's `phase = B`
/// precondition: feedback fires from *any* non-F phase once the `Fok`
/// flag is up. A clean processor next to a broadcasting root is then
/// simultaneously `B`- and `F`-enabled — both priority class 1 — so the
/// prioritized-guard determinism argument (Lemma "at most one wave action
/// per processor") collapses. The analyzer must flag `AN002`.
#[derive(Clone, Debug)]
pub struct WidenedFeedbackPif {
    inner: PifProtocol,
}

impl WidenedFeedbackPif {
    /// Wraps the correct protocol for `graph` rooted at `root`.
    pub fn new(root: ProcId, graph: &Graph) -> Self {
        WidenedFeedbackPif { inner: PifProtocol::new(root, graph) }
    }
}

impl Protocol for WidenedFeedbackPif {
    type State = PifState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, PifState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
        out.retain(|&a| a != F_ACTION);
        let me = view.me();
        let ready = if view.pid() == self.inner.root() {
            self.inner.bfree(view)
        } else {
            self.inner.bleaf(view)
        };
        // The mutation: `me.phase == Phase::B` became `me.phase != Phase::F`.
        if me.phase != Phase::F && self.inner.normal(view) && me.fok && ready {
            out.push(F_ACTION);
        }
    }

    fn execute(&self, view: View<'_, PifState>, action: ActionId) -> PifState {
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        self.inner.action_spec(action)
    }

    fn has_action_specs(&self) -> bool {
        true
    }

    fn locally_normal(&self, view: View<'_, PifState>) -> bool {
        self.inner.locally_normal(view)
    }
}

impl DomainModel for WidenedFeedbackPif {
    fn registers(&self) -> &'static [&'static str] {
        self.inner.registers()
    }

    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<PifState> {
        self.inner.domain(graph, p)
    }

    fn project(&self, s: &PifState) -> Vec<u64> {
        self.inner.project(s)
    }

    fn analysis_root(&self) -> Option<ProcId> {
        self.inner.analysis_root()
    }
}

/// A PIF variant whose `Count`-action spec *declares* a write to the
/// neighbors' `count` registers — the kind of shared-variable shortcut
/// the locally shared memory model forbids (a processor may read
/// neighbor registers but write only its own). The behavior is
/// unchanged (the simulator cannot even express a neighbor write); the
/// analyzer must reject the declaration statically with `AN001`.
#[derive(Clone, Debug)]
pub struct NeighborWriteSpecPif {
    inner: PifProtocol,
}

impl NeighborWriteSpecPif {
    /// Wraps the correct protocol for `graph` rooted at `root`.
    pub fn new(root: ProcId, graph: &Graph) -> Self {
        NeighborWriteSpecPif { inner: PifProtocol::new(root, graph) }
    }
}

impl Protocol for NeighborWriteSpecPif {
    type State = PifState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, PifState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
    }

    fn execute(&self, view: View<'_, PifState>, action: ActionId) -> PifState {
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        const WRITES_BAD: &[RegAccess] = &[
            RegAccess::own("count"),
            RegAccess::own("fok"),
            RegAccess::neighbor("count"),
        ];
        let spec = self.inner.action_spec(action);
        if action == COUNT_ACTION {
            ActionSpec { writes: WRITES_BAD, ..spec }
        } else {
            spec
        }
    }

    fn has_action_specs(&self) -> bool {
        true
    }

    fn locally_normal(&self, view: View<'_, PifState>) -> bool {
        self.inner.locally_normal(view)
    }
}

impl DomainModel for NeighborWriteSpecPif {
    fn registers(&self) -> &'static [&'static str] {
        self.inner.registers()
    }

    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<PifState> {
        self.inner.domain(graph, p)
    }

    fn project(&self, s: &PifState) -> Vec<u64> {
        self.inner.project(s)
    }

    fn analysis_root(&self) -> Option<ProcId> {
        self.inner.analysis_root()
    }
}

/// An echo variant whose `B-action` spec omits the `neighbor.val` read —
/// but the statement still copies the broadcasting parent's value
/// register. The declared read-set under-approximates the observed one,
/// so the interference graph built from it would silently miss a real
/// write→read edge. Differential probing must catch it: `AN003`.
#[derive(Clone, Debug)]
pub struct UnderReadEcho {
    inner: EchoProtocol,
}

impl UnderReadEcho {
    /// Wraps the correct echo protocol rooted at `root`.
    pub fn new(root: ProcId, broadcast_val: u64) -> Self {
        UnderReadEcho { inner: EchoProtocol::new(root, broadcast_val) }
    }
}

impl Protocol for UnderReadEcho {
    type State = EchoState;

    fn action_names(&self) -> &'static [&'static str] {
        self.inner.action_names()
    }

    fn enabled_actions(&self, view: View<'_, EchoState>, out: &mut Vec<ActionId>) {
        self.inner.enabled_actions(view, out);
    }

    fn execute(&self, view: View<'_, EchoState>, action: ActionId) -> EchoState {
        self.inner.execute(view, action)
    }

    fn classify(&self, action: ActionId) -> PhaseTag {
        self.inner.classify(action)
    }

    fn action_spec(&self, action: ActionId) -> ActionSpec {
        const READS_HIDDEN: &[RegAccess] =
            &[RegAccess::own("phase"), RegAccess::neighbor("phase")];
        let spec = self.inner.action_spec(action);
        if action == ECHO_B {
            ActionSpec { reads: READS_HIDDEN, ..spec }
        } else {
            spec
        }
    }

    fn has_action_specs(&self) -> bool {
        true
    }
}

impl DomainModel for UnderReadEcho {
    fn registers(&self) -> &'static [&'static str] {
        self.inner.registers()
    }

    fn domain(&self, graph: &Graph, p: ProcId) -> Vec<EchoState> {
        self.inner.domain(graph, p)
    }

    fn project(&self, s: &EchoState) -> Vec<u64> {
        self.inner.project(s)
    }

    fn analysis_root(&self) -> Option<ProcId> {
        self.inner.analysis_root()
    }
}
