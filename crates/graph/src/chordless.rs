//! Elementary chordless paths.
//!
//! Theorem 4 of the paper bounds the height `h` of the tree built during the
//! PIF broadcast phase by the length of the longest *elementary chordless
//! path* in the network: a path `p_0, …, p_k` where all processors are
//! distinct (elementary) and `p_i`, `p_j` are linked iff `j = i + 1`
//! (chordless). The proof hinges on the `Potential_p` macro only ever
//! creating chordless parent paths.
//!
//! This module verifies chordlessness of concrete paths and computes the
//! longest chordless path exactly via a budgeted depth-first search.

use crate::{Graph, ProcId};

/// Whether `path` is an elementary chordless path of `g`.
///
/// Requirements checked: all nodes distinct, consecutive nodes adjacent, and
/// *no* chord — non-consecutive nodes must not be adjacent. The empty path
/// and single-node paths are trivially chordless.
///
/// # Examples
///
/// ```
/// use pif_graph::{chordless, generators, ProcId};
///
/// # fn main() -> Result<(), pif_graph::GraphError> {
/// let g = generators::ring(5)?;
/// assert!(chordless::is_chordless(&g, &[ProcId(0), ProcId(1), ProcId(2)]));
/// // 0-1-2-3-4 closes the ring: 0 and 4 are adjacent, i.e. a chord.
/// let full: Vec<_> = (0..5).map(ProcId).collect();
/// assert!(!chordless::is_chordless(&g, &full));
/// # Ok(())
/// # }
/// ```
pub fn is_chordless(g: &Graph, path: &[ProcId]) -> bool {
    let k = path.len();
    for i in 0..k {
        for j in (i + 1)..k {
            if path[i] == path[j] {
                return false;
            }
            let adjacent = g.has_edge(path[i], path[j]);
            if j == i + 1 {
                if !adjacent {
                    return false;
                }
            } else if adjacent {
                return false;
            }
        }
    }
    true
}

/// Result of a longest-chordless-path search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChordlessSearch {
    /// A longest chordless path found (node sequence).
    pub path: Vec<ProcId>,
    /// Whether the search explored the full space (`true`) or hit its
    /// visit budget and may be an underestimate (`false`).
    pub exact: bool,
    /// Number of DFS extensions explored.
    pub visits: u64,
}

impl ChordlessSearch {
    /// Length (number of edges) of the found path.
    pub fn length(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Longest elementary chordless path starting at `start`, found by
/// depth-first search with at most `budget` extensions.
///
/// The search is exact when it completes within the budget (see
/// [`ChordlessSearch::exact`]); otherwise the returned path is the longest
/// found so far (a valid lower bound).
pub fn longest_from(g: &Graph, start: ProcId, budget: u64) -> ChordlessSearch {
    let mut state = Dfs {
        g,
        on_path: vec![false; g.len()],
        path: vec![start],
        best: vec![start],
        visits: 0,
        budget,
        exhausted: false,
    };
    state.on_path[start.index()] = true;
    state.run();
    ChordlessSearch { path: state.best, exact: !state.exhausted, visits: state.visits }
}

/// Longest elementary chordless path over all start nodes.
///
/// `budget` is shared across all starts. Exact iff no start hit the budget.
pub fn longest(g: &Graph, budget: u64) -> ChordlessSearch {
    let mut best = ChordlessSearch { path: Vec::new(), exact: true, visits: 0 };
    let mut remaining = budget;
    for p in g.procs() {
        let r = longest_from(g, p, remaining);
        remaining = remaining.saturating_sub(r.visits);
        best.visits += r.visits;
        if r.path.len() > best.path.len() {
            best.path.clone_from(&r.path);
        }
        if !r.exact {
            best.exact = false;
        }
        if remaining == 0 {
            best.exact = false;
            break;
        }
    }
    best
}

struct Dfs<'a> {
    g: &'a Graph,
    on_path: Vec<bool>,
    path: Vec<ProcId>,
    best: Vec<ProcId>,
    visits: u64,
    budget: u64,
    exhausted: bool,
}

impl Dfs<'_> {
    fn run(&mut self) {
        if self.visits >= self.budget {
            self.exhausted = true;
            return;
        }
        self.visits += 1;
        let tip = *self.path.last().expect("path never empty");
        let mut extended = false;
        for q in self.g.neighbors(tip) {
            if self.on_path[q.index()] || !self.extends_chordless(q) {
                continue;
            }
            extended = true;
            self.on_path[q.index()] = true;
            self.path.push(q);
            self.run();
            self.path.pop();
            self.on_path[q.index()] = false;
            if self.exhausted {
                return;
            }
        }
        if !extended && self.path.len() > self.best.len() {
            self.best = self.path.clone();
        }
        // Even when extended, a prefix could still be the global best if all
        // extensions later prune; record it too.
        if self.path.len() > self.best.len() {
            self.best = self.path.clone();
        }
    }

    /// `q` extends the current path chordlessly iff `q` is adjacent to the
    /// tip (guaranteed by the caller) and to no other path node.
    fn extends_chordless(&self, q: ProcId) -> bool {
        let k = self.path.len();
        self.path[..k - 1].iter().all(|&u| !self.g.has_edge(u, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    const BUDGET: u64 = 10_000_000;

    #[test]
    fn chain_longest_is_whole_chain() {
        let g = generators::chain(9).unwrap();
        let r = longest(&g, BUDGET);
        assert!(r.exact);
        assert_eq!(r.length(), 8);
        assert!(is_chordless(&g, &r.path));
    }

    #[test]
    fn complete_graph_longest_is_single_edge() {
        let g = generators::complete(8).unwrap();
        let r = longest(&g, BUDGET);
        assert!(r.exact);
        assert_eq!(r.length(), 1, "any 2 edges in K_n have a chord");
    }

    #[test]
    fn ring_longest_is_n_minus_2_edges() {
        // On a cycle C_n the longest chordless path uses n-1 nodes (closing
        // it would create the chord between the endpoints).
        let g = generators::ring(8).unwrap();
        let r = longest(&g, BUDGET);
        assert!(r.exact);
        assert_eq!(r.length(), 6);
    }

    #[test]
    fn star_longest_is_two_edges() {
        let g = generators::star(10).unwrap();
        let r = longest(&g, BUDGET);
        assert_eq!(r.length(), 2, "leaf-hub-leaf");
    }

    #[test]
    fn found_paths_are_always_chordless() {
        for t in crate::Topology::standard_suite() {
            let g = t.build().unwrap();
            let r = longest(&g, 200_000);
            assert!(is_chordless(&g, &r.path), "non-chordless result on {t:?}");
            assert!(!r.path.is_empty());
        }
    }

    #[test]
    fn longest_from_respects_start() {
        let g = generators::chain(5).unwrap();
        let r = longest_from(&g, ProcId(2), BUDGET);
        assert_eq!(r.path[0], ProcId(2));
        assert_eq!(r.length(), 2, "from the middle, best reaches one end");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = generators::complete(12).unwrap();
        let r = longest(&g, 5);
        assert!(!r.exact);
        assert!(is_chordless(&g, &r.path));
    }

    #[test]
    fn is_chordless_rejects_non_paths() {
        let g = generators::chain(4).unwrap();
        // Non-adjacent consecutive nodes.
        assert!(!is_chordless(&g, &[ProcId(0), ProcId(2)]));
        // Repeated node.
        assert!(!is_chordless(&g, &[ProcId(0), ProcId(1), ProcId(0)]));
        // Trivial paths are fine.
        assert!(is_chordless(&g, &[]));
        assert!(is_chordless(&g, &[ProcId(3)]));
    }

    #[test]
    fn singleton_graph() {
        let g = generators::singleton();
        let r = longest(&g, BUDGET);
        assert_eq!(r.length(), 0);
        assert!(r.exact);
    }
}
