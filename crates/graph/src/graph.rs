use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GraphBuilder, GraphError, ProcId};

/// An immutable, connected, undirected network topology.
///
/// This is the paper's "arbitrary network": `N` processors connected by
/// bidirectional links. Neighbor lists are stored in compressed sparse row
/// form and kept sorted by ascending [`ProcId`], which doubles as the paper's
/// local order `≻_p` on the labels in `Neig_p`.
///
/// A `Graph` is always valid by construction: non-empty, loop-free,
/// duplicate-free and connected. Build one with [`GraphBuilder`], the
/// generators in [`crate::generators`], or [`Graph::from_edges`].
///
/// # Examples
///
/// ```
/// use pif_graph::{Graph, ProcId};
///
/// # fn main() -> Result<(), pif_graph::GraphError> {
/// // A triangle.
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.degree(ProcId(1)), 2);
/// assert!(g.has_edge(ProcId(0), ProcId(2)));
/// let neighbors: Vec<_> = g.neighbors(ProcId(0)).collect();
/// assert_eq!(neighbors, vec![ProcId(1), ProcId(2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// CSR offsets: neighbors of `p` live in `adjacency[offsets[p]..offsets[p + 1]]`.
    offsets: Vec<u32>,
    /// Concatenated, per-processor-sorted neighbor lists.
    adjacency: Vec<ProcId>,
    /// Optional human-readable name (set by generators, e.g. `"ring(8)"`).
    name: String,
}

impl Graph {
    /// Builds a graph over `n` processors from an edge list.
    ///
    /// Edges are undirected; duplicates and both orientations of the same
    /// edge are tolerated and collapsed. This is a convenience wrapper around
    /// [`GraphBuilder`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0`, an endpoint is out of range, a
    /// self-loop is present, or the resulting graph is disconnected.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.edge(ProcId(u), ProcId(v));
        }
        b.build()
    }

    /// Internal constructor used by [`GraphBuilder`]; inputs must already be
    /// validated and `adjacency` sorted per processor.
    pub(crate) fn from_csr(offsets: Vec<u32>, adjacency: Vec<ProcId>, name: String) -> Self {
        Graph { offsets, adjacency, name }
    }

    /// Number of processors `N` in the network.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the network has no processors. Always `false` for a
    /// constructed `Graph` (construction rejects empty graphs), but provided
    /// for API completeness alongside [`Graph::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected links in the network.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// The generator-assigned name of this topology, or `""` for ad-hoc
    /// graphs.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of this graph carrying the given display name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Degree (number of neighbors) of processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn degree(&self, p: ProcId) -> usize {
        let i = p.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The neighbor set `Neig_p`, in ascending [`ProcId`] order (the paper's
    /// local order `≻_p`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn neighbors(&self, p: ProcId) -> Neighbors<'_> {
        Neighbors { inner: self.neighbor_slice(p).iter() }
    }

    /// The neighbor set `Neig_p` as a sorted slice.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn neighbor_slice(&self, p: ProcId) -> &[ProcId] {
        let i = p.index();
        &self.adjacency[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether processors `u` and `v` are connected by a link.
    ///
    /// Runs in `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: ProcId, v: ProcId) -> bool {
        self.neighbor_slice(u).binary_search(&v).is_ok()
    }

    /// Iterator over every undirected edge `(u, v)` with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges { graph: self, p: 0, i: 0 }
    }

    /// Iterator over all processor identifiers `0..N`.
    pub fn procs(&self) -> impl DoubleEndedIterator<Item = ProcId> + ExactSizeIterator + Clone {
        (0..self.len() as u32).map(ProcId)
    }

    /// Maximum degree over all processors.
    pub fn max_degree(&self) -> usize {
        self.procs().map(|p| self.degree(p)).max().unwrap_or(0)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("name", &self.name)
            .field("n", &self.len())
            .field("m", &self.edge_count())
            .finish_non_exhaustive()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "graph(n={}, m={})", self.len(), self.edge_count())
        } else {
            write!(f, "{}", self.name)
        }
    }
}

/// Iterator over the neighbors of one processor, produced by
/// [`Graph::neighbors`].
#[derive(Clone, Debug)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, ProcId>,
}

impl Iterator for Neighbors<'_> {
    type Item = ProcId;

    #[inline]
    fn next(&mut self) -> Option<ProcId> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Neighbors<'_> {}
impl DoubleEndedIterator for Neighbors<'_> {
    fn next_back(&mut self) -> Option<ProcId> {
        self.inner.next_back().copied()
    }
}

/// Iterator over all undirected edges, produced by [`Graph::edges`].
/// Each edge is yielded once, as `(u, v)` with `u < v`.
#[derive(Clone, Debug)]
pub struct Edges<'a> {
    graph: &'a Graph,
    p: u32,
    i: usize,
}

impl Iterator for Edges<'_> {
    type Item = (ProcId, ProcId);

    fn next(&mut self) -> Option<(ProcId, ProcId)> {
        while (self.p as usize) < self.graph.len() {
            let u = ProcId(self.p);
            let neigh = self.graph.neighbor_slice(u);
            while self.i < neigh.len() {
                let v = neigh[self.i];
                self.i += 1;
                if u < v {
                    return Some((u, v));
                }
            }
            self.p += 1;
            self.i = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_edges_builds_sorted_neighbors() {
        let g = Graph::from_edges(4, [(0, 3), (0, 1), (0, 2), (1, 2), (2, 3)]).unwrap();
        let n0: Vec<_> = g.neighbors(ProcId(0)).collect();
        assert_eq!(n0, vec![ProcId(1), ProcId(2), ProcId(3)]);
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let g = Graph::from_edges(2, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(ProcId(0)), 1);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle();
        for (u, v) in g.edges() {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
        assert!(!g.has_edge(ProcId(0), ProcId(0)));
    }

    #[test]
    fn edges_are_each_reported_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn rejects_disconnected() {
        let err = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap_err();
        assert!(matches!(err, GraphError::Disconnected { .. }));
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(2, [(0, 0), (0, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: ProcId(0) });
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn rejects_empty() {
        let err = Graph::from_edges(0, []).unwrap_err();
        assert_eq!(err, GraphError::Empty);
    }

    #[test]
    fn singleton_graph_is_valid() {
        let g = Graph::from_edges(1, []).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.degree(ProcId(0)), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn display_uses_name_when_present() {
        let g = triangle().with_name("triangle");
        assert_eq!(g.to_string(), "triangle");
        let g2 = triangle();
        assert_eq!(g2.to_string(), "graph(n=3, m=3)");
    }

    #[test]
    fn procs_enumerates_all() {
        let g = triangle();
        let ids: Vec<_> = g.procs().collect();
        assert_eq!(ids, vec![ProcId(0), ProcId(1), ProcId(2)]);
    }

    #[test]
    fn graph_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
    }
}
