use std::error::Error;
use std::fmt;

use crate::ProcId;

/// Error produced while constructing or validating a network topology.
///
/// All topology constructors in this crate validate their input eagerly: the
/// simulation model assumes a connected graph of at least one processor with
/// bidirectional, loop-free links, so violations are reported here rather
/// than surfacing as undefined behaviour deep inside a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The requested graph would have no processors at all.
    Empty,
    /// An edge endpoint refers to a processor outside `0..n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: ProcId,
        /// Number of processors in the graph under construction.
        n: usize,
    },
    /// A self-loop `(p, p)` was supplied; the communication model has no
    /// loops (a processor always reads its own registers directly).
    SelfLoop {
        /// The processor with the self-loop.
        node: ProcId,
    },
    /// The resulting graph is not connected; the PIF specification requires
    /// every processor to be reachable from the root.
    Disconnected {
        /// A processor unreachable from processor `0`.
        witness: ProcId,
    },
    /// A generator received parameters that do not describe a valid instance
    /// of its family (for example a grid with a zero dimension).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph must contain at least one processor"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} processors")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at {node} is not allowed"),
            GraphError::Disconnected { witness } => {
                write!(f, "graph is disconnected: {witness} unreachable from p0")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errs: Vec<GraphError> = vec![
            GraphError::Empty,
            GraphError::NodeOutOfRange { node: ProcId(9), n: 4 },
            GraphError::SelfLoop { node: ProcId(2) },
            GraphError::Disconnected { witness: ProcId(3) },
            GraphError::InvalidParameter { reason: "grid side must be positive".into() },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("edge"));
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
