//! Distance metrics on network topologies.
//!
//! The paper's complexity bounds are phrased in terms of the diameter, the
//! height `h` of the constructed broadcast tree, and the length of the
//! longest elementary chordless path (see [`crate::chordless`]). This module
//! provides the classical BFS-based quantities.

use std::collections::VecDeque;

use crate::{Graph, ProcId};

/// Distance not-yet-computed marker inside [`bfs_distances`]. All real
/// distances in a connected graph are `< N ≤ u32::MAX`.
pub const UNREACHABLE: u32 = u32::MAX;

/// Breadth-first-search distances from `source` to every processor.
///
/// Returns a vector indexed by processor id. In a connected [`Graph`] every
/// entry is a real distance; [`UNREACHABLE`] can only appear if the graph
/// was (unsafely) assumed connected but is not — construction prevents this.
///
/// # Examples
///
/// ```
/// use pif_graph::{generators, metrics, ProcId};
///
/// # fn main() -> Result<(), pif_graph::GraphError> {
/// let g = generators::chain(4)?;
/// assert_eq!(metrics::bfs_distances(&g, ProcId(0)), vec![0, 1, 2, 3]);
/// # Ok(())
/// # }
/// ```
pub fn bfs_distances(g: &Graph, source: ProcId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.len()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(p) = queue.pop_front() {
        let d = dist[p.index()];
        for q in g.neighbors(p) {
            if dist[q.index()] == UNREACHABLE {
                dist[q.index()] = d + 1;
                queue.push_back(q);
            }
        }
    }
    dist
}

/// A BFS tree from `source`: for every processor, its parent in a shortest
/// path tree (`None` for the source itself).
pub fn bfs_parents(g: &Graph, source: ProcId) -> Vec<Option<ProcId>> {
    let mut parent = vec![None; g.len()];
    let mut seen = vec![false; g.len()];
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(p) = queue.pop_front() {
        for q in g.neighbors(p) {
            if !seen[q.index()] {
                seen[q.index()] = true;
                parent[q.index()] = Some(p);
                queue.push_back(q);
            }
        }
    }
    parent
}

/// Eccentricity of `p`: the maximum BFS distance from `p` to any processor.
pub fn eccentricity(g: &Graph, p: ProcId) -> u32 {
    bfs_distances(g, p).into_iter().max().unwrap_or(0)
}

/// Diameter: the maximum eccentricity over all processors.
///
/// Exact (all-pairs BFS), `O(N · (N + M))`; intended for the experiment
/// sizes used in this workspace (up to a few thousand processors).
pub fn diameter(g: &Graph) -> u32 {
    g.procs().map(|p| eccentricity(g, p)).max().unwrap_or(0)
}

/// Radius: the minimum eccentricity over all processors.
pub fn radius(g: &Graph) -> u32 {
    g.procs().map(|p| eccentricity(g, p)).min().unwrap_or(0)
}

/// Whether every processor is reachable from `p0`. Always true for a
/// constructed [`Graph`]; exposed for testing the builder itself and for
/// validating externally supplied edge lists before construction.
pub fn is_connected(g: &Graph) -> bool {
    !bfs_distances(g, ProcId(0)).contains(&UNREACHABLE)
}

/// Height of the tree defined by a parent-pointer vector, measured from
/// `root`. Returns `None` if the pointers do not describe a tree spanning
/// all processors (cycle, wrong root, or orphan).
///
/// Used to measure `h`, the height of the tree dynamically constructed
/// during the PIF broadcast phase (Theorem 4 of the paper).
pub fn tree_height(parents: &[Option<ProcId>], root: ProcId) -> Option<u32> {
    let n = parents.len();
    if root.index() >= n || parents[root.index()].is_some() {
        return None;
    }
    let mut depth: Vec<Option<u32>> = vec![None; n];
    depth[root.index()] = Some(0);
    let mut max = 0u32;
    for start in 0..n {
        if depth[start].is_some() {
            continue;
        }
        // Walk up to a node of known depth, collecting the path.
        let mut path = Vec::new();
        let mut cur = start;
        loop {
            if let Some(d) = depth[cur] {
                let mut d = d;
                for &b in path.iter().rev() {
                    d += 1;
                    depth[b] = Some(d);
                    max = max.max(d);
                }
                break;
            }
            if path.len() > n {
                return None; // cycle
            }
            path.push(cur);
            match parents[cur] {
                Some(p) if p.index() < n => cur = p.index(),
                _ => return None, // orphan or out-of-range parent
            }
        }
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_ring() {
        let g = generators::ring(6).unwrap();
        assert_eq!(bfs_distances(&g, ProcId(0)), vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_parents_form_shortest_tree() {
        let g = generators::grid(3, 3).unwrap();
        let parents = bfs_parents(&g, ProcId(0));
        let dist = bfs_distances(&g, ProcId(0));
        for p in g.procs() {
            if let Some(par) = parents[p.index()] {
                assert_eq!(dist[p.index()], dist[par.index()] + 1);
                assert!(g.has_edge(p, par));
            } else {
                assert_eq!(p, ProcId(0));
            }
        }
    }

    #[test]
    fn diameter_and_radius() {
        let g = generators::chain(7).unwrap();
        assert_eq!(diameter(&g), 6);
        assert_eq!(radius(&g), 3);
        let s = generators::star(10).unwrap();
        assert_eq!(diameter(&s), 2);
        assert_eq!(radius(&s), 1);
    }

    #[test]
    fn eccentricity_of_chain_end() {
        let g = generators::chain(5).unwrap();
        assert_eq!(eccentricity(&g, ProcId(0)), 4);
        assert_eq!(eccentricity(&g, ProcId(2)), 2);
    }

    #[test]
    fn connectivity_check() {
        let g = generators::ring(5).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn tree_height_of_bfs_tree_equals_eccentricity() {
        let g = generators::torus(4, 5).unwrap();
        let parents = bfs_parents(&g, ProcId(0));
        assert_eq!(tree_height(&parents, ProcId(0)), Some(eccentricity(&g, ProcId(0))));
    }

    #[test]
    fn tree_height_rejects_cycles() {
        // 0 -> None (root), 1 -> 2, 2 -> 1: cycle between 1 and 2.
        let parents = vec![None, Some(ProcId(2)), Some(ProcId(1))];
        assert_eq!(tree_height(&parents, ProcId(0)), None);
    }

    #[test]
    fn tree_height_rejects_non_root() {
        let parents = vec![Some(ProcId(1)), None];
        assert_eq!(tree_height(&parents, ProcId(0)), None);
    }

    #[test]
    fn tree_height_singleton() {
        assert_eq!(tree_height(&[None], ProcId(0)), Some(0));
    }
}
