use std::collections::BTreeSet;

use crate::{Graph, GraphError, ProcId};

/// Incremental builder for [`Graph`] values.
///
/// Collects undirected edges and validates the whole topology at
/// [`GraphBuilder::build`] time: endpoints in range, no self-loops,
/// connectivity. Duplicate edges (in either orientation) are collapsed.
///
/// # Examples
///
/// ```
/// use pif_graph::{GraphBuilder, ProcId};
///
/// # fn main() -> Result<(), pif_graph::GraphError> {
/// let mut b = GraphBuilder::new(4);
/// b.edge(ProcId(0), ProcId(1))
///     .edge(ProcId(1), ProcId(2))
///     .edge(ProcId(2), ProcId(3));
/// let g = b.name("path").build()?;
/// assert_eq!(g.name(), "path");
/// assert_eq!(g.edge_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(ProcId, ProcId)>,
    name: String,
}

impl GraphBuilder {
    /// Starts building a graph over `n` processors (identified `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: BTreeSet::new(), name: String::new() }
    }

    /// Adds the undirected link `{u, v}`. Order of endpoints is irrelevant;
    /// duplicates are ignored. Validation happens at [`GraphBuilder::build`].
    pub fn edge(&mut self, u: ProcId, v: ProcId) -> &mut Self {
        let key = if u <= v { (u, v) } else { (v, u) };
        self.edges.insert(key);
        self
    }

    /// Adds a batch of undirected links given as index pairs.
    pub fn edges<I>(&mut self, iter: I) -> &mut Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        for (u, v) in iter {
            self.edge(ProcId(u), ProcId(v));
        }
        self
    }

    /// Sets the display name recorded on the built graph.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Number of distinct edges currently collected.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validates the collected topology and produces the immutable [`Graph`].
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if `n == 0`;
    /// * [`GraphError::SelfLoop`] if any edge `{p, p}` was added;
    /// * [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`;
    /// * [`GraphError::Disconnected`] if some processor is unreachable from
    ///   processor `0`.
    pub fn build(&self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        for &(u, v) in &self.edges {
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            if u.index() >= self.n {
                return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
            }
            if v.index() >= self.n {
                return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
            }
        }

        // Degree counting pass, then CSR fill.
        let mut degree = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0u32);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut adjacency = vec![ProcId(0); 2 * self.edges.len()];
        for &(u, v) in &self.edges {
            adjacency[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            adjacency[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        for p in 0..self.n {
            adjacency[offsets[p] as usize..offsets[p + 1] as usize].sort_unstable();
        }

        let graph = Graph::from_csr(offsets, adjacency, self.name.clone());

        // Connectivity: BFS from processor 0.
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(ProcId(0));
        while let Some(p) = queue.pop_front() {
            for q in graph.neighbors(p) {
                if !seen[q.index()] {
                    seen[q.index()] = true;
                    queue.push_back(q);
                }
            }
        }
        if let Some(i) = seen.iter().position(|&s| !s) {
            return Err(GraphError::Disconnected { witness: ProcId::from_index(i) });
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collapses_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.edge(ProcId(0), ProcId(1));
        b.edge(ProcId(1), ProcId(0));
        b.edge(ProcId(1), ProcId(2));
        assert_eq!(b.edge_count(), 2);
        assert_eq!(b.build().unwrap().edge_count(), 2);
    }

    #[test]
    fn builder_validates_lazily() {
        // Adding a bad edge does not error until build().
        let mut b = GraphBuilder::new(2);
        b.edge(ProcId(0), ProcId(0));
        assert!(b.build().is_err());
    }

    #[test]
    fn csr_neighbor_lists_are_sorted() {
        let mut b = GraphBuilder::new(5);
        b.edges([(0, 4), (0, 2), (0, 1), (0, 3), (1, 2), (2, 3), (3, 4)]);
        let g = b.build().unwrap();
        for p in g.procs() {
            let ns = g.neighbor_slice(p);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted at {p}");
        }
    }

    #[test]
    fn batch_edges_helper() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build().unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn disconnected_witness_is_reported() {
        let mut b = GraphBuilder::new(3);
        b.edge(ProcId(0), ProcId(1));
        match b.build().unwrap_err() {
            GraphError::Disconnected { witness } => assert_eq!(witness, ProcId(2)),
            e => panic!("unexpected error {e:?}"),
        }
    }
}
